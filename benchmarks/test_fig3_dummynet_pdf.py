"""Benchmark: Figure 3 — inter-loss-time PDF at the emulated (Dummynet)
bottleneck.

Paper claim: ~80% of losses within 0.01 RTT — clustering survives a
non-ideal pipe with processing noise and a 1 ms trace clock, though less
extreme than NS-2's ideal router.
"""

from benchmarks.conftest import one_shot
from repro.experiments import run_fig2, run_fig3


def test_fig3_dummynet_pdf(benchmark, scale):
    result = one_shot(benchmark, run_fig3, seed=1, scale=scale)
    print()
    print(result.to_text())
    print(
        f"\n  paper:    mass < 0.01 RTT ~ 80%"
        f"\n  measured: mass < 0.01 RTT = {result.frac_001 * 100:.1f}%"
    )
    assert result.frac_001 > 0.5
    assert result.comparison.rejects_poisson


def test_fig3_less_bursty_than_fig2(benchmark, scale):
    """Cross-figure shape: the emulated pipe shows less extreme clustering
    than the ideal simulated router (80% vs 95% in the paper)."""

    def both():
        return run_fig2(seed=1, scale=scale), run_fig3(seed=1, scale=scale)

    fig2, fig3 = one_shot(benchmark, both)
    print(
        f"\n  fig2 (NS-2)     < 0.01 RTT: {fig2.frac_001 * 100:.1f}%"
        f"\n  fig3 (Dummynet) < 0.01 RTT: {fig3.frac_001 * 100:.1f}%"
    )
    assert fig3.frac_001 <= fig2.frac_001 + 0.05
