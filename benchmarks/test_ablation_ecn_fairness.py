"""Ablation: persistent one-RTT ECN signal (paper §5, reference [22]).

The paper's proposed escape from the loss-burstiness problem: a congestion
signal that persists for one RTT reaches (nearly) every flow exactly once
per congestion event, removing the rate-based/window-based detection
asymmetry.  The bench reruns the Figure 7 competition under both signals
and reports the pacing deficit.
"""

from benchmarks.conftest import one_shot
from repro.extensions import run_ecn_fairness


def test_ablation_ecn_fairness(benchmark, scale):
    result = one_shot(benchmark, run_ecn_fairness, seed=1, scale=scale)
    print()
    print(result.to_text())

    # DropTail shows the Figure 7 unfairness (magnitude is seed-sensitive);
    # the persistent signal pins the deficit near zero regardless.
    assert result.droptail_deficit > 0.02
    assert result.ecn_deficit < 0.12
    assert result.ecn_deficit < result.droptail_deficit + 0.02
    assert result.signals_raised > 0
    # The fix must not cost the link its utilization.
    dt_total = result.droptail_newreno_mbps + result.droptail_pacing_mbps
    ecn_total = result.ecn_newreno_mbps + result.ecn_pacing_mbps
    assert ecn_total > 0.9 * dt_total
