"""Extension bench: SACK vs NewReno under the measured burst losses.

SACK (RFC 2018/3517) is the transport-side mitigation for exactly what
the paper measures: where NewReno clears a burst of k holes one RTT at a
time, SACK learns every hole from the receiver's blocks and refills them
within about one RTT.  The bench transfers the same payload through the
same small-buffer bottleneck under both and compares completion times.
"""

from benchmarks.conftest import one_shot
from repro.core.report import format_table
from repro.sim import DumbbellConfig, Simulator, build_dumbbell
from repro.tcp import NewRenoSender, SackSender, TcpSink


def _transfer(cls, sack, rate=20e6, buffer_pkts=12, total=3000, rtt=0.050):
    sim = Simulator()
    db = build_dumbbell(
        sim, DumbbellConfig(bottleneck_rate_bps=rate, buffer_pkts=buffer_pkts)
    )
    pair = db.add_pair(rtt=rtt)
    done = []
    snd = cls(sim, pair.left, 1, pair.right.node_id, total_packets=total,
              on_complete=done.append)
    TcpSink(sim, pair.right, 1, pair.left.node_id, sack=sack)
    snd.start()
    sim.run(until=600.0)
    return done[0] if done else float("inf"), snd


def test_ext_sack_recovery(benchmark, scale):
    def run_both():
        nr_time, nr = _transfer(NewRenoSender, sack=False)
        sk_time, sk = _transfer(SackSender, sack=True)
        return (nr_time, nr), (sk_time, sk)

    (nr_time, nr), (sk_time, sk) = one_shot(benchmark, run_both)
    rows = [
        ["newreno", round(nr_time, 2), nr.stats.retransmissions, nr.stats.timeouts],
        ["sack", round(sk_time, 2), sk.stats.retransmissions, sk.stats.timeouts],
    ]
    print()
    print(format_table(
        ["sender", "completion(s)", "retx", "timeouts"],
        rows,
        title="SACK vs NewReno — 3 MB through a 12-packet-buffer bottleneck",
    ))

    # Both complete; SACK is at least as fast, and both faced real loss.
    assert nr_time != float("inf") and sk_time != float("inf")
    assert nr.stats.retransmissions > 0 and sk.stats.retransmissions > 0
    assert sk_time <= nr_time * 1.05
