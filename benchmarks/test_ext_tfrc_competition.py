"""Extension bench: TFRC vs window-based TCP (paper §5 / Rhee & Xu).

"If a distributed application has to use both UDP (controlled by the
rate-based TFRC), and TCP (controlled by window-based implementation) in
the data communication, TFRC will have unexpectedly low throughput."  The
bench runs equal numbers of TFRC and NewReno flows over one bottleneck
and confirms which class wins.
"""

from benchmarks.conftest import one_shot
from repro.sim import DumbbellConfig, Simulator, build_dumbbell
from repro.sim.rng import RngStreams
from repro.tcp import NewRenoSender, TcpSink, TfrcReceiver, TfrcSender


def _competition(seed, n_per_class, rate_bps, rtt, duration):
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=rate_bps)
    cfg.buffer_pkts = max(4, cfg.bdp_packets(rtt))
    db = build_dumbbell(sim, cfg)
    starts = streams.stream("starts")
    tfrc_rcvs, tcp_sinks = [], []
    for i in range(n_per_class):
        pair = db.add_pair(rtt=rtt)
        fid = 100 + i
        snd = TfrcSender(sim, pair.left, fid, pair.right.node_id, base_rtt=rtt)
        tfrc_rcvs.append(TfrcReceiver(sim, pair.right, fid, pair.left.node_id))
        snd.start(float(starts.uniform(0.0, 0.1)))
    for i in range(n_per_class):
        pair = db.add_pair(rtt=rtt)
        fid = 200 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id)
        tcp_sinks.append(TcpSink(sim, pair.right, fid, pair.left.node_id))
        snd.start(float(starts.uniform(0.0, 0.1)))
    sim.run(until=duration)
    tfrc_bytes = sum(r.stats.bytes_received for r in tfrc_rcvs)
    tcp_bytes = sum(s.stats.bytes_received for s in tcp_sinks)
    return tfrc_bytes, tcp_bytes


def test_ext_tfrc_vs_tcp(benchmark, scale):
    tfrc_bytes, tcp_bytes = one_shot(
        benchmark, _competition,
        seed=1, n_per_class=scale.fig7_flows_per_class,
        rate_bps=scale.fig7_capacity_bps, rtt=0.050,
        duration=scale.fig7_duration,
    )
    tfrc_mbps = tfrc_bytes * 8 / scale.fig7_duration / 1e6
    tcp_mbps = tcp_bytes * 8 / scale.fig7_duration / 1e6
    print(
        f"\n  TFRC aggregate {tfrc_mbps:.2f} Mbps vs "
        f"NewReno aggregate {tcp_mbps:.2f} Mbps "
        f"(TFRC gets {tfrc_mbps / (tfrc_mbps + tcp_mbps) * 100:.0f}% of the shared link)"
    )
    # The paper's warning: the rate-based class loses.
    assert tcp_bytes > tfrc_bytes
    # But TFRC is not starved to zero, and the link is used.
    assert tfrc_bytes > 0.02 * tcp_bytes
    assert (tfrc_mbps + tcp_mbps) > 0.5 * scale.fig7_capacity_bps / 1e6
