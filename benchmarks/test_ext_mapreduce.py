"""Extension bench: MapReduce shuffle over a complete graph (future work).

The paper's §5 lesson for controlled clusters — rate-based senders give
fairer, more predictable transfers — applied to the M x R shuffle its
future work proposes.
"""

from benchmarks.conftest import one_shot
from repro.experiments.mapreduce_shuffle import run_mapreduce


def test_ext_mapreduce_shuffle(benchmark, scale):
    result = one_shot(benchmark, run_mapreduce, seed=1, scale=scale)
    print()
    print(result.to_text())

    # Every shuffle finished above its bound.
    assert result.window.latencies.min() >= 1.0
    assert result.rate.latencies.min() >= 1.0
    # §5 fairness claim: the rate-based shuffle's straggler spread
    # (slowest minus fastest reducer) is smaller than the window-based one's.
    assert result.rate.mean_spread < result.window.mean_spread
