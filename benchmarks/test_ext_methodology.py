"""Extension bench: measurement methodology comparison (paper §2 + future work).

Quantifies the paper's critique of TCP-trace-based loss measurement:
one bottleneck, three instruments — the router's ground-truth drop trace,
a Paxson-style reconstruction from TCP retransmissions, and the paper's
CBR-probe methodology.
"""

from benchmarks.conftest import one_shot
from repro.experiments.methodology import run_methodology


def test_ext_methodology_comparison(benchmark, scale):
    result = one_shot(benchmark, run_methodology, seed=1, scale=scale)
    print()
    print(result.to_text())

    assert result.n_router_drops > 100
    assert result.n_tcp_estimates > 10
    assert result.n_probe_losses > 10

    # The paper's claim, measured: the TCP-trace view folds the flows' own
    # dynamics into the estimate — its loss count is biased (recovery
    # smearing + go-back-N resends inferred as losses) and its
    # congestion-event structure is distorted...
    truth_n = result.comparison.ground_truth.n_losses
    tcp_n = result.comparison.tcp_trace.n_losses
    assert abs(tcp_n - truth_n) / truth_n > 0.10
    # ...while the evenly-sampling CBR probe preserves the congestion-event
    # process (event counts near the truth, unlike the TCP view).
    e_tcp, e_cbr = result.comparison.event_count_errors()
    assert e_cbr < e_tcp
    assert e_cbr < 0.25
