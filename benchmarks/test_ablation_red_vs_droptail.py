"""Ablation: RED vs DropTail (paper §3.3 / §5).

The paper names the DropTail discipline as the major source of loss
burstiness and RED as the classical randomizing fix — with the caveat
that RED "suffer[s] from difficult parameter settings problems".  The
sweep quantifies both: a classic RED cuts the sub-0.01-RTT mass by a
large factor; a timid RED behaves like DropTail; a heavy-handed RED pays
with utilization.
"""

from benchmarks.conftest import one_shot
from repro.extensions import run_red_sweep, sweep_table


def test_ablation_red_vs_droptail(benchmark, scale):
    outcomes = one_shot(benchmark, run_red_sweep, seed=1, scale=scale)
    print()
    print(sweep_table(outcomes))

    by_label = {o.label: o for o in outcomes}
    droptail = by_label["droptail"]
    assert droptail.frac_001 > 0.5

    # Every RED variant randomizes at least some clustering away...
    assert by_label["classic"].frac_001 < droptail.frac_001
    if scale.name == "fast":
        # ...and a well-tuned RED removes a LOT of it.  At 100 Mbps the
        # 0.01-RTT threshold spans ~12 packet service times, so clustered
        # residue is unavoidable in this metric and only the ordering is
        # asserted at paper scale (see EXPERIMENTS.md appendix).
        assert by_label["classic"].frac_001 < droptail.frac_001 - 0.15
    # ...while keeping the link busy.
    assert by_label["classic"].utilization > 0.7
    # Mis-tuned variants demonstrate the paper's parameter-difficulty caveat.
    assert by_label["timid"].frac_001 > 0.8 * droptail.frac_001
    assert by_label["heavy"].utilization < droptail.utilization
