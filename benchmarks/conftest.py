"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the paper-shaped rows/series (run with ``-s`` to see them), while
pytest-benchmark records the runtime.  The scenario scale follows
``REPRO_SCALE`` (``fast`` default; ``paper`` for the paper's absolute
parameters — expect minutes per figure at paper scale).
"""

import pytest

from repro.experiments import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def one_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (simulation benches are deterministic and far too heavy for
    multi-round statistical timing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
