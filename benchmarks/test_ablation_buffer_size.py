"""Ablation: bottleneck buffer size, 1/8 to 2 BDP (paper §3.1).

The paper runs NS-2 "with different buffer sizes, from 1/8 of the
bandwidth-delay-product (BDP) to 2 times of the BDP" and finds heavy
sub-RTT clustering throughout: burstiness is *not* an artifact of one
buffer size — a larger buffer delays overflow but overflow still drops a
burst once the window overshoots.
"""

from benchmarks.conftest import one_shot
from repro.core.report import format_table
from repro.experiments import run_fig2

FRACTIONS = (0.125, 0.5, 1.0, 2.0)


def test_ablation_buffer_size(benchmark, scale):
    def sweep():
        return {
            frac: run_fig2(seed=4, scale=scale, buffer_bdp_fraction=frac)
            for frac in FRACTIONS
        }

    results = one_shot(benchmark, sweep)
    rows = [
        [f"{frac:g} BDP", r.n_drops, round(r.frac_001, 3),
         round(r.comparison.cv, 1), round(r.bottleneck_utilization, 3)]
        for frac, r in results.items()
    ]
    print()
    print(format_table(
        ["buffer", "drops", "<0.01 RTT", "CV", "utilization"],
        rows,
        title="Ablation — loss burstiness vs bottleneck buffer size",
    ))

    # Paper shape: strong sub-RTT clustering at EVERY buffer size.
    for frac, r in results.items():
        assert r.frac_001 > 0.5, f"buffer {frac} BDP lost the clustering"
        assert r.comparison.rejects_poisson
    # Bigger buffers buy utilization, not smoothness (the loss *rate*
    # adapts to the senders either way; the clustering remains).
    assert results[2.0].bottleneck_utilization >= results[0.125].bottleneck_utilization
