"""Performance microbenchmarks of the hot paths.

Unlike the figure benches (single-shot scenario regenerations), these are
true multi-round pytest-benchmark measurements of the substrate's inner
loops: event throughput, queue operations, and the NumPy analysis kernels.
They catch performance regressions that would make paper-scale runs
impractical.
"""

import time

import numpy as np
import pytest

from repro.core import (
    burstiness_summary,
    cluster_loss_events,
    fit_gilbert,
    interval_pdf,
    loss_intervals,
)
from repro.obs import observe_run
from repro.sim import DumbbellConfig, Simulator, build_dumbbell
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.tcp import NewRenoSender, TcpSink


def test_perf_engine_event_throughput(benchmark):
    """Raw scheduler throughput: schedule + dispatch 100k no-op events."""

    def run():
        sim = Simulator()
        for i in range(100_000):
            sim.schedule(float(i) * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 100_000


def _noop():
    pass


def test_perf_pooled_event_loop_floor():
    """Hard throughput floor for the pooled/fast-path event loop.

    The tuple-keyed heap plus ``schedule_fast`` sustains ~700k events/sec
    on commodity hardware; the floor sits at ~1/3 of that so machine
    noise never trips it, while a regression back to per-event object
    allocation and rich-comparison heap ordering (~200k events/sec) fails
    loudly.  Min-of-3 wall times keep the measurement honest.
    """
    n = 50_000
    best = float("inf")
    for _ in range(3):
        sim = Simulator()
        t0 = time.perf_counter()
        for i in range(n):
            sim.schedule_fast(i * 1e-6, _noop)
        sim.run()
        best = min(best, time.perf_counter() - t0)
        assert sim.events_processed == n
    rate = n / best
    assert rate > 250_000, f"pooled event loop at {rate:,.0f} events/sec"


def test_perf_queue_ops(benchmark):
    """DropTail push/pop cycles."""
    pkt = Packet(1, 0, 1000)

    def run():
        q = DropTailQueue(64)
        for _ in range(1_000):
            for k in range(8):
                q.push(pkt, 0.0)
            for k in range(8):
                q.pop(0.0)
        return q.dequeued

    assert benchmark(run) == 8_000


def test_perf_tcp_transfer(benchmark):
    """Packets-through-the-stack rate: a full 2000-packet TCP transfer."""

    def run():
        sim = Simulator()
        db = build_dumbbell(
            sim, DumbbellConfig(bottleneck_rate_bps=50e6, buffer_pkts=300)
        )
        pair = db.add_pair(rtt=0.02)
        snd = NewRenoSender(sim, pair.left, 1, pair.right.node_id,
                            total_packets=2000)
        TcpSink(sim, pair.right, 1, pair.left.node_id)
        snd.start()
        sim.run(until=60.0)
        return snd.finished

    assert benchmark(run)


@pytest.fixture(scope="module")
def big_trace():
    rng = np.random.default_rng(0)
    # 1M loss timestamps with heavy clustering.
    centers = np.sort(rng.uniform(0, 10_000, 20_000))
    pts = centers[:, None] + rng.exponential(0.001, (20_000, 50))
    return np.sort(pts.ravel())


def test_perf_interval_extraction(benchmark, big_trace):
    out = benchmark(loss_intervals, big_trace)
    assert len(out) == len(big_trace) - 1


def test_perf_pdf_binning(benchmark, big_trace):
    intervals = loss_intervals(big_trace) / 0.1
    pdf = benchmark(interval_pdf, intervals)
    assert pdf.n == len(intervals)


def test_perf_burstiness_summary(benchmark, big_trace):
    s = benchmark(burstiness_summary, big_trace, 0.1)
    assert s.n_losses == len(big_trace)


def test_perf_event_clustering(benchmark, big_trace):
    events = benchmark(cluster_loss_events, big_trace, 0.1)
    assert len(events) >= 1


def test_perf_gilbert_fit(benchmark):
    rng = np.random.default_rng(1)
    seq = (rng.random(1_000_000) < 0.02).astype(np.int8)
    model = benchmark(fit_gilbert, seq)
    assert 0 <= model.loss_rate <= 1


# --------------------------------------------------------------------------
# Flight-recorder overhead
# --------------------------------------------------------------------------


def _fig2_scale_workload(observe):
    """One fig2-scale TCP transfer; optionally wired through observe_run."""
    sim = Simulator()
    db = build_dumbbell(
        sim, DumbbellConfig(bottleneck_rate_bps=20e6, buffer_pkts=100)
    )
    pairs = [db.add_pair(rtt=0.02 + 0.01 * i) for i in range(4)]
    flows = []
    for i, pair in enumerate(pairs):
        snd = NewRenoSender(sim, pair.left, i + 1, pair.right.node_id,
                            total_packets=500)
        sink = TcpSink(sim, pair.right, i + 1, pair.left.node_id)
        flows.append((snd, sink))
    if observe:
        obs = observe_run(sim, db, "bench", flows=flows)
        for snd, _ in flows:
            snd.start()
        with obs.profiled():
            sim.run(until=20.0)
        obs.finalize(duration=20.0)
    else:
        for snd, _ in flows:
            snd.start()
        sim.run(until=20.0)
    return sim.events_processed


def test_perf_disabled_telemetry_overhead(monkeypatch):
    """The disabled flight-recorder path must cost <5% vs a bare run.

    With every observability knob unset, observe_run returns an inert
    observation: no samplers are scheduled and the event loop runs
    unprofiled.  Min-of-N wall times (interleaved to ride out machine
    noise) keep this honest.
    """
    for knob in ("REPRO_TELEMETRY", "REPRO_TELEMETRY_OUT", "REPRO_REPORT",
                 "REPRO_METRICS_OUT", "REPRO_CHECK_INVARIANTS",
                 "REPRO_FAULTS"):
        monkeypatch.delenv(knob, raising=False)
    _fig2_scale_workload(observe=True)  # warm caches/JIT-free but fair
    bare, disabled = [], []
    for _ in range(5):
        t0 = time.perf_counter()
        n_bare = _fig2_scale_workload(observe=False)
        t1 = time.perf_counter()
        n_obs = _fig2_scale_workload(observe=True)
        t2 = time.perf_counter()
        bare.append(t1 - t0)
        disabled.append(t2 - t1)
        assert n_obs == n_bare  # identical event stream either way
    ratio = min(disabled) / min(bare)
    assert ratio < 1.05, f"disabled-telemetry overhead {ratio:.3f}x"


def test_perf_enabled_sampler_cost(benchmark, monkeypatch, tmp_path):
    """Record (not bound) the cost of a fully armed flight recorder."""
    monkeypatch.setenv("REPRO_TELEMETRY_OUT", str(tmp_path / "run"))
    monkeypatch.setenv("REPRO_TELEMETRY_STRIDE", "0.05")
    events = benchmark(_fig2_scale_workload, True)
    assert events > 0
    assert (tmp_path / "run" / "telemetry.json").exists()
