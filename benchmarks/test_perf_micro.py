"""Performance microbenchmarks of the hot paths.

Unlike the figure benches (single-shot scenario regenerations), these are
true multi-round pytest-benchmark measurements of the substrate's inner
loops: event throughput, queue operations, and the NumPy analysis kernels.
They catch performance regressions that would make paper-scale runs
impractical.
"""

import numpy as np
import pytest

from repro.core import (
    burstiness_summary,
    cluster_loss_events,
    fit_gilbert,
    interval_pdf,
    loss_intervals,
)
from repro.sim import DumbbellConfig, Simulator, build_dumbbell
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.tcp import NewRenoSender, TcpSink


def test_perf_engine_event_throughput(benchmark):
    """Raw scheduler throughput: schedule + dispatch 100k no-op events."""

    def run():
        sim = Simulator()
        for i in range(100_000):
            sim.schedule(float(i) * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 100_000


def _noop():
    pass


def test_perf_queue_ops(benchmark):
    """DropTail push/pop cycles."""
    pkt = Packet(1, 0, 1000)

    def run():
        q = DropTailQueue(64)
        for _ in range(1_000):
            for k in range(8):
                q.push(pkt, 0.0)
            for k in range(8):
                q.pop(0.0)
        return q.dequeued

    assert benchmark(run) == 8_000


def test_perf_tcp_transfer(benchmark):
    """Packets-through-the-stack rate: a full 2000-packet TCP transfer."""

    def run():
        sim = Simulator()
        db = build_dumbbell(
            sim, DumbbellConfig(bottleneck_rate_bps=50e6, buffer_pkts=300)
        )
        pair = db.add_pair(rtt=0.02)
        snd = NewRenoSender(sim, pair.left, 1, pair.right.node_id,
                            total_packets=2000)
        TcpSink(sim, pair.right, 1, pair.left.node_id)
        snd.start()
        sim.run(until=60.0)
        return snd.finished

    assert benchmark(run)


@pytest.fixture(scope="module")
def big_trace():
    rng = np.random.default_rng(0)
    # 1M loss timestamps with heavy clustering.
    centers = np.sort(rng.uniform(0, 10_000, 20_000))
    pts = centers[:, None] + rng.exponential(0.001, (20_000, 50))
    return np.sort(pts.ravel())


def test_perf_interval_extraction(benchmark, big_trace):
    out = benchmark(loss_intervals, big_trace)
    assert len(out) == len(big_trace) - 1


def test_perf_pdf_binning(benchmark, big_trace):
    intervals = loss_intervals(big_trace) / 0.1
    pdf = benchmark(interval_pdf, intervals)
    assert pdf.n == len(intervals)


def test_perf_burstiness_summary(benchmark, big_trace):
    s = benchmark(burstiness_summary, big_trace, 0.1)
    assert s.n_losses == len(big_trace)


def test_perf_event_clustering(benchmark, big_trace):
    events = benchmark(cluster_loss_events, big_trace, 0.1)
    assert len(events) >= 1


def test_perf_gilbert_fit(benchmark):
    rng = np.random.default_rng(1)
    seq = (rng.random(1_000_000) < 0.02).astype(np.int8)
    model = benchmark(fit_gilbert, seq)
    assert 0 <= model.loss_rate <= 1
