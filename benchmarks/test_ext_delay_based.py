"""Extension bench: delay-based congestion control (paper §5, ref. [23]).

"A delay-based algorithm ... achieved better stability and fairness": the
same heterogeneous-RTT flow population run under loss-based NewReno and
delay-based FAST, head to head.
"""

from benchmarks.conftest import one_shot
from repro.extensions import run_delay_based


def test_ext_delay_based_stability_fairness(benchmark, scale):
    result = one_shot(benchmark, run_delay_based, seed=1, scale=scale)
    print()
    print(result.to_text())

    # Delay sidesteps the bursty loss signal entirely...
    assert result.delay_based.drops == 0
    assert result.loss_based.drops > 0
    # ...while being fairer across RTTs and flatter over time...
    assert result.delay_based.jain > result.loss_based.jain
    assert result.delay_based.jain > 0.9
    assert result.delay_based.mean_window_cv < 0.1
    # ...at no utilization cost.
    assert result.delay_based.utilization >= result.loss_based.utilization - 0.1
