"""Benchmark: Figure 8 — parallel-transfer latency vs flow count and RTT.

Paper claims: normalized latency (completion / theoretic bound) sits well
above 1, grows with RTT, and is wildly variable in the RTT=200 ms cells
(at 4 flows the standard deviation is literally off the chart), because
only the unlucky flows that lose slow-start packets fall behind and the
slowest flow defines completion.
"""

import numpy as np

from benchmarks.conftest import one_shot
from repro.experiments import run_fig8


def test_fig8_parallel_latency_grid(benchmark, scale):
    from repro.experiments import default_workers

    # The grid is embarrassingly parallel and seed-deterministic: fan the
    # repetitions out over a small process pool (identical numbers either way).
    result = one_shot(
        benchmark, run_fig8, seed=1, scale=scale,
        workers=min(4, default_workers()),
    )
    print()
    print(result.to_text())

    # Every cell's latency is above the bound.
    for (n, rtt), st in result.cells.items():
        assert st.mean >= 1.0, f"cell ({n}, {rtt}) below the bound"

    # Latency grows with RTT (compare the extreme RTT rows cell-by-cell).
    rtts = sorted({rtt for (_, rtt) in result.cells})
    lo_rtt, hi_rtt = rtts[0], rtts[-1]
    _, lo_means = result.series_for_rtt(lo_rtt)
    _, hi_means = result.series_for_rtt(hi_rtt)
    assert np.mean(hi_means) > np.mean(lo_means)

    # The long-RTT row shows the paper's unpredictability: substantially
    # higher run-to-run variation than the short-RTT row.
    hi_stds = [st.std for (n, rtt), st in result.cells.items() if rtt == hi_rtt]
    lo_stds = [st.std for (n, rtt), st in result.cells.items() if rtt == lo_rtt]
    assert max(hi_stds) > max(lo_stds)
    print(
        f"\n  paper:    latency 2-10x bound at 200ms, huge variance at few flows"
        f"\n  measured: mean normalized latency at {hi_rtt * 1e3:.0f}ms = "
        f"{np.mean(hi_means):.2f}x, max cell std = {max(hi_stds):.2f}"
    )
