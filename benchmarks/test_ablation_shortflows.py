"""Ablation: the two §3.3 burstiness sources, measured separately.

The paper attributes sub-RTT loss burstiness to (a) the DropTail
discipline under long-lived flows and (b) slow-start overshoot of short
flows — "even harder to be eliminated".  The bench runs each workload in
isolation and checks both produce the clustering.
"""

from benchmarks.conftest import one_shot
from repro.experiments.shortflows import run_shortflows


def test_ablation_shortflow_slowstart_bursts(benchmark, scale):
    result = one_shot(benchmark, run_shortflows, seed=1, scale=scale)
    print()
    print(result.to_text())

    # Long-lived flows: the Figure 2 clustering.
    assert result.longlived.frac_within_001 > 0.7
    assert result.longlived.is_burstier_than_poisson()
    # Pure short-flow churn — no long-lived flow exists — still clusters:
    # slow-start overshoot alone drops "a large number of continuous
    # packets" per event.
    assert result.churn.frac_within_001 > 0.5
    assert result.churn.mean_burst_size > 5.0
    assert result.churn.is_burstier_than_poisson()
    # The churn actually churned.
    assert result.churn_flows_started > 50
    assert result.churn_flows_completed > 0.5 * result.churn_flows_started
