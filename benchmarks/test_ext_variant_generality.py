"""Extension bench: the Figure 7 asymmetry generalizes across window-based
variants.

The paper's mechanism is about *emission pattern*, not any specific
congestion-avoidance law: any window-based sender (NewReno, SACK, BIC)
clumps its packets and under-samples bursty loss, so each should beat the
paced (rate-based) class on a shared DropTail bottleneck.
"""

import pytest

from benchmarks.conftest import one_shot
from repro.core.report import format_table
from repro.sim import DumbbellConfig, Simulator, build_dumbbell
from repro.sim.rng import RngStreams
from repro.sim.trace import ThroughputTrace
from repro.tcp import BicSender, NewRenoSender, PacedSender, SackSender, TcpSink

WINDOW_VARIANTS = (NewRenoSender, SackSender, BicSender)


def competition(window_cls, seed, n_per_class, rate_bps, rtt, duration):
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=rate_bps)
    cfg.buffer_pkts = max(4, cfg.bdp_packets(rtt))
    db = build_dumbbell(sim, cfg)
    tp = ThroughputTrace(bin_width=0.5)
    starts = streams.stream("starts")
    for i in range(n_per_class):
        pair = db.add_pair(rtt=rtt)
        fid = 100 + i
        snd = window_cls(sim, pair.left, fid, pair.right.node_id)
        TcpSink(sim, pair.right, fid, pair.left.node_id,
                sack=window_cls is SackSender, throughput=tp)
        tp.assign(fid, 0)
        snd.start(float(starts.uniform(0.0, 0.1)))
    for i in range(n_per_class):
        pair = db.add_pair(rtt=rtt)
        fid = 200 + i
        snd = PacedSender(sim, pair.left, fid, pair.right.node_id, base_rtt=rtt)
        TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
        tp.assign(fid, 1)
        snd.start(float(starts.uniform(0.0, 0.1)))
    sim.run(until=duration)
    return tp.mean_mbps(0, duration), tp.mean_mbps(1, duration)


def test_ext_window_based_variants_all_beat_pacing(benchmark, scale):
    def sweep():
        out = {}
        for cls in WINDOW_VARIANTS:
            out[cls.variant] = competition(
                cls, seed=3, n_per_class=scale.fig7_flows_per_class,
                rate_bps=scale.fig7_capacity_bps, rtt=0.050,
                duration=scale.fig7_duration,
            )
        return out

    results = one_shot(benchmark, sweep)
    rows = [
        [name, round(win, 2), round(paced, 2),
         f"{(win - paced) / win * 100:.1f}%"]
        for name, (win, paced) in results.items()
    ]
    print()
    print(format_table(
        ["window variant", "window Mbps", "paced Mbps", "pacing deficit"],
        rows,
        title="Figure 7 asymmetry across window-based variants",
    ))
    for name, (win, paced) in results.items():
        assert paced < win, f"pacing beat {name} — mechanism claim violated"
        assert paced > 0.03 * win  # not starved either
