"""Benchmark: Figure 2 — inter-loss-time PDF at the simulated bottleneck.

Paper claim: >95% of losses cluster within 0.01 RTT; measured PDF far
above the same-rate Poisson at small intervals.
"""

from benchmarks.conftest import one_shot
from repro.experiments import run_fig2


def test_fig2_ns2_pdf(benchmark, scale):
    result = one_shot(benchmark, run_fig2, seed=1, scale=scale)
    print()
    print(result.to_text())
    print(
        f"\n  paper:    mass < 0.01 RTT > 95%"
        f"\n  measured: mass < 0.01 RTT = {result.frac_001 * 100:.1f}% "
        f"(CV={result.comparison.cv:.1f}, "
        f"first-bin excess={result.comparison.first_bin_excess:.1f}x)"
    )
    # Shape assertions: heavy sub-RTT clustering, decisively non-Poisson.
    assert result.frac_001 > 0.8
    assert result.comparison.rejects_poisson
    assert result.comparison.cv > 3.0
    # At very high loss rates the same-rate Poisson also concentrates at
    # small intervals, compressing this ratio; it must still exceed 1.
    assert result.comparison.first_bin_excess > 1.2
    assert result.bottleneck_utilization > 0.8
