"""Benchmark: Figure 4 — inter-loss-time PDF over the Internet substitute.

Paper claims: ~40% of losses within 0.01 RTT, ~60% within 1 RTT; the loss
process is clearly burstier than Poisson in the 0–0.25 RTT range despite
Internet heterogeneity.
"""

import numpy as np

from benchmarks.conftest import one_shot
from repro.experiments import run_fig4


def test_fig4_planetlab_pdf(benchmark, scale):
    result = one_shot(benchmark, run_fig4, seed=2006, scale=scale)
    print()
    print(result.to_text())
    print(
        f"\n  paper:    ~40% < 0.01 RTT, ~60% < 1 RTT"
        f"\n  measured: {result.frac_001 * 100:.1f}% < 0.01 RTT, "
        f"{result.frac_1 * 100:.1f}% < 1 RTT"
    )
    assert 0.25 <= result.frac_001 <= 0.55
    assert 0.45 <= result.frac_1 <= 0.80
    assert result.comparison.rejects_poisson


def test_fig4_burstier_than_poisson_within_quarter_rtt(benchmark, scale):
    """Paper: 'much more bursty than the Poisson process in sub-RTT
    timescale (within 0 to 0.25 RTT)'."""
    result = one_shot(benchmark, run_fig4, seed=2007, scale=scale)
    pdf = result.pdf
    sel = pdf.centers <= 0.25
    measured_mass = float(np.sum(pdf.mass[sel]))
    poisson_mass = float(np.sum(result.poisson[sel]) * pdf.bin_width)
    print(
        f"\n  mass within 0.25 RTT: measured {measured_mass * 100:.1f}% "
        f"vs poisson {poisson_mass * 100:.1f}%"
    )
    assert measured_mass > 2.0 * poisson_mass
