"""Benchmark: Figure 7 — aggregate throughput, TCP Pacing vs TCP NewReno.

Paper claim: with identical loss-reaction logic, 16 paced flows get ~17%
lower aggregate throughput than 16 NewReno flows sharing a 100 Mbps /
50 ms bottleneck, because evenly-spaced packets sample the bursty loss
process far more often.
"""

from benchmarks.conftest import one_shot
from repro.experiments import run_fig7


def test_fig7_competition(benchmark, scale):
    result = one_shot(benchmark, run_fig7, seed=1, scale=scale)
    print()
    print(result.to_text())
    print(
        f"\n  paper:    pacing ~17% below NewReno"
        f"\n  measured: pacing {result.pacing_deficit * 100:.1f}% below NewReno"
    )
    # Shape: pacing loses, the link is well used, and neither class starves.
    assert result.mean_pacing_mbps < result.mean_newreno_mbps
    assert result.pacing_deficit > 0.03
    total = result.mean_newreno_mbps + result.mean_pacing_mbps
    assert total > 0.6 * result.capacity_bps / 1e6
    assert result.mean_pacing_mbps > 0.05 * result.capacity_bps / 1e6


def test_fig7_robust_across_rtts(benchmark, scale):
    """Paper: 'We observe the same behavior with different parameters
    (different RTTs and different number of flows).'"""

    def sweep():
        return [run_fig7(seed=2, scale=scale, rtt=rtt) for rtt in (0.020, 0.080)]

    results = one_shot(benchmark, sweep)
    print()
    for r in results:
        print(
            f"  rtt={r.rtt * 1e3:.0f}ms: NewReno {r.mean_newreno_mbps:.2f} Mbps, "
            f"Pacing {r.mean_pacing_mbps:.2f} Mbps "
            f"(deficit {r.pacing_deficit * 100:.1f}%)"
        )
    for r in results:
        assert r.mean_pacing_mbps < r.mean_newreno_mbps
