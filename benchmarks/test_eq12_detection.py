"""Benchmark: Equations (1)/(2) — loss-event detection by protocol class.

Paper claim: a bursty loss event of M drops is seen by L_rate = min(M, N)
rate-based flows but only L_win = max(M/K, 1) window-based flows, so
L_rate >> L_win.  Validated on the mixed competition's drop trace.
"""

from benchmarks.conftest import one_shot
from repro.experiments import analytic_table, run_eq12


def test_eq12_detection_model(benchmark, scale):
    result = one_shot(benchmark, run_eq12, seed=1, scale=scale)
    print()
    print(analytic_table())
    print()
    print(result.to_text())

    assert result.n_events > 10
    # The paper's inequality, measured: rate-based flows detect each event
    # far more often than window-based flows.
    assert result.measured_rate_hits > result.measured_window_hits
    assert result.measured_ratio > 1.3
    # The ideal-case model agrees on the direction; for very large events
    # both classes saturate at N flows, so the model ratio floors at 1.
    assert result.model_ratio >= 0.99
