"""Benchmark: Table 1 — the 26-site PlanetLab mesh.

Regenerates the site inventory and the synthetic mesh statistics (650
directed paths, RTTs spanning 2 ms to >300 ms as the paper reports).
"""

from benchmarks.conftest import one_shot
from repro.experiments import run_table1


def test_table1_sites(benchmark):
    result = one_shot(benchmark, run_table1)
    print()
    print(result.to_text())

    assert result.n_sites == 26
    assert result.n_paths == 650
    # Paper: RTTs "from 2ms to more than 200ms"; highest "more than 300ms".
    assert result.rtt_min < 0.020
    assert result.rtt_max > 0.300
