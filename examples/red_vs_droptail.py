#!/usr/bin/env python
"""Queue disciplines and loss burstiness: DropTail vs RED variants.

The paper (§3.3) blames the DropTail discipline for sub-RTT loss bursts —
once the FIFO fills, every arrival drops until senders back off half an
RTT later — and points to RED as the randomizing fix, "However, these
proposals suffer from difficult parameter settings problems" (§5).

This example runs the same TCP-plus-noise workload over a DropTail
bottleneck and four RED configurations, and prints the burstiness and
utilization of each: classic RED de-bursts the loss process; timid RED
degenerates into DropTail; heavy RED starves the link.

Run:  python examples/red_vs_droptail.py
"""

from repro.experiments import FAST
from repro.extensions import run_red_sweep, sweep_table


def main() -> None:
    outcomes = run_red_sweep(seed=1, scale=FAST)
    print(sweep_table(outcomes))

    by_label = {o.label: o for o in outcomes}
    dt, classic = by_label["droptail"], by_label["classic"]
    print(f"""
reading the table:
  * droptail: {dt.frac_001 * 100:.0f}% of losses within 0.01 RTT — the
    paper's burstiness, reproduced
  * classic RED (min=15%, max=45% of buffer, max_p=0.1): clustering cut
    to {classic.frac_001 * 100:.0f}% at {classic.utilization * 100:.0f}% utilization
  * timid RED (thresholds at the buffer top): never early-drops —
    statistically indistinguishable from droptail
  * heavy RED (max_p=1 at tiny thresholds): de-bursts, but look at the
    utilization column — the paper's "difficult parameter settings
    problems" in one row""")


if __name__ == "__main__":
    main()
