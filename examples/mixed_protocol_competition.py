#!/usr/bin/env python
"""Why rate-based and window-based protocols should not share a bottleneck.

Reproduces the paper's Figure 7 in miniature and then demonstrates the §5
remedy: TCP Pacing (rate-based emission, NewReno's exact loss logic)
against TCP NewReno over a shared DropTail bottleneck, first with the
ordinary loss signal, then with the persistent one-RTT ECN signal of the
paper's reference [22].

Run:  python examples/mixed_protocol_competition.py
"""

from repro.experiments import FAST, run_fig7
from repro.extensions import run_ecn_fairness


def main() -> None:
    print("=== Figure 7: mixed competition over DropTail ===\n")
    result = run_fig7(seed=1, scale=FAST)
    print(result.to_text())

    print("""
what happened: both classes run the SAME window/loss-reaction algorithm.
But the bottleneck drops packets in sub-RTT bursts, and:
  * a paced flow's packets are spread across the whole RTT, so nearly
    every burst clips at least one of them  -> sees most loss events;
  * a window flow's packets arrive as one clump, so most bursts fall
    between its clumps                      -> misses most loss events.
More detected events = more window halvings = less throughput.
""")

    print("=== The fix: a congestion signal without the burstiness ===\n")
    fairness = run_ecn_fairness(seed=1, scale=FAST)
    print(fairness.to_text())
    print(f"""
with the persistent one-RTT ECN signal, every flow — bursty or paced —
receives the congestion notification exactly once per event; the pacing
deficit collapses from {fairness.droptail_deficit * 100:.1f}% to \
{fairness.ecn_deficit * 100:.1f}%.

paper takeaways (§5):
  * do not mix rate-based (TFRC, paced) and window-based flows on a
    DropTail bottleneck — the rate-based side will starve;
  * in a controlled cluster, pick ONE class for every node;
  * or deploy a de-burst signal (persistent ECN / carefully tuned RED).""")


if __name__ == "__main__":
    main()
