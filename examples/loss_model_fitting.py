#!/usr/bin/env python
"""Fitting rigorous models to a measured loss trace.

The paper's future work: "more rigorous analysis on the burstiness of
packet loss process ... analyze the loss trace with more rigorous model."
This example takes one probe run from the Internet substitute and applies
the repository's model-fitting toolkit:

  * the Gilbert–Elliott two-state Markov fit (burst structure),
  * the conditional loss probability (Borella's statistic, paper §2),
  * the index-of-dispersion curve and Hurst estimates (multi-timescale),
  * a synthesis round trip — regenerate a trace from the fitted model and
    check the burstiness statistics survive.

Run:  python examples/loss_model_fitting.py
"""

import numpy as np

from repro.core import (
    coefficient_of_variation,
    conditional_loss_probability,
    fit_gilbert,
    intervals_from_trace,
    loss_run_lengths,
    self_similarity_report,
)
from repro.internet import Campaign, ProbeConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Measure: one high-loss path from a small campaign.
    # ------------------------------------------------------------------
    campaign = Campaign(seed=2006, probe_config=ProbeConfig(duration=120.0))
    result = campaign.run(40)
    exp = max(
        (e for e in result.experiments if e.valid),
        key=lambda e: e.small.n_lost + e.large.n_lost,
    )
    run = exp.large
    print(f"path: {exp.path.src.location} -> {exp.path.dst.location} "
          f"(RTT {exp.path.base_rtt * 1e3:.0f} ms)")
    print(f"probes sent {run.n_sent}, lost {run.n_lost} "
          f"({run.loss_rate * 100:.2f}%)\n")

    # Per-packet binary loss sequence reconstructed from receiver gaps
    # (send times carry a little jitter, so round to the probe slot).
    loss_seq = np.zeros(run.n_sent, dtype=np.int8)
    lost_idx = np.round(run.loss_times / 0.001).astype(int)
    loss_seq[np.clip(lost_idx, 0, run.n_sent - 1)] = 1

    # ------------------------------------------------------------------
    # 2. Gilbert–Elliott fit.
    # ------------------------------------------------------------------
    model = fit_gilbert(loss_seq)
    loss_runs, _ = loss_run_lengths(loss_seq)
    print(f"""Gilbert-Elliott fit
  p (good->bad)        : {model.p:.5f}
  r (bad->good)        : {model.r:.4f}
  stationary loss rate : {model.loss_rate * 100:.2f}%   (measured {run.loss_rate * 100:.2f}%)
  mean burst length    : {model.mean_burst_length:.2f} packets (measured {loss_runs.mean():.2f})
""")

    # ------------------------------------------------------------------
    # 3. Borella's conditional loss probability.
    # ------------------------------------------------------------------
    cond, p = conditional_loss_probability(loss_seq)
    print(f"conditional loss probability\n"
          f"  P(loss)              : {p * 100:.2f}%\n"
          f"  P(loss | prev lost)  : {cond * 100:.1f}%   "
          f"({cond / p:.0f}x — independent loss would give 1x)\n")

    # ------------------------------------------------------------------
    # 4. Multi-timescale view.
    # ------------------------------------------------------------------
    rep = self_similarity_report(run.loss_times, horizon=120.0,
                                 base_window=0.01, n_scales=8)
    idc_str = "  ".join(
        f"{w * 1e3:.0f}ms:{v:.1f}" for w, v in zip(rep.windows, rep.idc)
        if not np.isnan(v)
    )
    print(f"index of dispersion for counts (window: IDC)\n  {idc_str}")
    print(f"  Hurst (agg. var): {rep.hurst_var:.2f}   "
          f"Hurst (R/S): {rep.hurst_rs:.2f}   (Poisson: 0.5)\n")

    # ------------------------------------------------------------------
    # 5. Synthesis round trip: does the fitted model reproduce the trace's
    #    burstiness statistics?
    # ------------------------------------------------------------------
    synth = model.sample(run.n_sent, np.random.default_rng(7))
    synth_cond, synth_p = conditional_loss_probability(synth)
    synth_times = np.flatnonzero(synth) * 0.001
    cv_real = coefficient_of_variation(
        intervals_from_trace(run.loss_times, exp.path.base_rtt))
    cv_synth = coefficient_of_variation(
        intervals_from_trace(synth_times, exp.path.base_rtt))
    print(f"""synthesis round trip (fitted model -> fresh trace)
  loss rate   : measured {p * 100:.2f}%  synthetic {synth_p * 100:.2f}%
  P(loss|loss): measured {cond * 100:.1f}%  synthetic {synth_cond * 100:.1f}%
  interval CV : measured {cv_real:.1f}  synthetic {cv_synth:.1f}

The two-state fit captures the burst structure (rates, run lengths,
conditional probability); what it misses — visible if the measured CV
exceeds the synthetic one — is the longer-timescale clustering of
congestion *episodes*, which is exactly why the paper calls for loss
models beyond a single timescale.""")


if __name__ == "__main__":
    main()
