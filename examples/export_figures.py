#!/usr/bin/env python
"""Regenerate the paper's PDF figures as CSV files for external plotting.

Runs Figures 2, 3, and 4 at the fast scale and writes each as a CSV with
columns ``interval_rtt, measured_pdf, poisson_pdf`` — drop them into any
plotting tool with a log Y axis to recreate the paper's plots.  Also
writes Figure 7's two throughput series.

Run:  python examples/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro.core import write_csv
from repro.experiments import run_fig2, run_fig3, run_fig4, run_fig7


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)

    for name, runner, seed in (
        ("fig2_ns2", run_fig2, 1),
        ("fig3_dummynet", run_fig3, 1),
        ("fig4_internet", run_fig4, 2006),
    ):
        r = runner(seed=seed)
        p = write_csv(out / f"{name}.csv", {
            "interval_rtt": r.pdf.centers,
            "measured_pdf": r.pdf.density,
            "poisson_pdf": r.poisson,
        })
        print(f"{p}  (n={r.pdf.n}, <0.01 RTT: {r.frac_001 * 100:.1f}%)")

    r7 = run_fig7(seed=1)
    p = write_csv(out / "fig7_throughput.csv", {
        "time_s": r7.times,
        "newreno_mbps": r7.newreno_mbps,
        "pacing_mbps": r7.pacing_mbps,
    })
    print(f"{p}  (pacing deficit {r7.pacing_deficit * 100:.1f}%)")
    print(f"\nplot hint: log-scale Y for the fig2/3/4 PDFs, as in the paper.")


if __name__ == "__main__":
    main()
