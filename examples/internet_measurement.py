#!/usr/bin/env python
"""An Internet loss-burstiness measurement campaign (PlanetLab style).

Reproduces the paper's §3.1 Internet methodology on the synthetic 26-site
mesh: pick random directed site pairs, probe each path with two CBR runs
(48-byte and 400-byte packets), keep only experiments where both traces
show similar loss patterns, normalize inter-loss intervals by the path
RTT, and pool across paths.

Run:  python examples/internet_measurement.py
"""

import numpy as np

from repro.core import (
    cluster_bursts,
    compare_to_poisson,
    fraction_within,
    interval_pdf,
    poisson_reference_pdf,
)
from repro.core.report import format_pdf_series, format_table
from repro.internet import Campaign, ProbeConfig, n_directed_paths, sites


def main() -> None:
    print(f"mesh: {len(sites())} sites (paper Table 1), "
          f"{n_directed_paths()} directed paths\n")

    campaign = Campaign(seed=2006, probe_config=ProbeConfig(duration=60.0))
    result = campaign.run(120)
    print(f"experiments: {len(result.experiments)} "
          f"({result.n_valid} validated, {result.n_rejected} rejected by the "
          f"48B/400B similarity rule)")
    print(f"distinct paths measured: {len(result.paths_measured())}; "
          f"mean loss rate {result.mean_loss_rate() * 100:.2f}%\n")

    # A few example experiments, paper-style.
    rows = []
    for e in result.experiments[:8]:
        rows.append([
            e.path.src.location, e.path.dst.location,
            f"{e.path.base_rtt * 1e3:.0f}ms",
            f"{e.small.loss_rate * 100:.2f}%", f"{e.large.loss_rate * 100:.2f}%",
            "ok" if e.valid else "REJECTED",
        ])
    print(format_table(
        ["from", "to", "RTT", "loss(48B)", "loss(400B)", "validated"],
        rows, title="sample experiments",
    ))

    # The Figure 4 analysis.
    intervals = result.all_intervals_rtt()
    pdf = interval_pdf(intervals)
    poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
    print(f"""
pooled analysis over {pdf.n} loss intervals (cf. paper Fig. 4):
  within 0.01 RTT : {fraction_within(intervals, 0.01) * 100:.1f}%   (paper: ~40%)
  within 1 RTT    : {fraction_within(intervals, 1.00) * 100:.1f}%   (paper: ~60%)
  vs Poisson      : first-bin excess {compare_to_poisson(intervals).first_bin_excess:.1f}x
""")
    print(format_pdf_series(pdf.centers, pdf.density, poisson, every=10))

    # Per-path burst structure on the worst path.
    worst = max(
        (e for e in result.experiments if e.valid),
        key=lambda e: e.small.loss_rate + e.large.loss_rate,
    )
    bursts = cluster_bursts(worst.small.loss_times, gap=worst.path.base_rtt)
    sizes = np.array([b.count for b in bursts])
    print(f"""
burst anatomy of the lossiest path ({worst.path.src.location} -> {worst.path.dst.location}):
  {worst.small.n_lost} losses in {len(bursts)} bursts; mean burst {sizes.mean():.1f} packets,
  largest burst {sizes.max()} packets — losses arrive in clusters, not alone.""")


if __name__ == "__main__":
    main()
