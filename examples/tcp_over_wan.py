#!/usr/bin/env python
"""Running real protocols over the synthetic Internet paths.

The Figure 4 campaign applies each path's loss model analytically; this
example shows the other face of the same model — a simulator-integrated
WAN link (`LossyLink`) whose drops follow identical congestion-episode
weather, carrying *live* TCP.  Useful for questions the paper raises but
a probe cannot answer: how does a window-based transfer experience a
bursty Internet path, and what does its own retransmission record (the
TCP-trace view) miss?

Run:  python examples/tcp_over_wan.py
"""

import numpy as np

from repro.core import burstiness_summary, cluster_bursts
from repro.core.report import format_table
from repro.internet import build_rtt_matrix, build_sim_path, sample_path_loss_model
from repro.sim import RngStreams, Simulator
from repro.tcp import NewRenoSender, SackSender, TcpSink


def transfer_over(path, model, sender_cls, sack, seed):
    sim = Simulator()
    src, dst, trace = build_sim_path(
        sim, path, model, np.random.default_rng(seed), horizon=600.0,
    )
    done = []
    snd = sender_cls(sim, src, 1, dst.node_id, total_packets=4000,
                     on_complete=done.append)
    TcpSink(sim, dst, 1, src.node_id, sack=sack)
    snd.start()
    t = 0.0
    while t < 600.0 and not done:
        t += 5.0
        sim.run(until=t)
    return (done[0] if done else float("inf")), snd, trace


def main() -> None:
    streams = RngStreams(2006)
    matrix = build_rtt_matrix()
    # A long transpacific path: high RTT, episodic loss.
    path = matrix.path("planetlab2.cs.ucla.edu", "thu1.6planetlab.edu.cn")
    model = sample_path_loss_model(path, streams)
    # Make the weather much rougher than the campaign default: the 4 MB
    # transfer lasts only a couple of seconds, so episode arrivals are
    # scaled up until it reliably meets several.
    model.episode_rate *= 40.0
    model.random_loss_prob = max(model.random_loss_prob, 1e-3)
    print(f"path: {path.src.location} -> {path.dst.location}, "
          f"RTT {path.base_rtt * 1e3:.0f} ms")
    print(f"loss model: episodes {model.episode_rate:.2f}/s x "
          f"{model.episode_mean_duration * 1e3:.1f} ms (drop p="
          f"{model.episode_drop_prob:.2f}), "
          f"random loss {model.random_loss_prob * 100:.3f}%\n")

    rows = []
    traces = {}
    seeds = (11, 12, 13, 14, 15)
    for cls, sack in ((NewRenoSender, False), (SackSender, True)):
        secs, retx, tos, drops = [], 0, 0, 0
        for seed in seeds:
            s, snd, trace = transfer_over(path, model, cls, sack, seed)
            secs.append(s)
            retx += snd.stats.retransmissions
            tos += snd.stats.timeouts
            drops += len(trace)
            traces[cls.variant] = trace
        secs = np.array(secs)
        rows.append([
            cls.variant, f"{secs.mean():.1f}s +/- {secs.std():.1f}",
            retx, tos, drops,
        ])
    print(format_table(
        ["sender", f"4MB transfer ({len(seeds)} seeds)", "retx", "timeouts",
         "wan drops"],
        rows, title="TCP over the simulated WAN path",
    ))

    trace = traces["newreno"]
    if len(trace) >= 3:
        s = burstiness_summary(trace.drop_times(), path.base_rtt)
        bursts = cluster_bursts(trace.drop_times(), gap=path.base_rtt)
        print(f"""
what the wire actually did (NewReno run):
  {s.n_losses} drops in {len(bursts)} episodes, mean burst {s.mean_burst_size:.1f}
  packets — the flow's own view (one fast-retransmit per recovery RTT)
  smears these bursts out, which is why the paper probes with CBR instead
  of reading TCP traces.""")


if __name__ == "__main__":
    main()
