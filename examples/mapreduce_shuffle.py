#!/usr/bin/env python
"""MapReduce shuffle over a complete traffic graph.

The paper's future work: "We plan to simulate more complicate scenarios
such as a complete graph topology in MapReduce."  This example builds an
M x R shuffle on a star network — every mapper sends a partition to every
reducer, so each reducer's downlink takes an M-to-1 incast — and compares
window-based (NewReno) against rate-based (paced) senders, testing the
paper's §5 advice for controlled clusters.

Run:  python examples/mapreduce_shuffle.py
"""

import numpy as np

from repro.apps import MapReduceShuffle, ShuffleConfig
from repro.core.report import format_table
from repro.experiments import run_mapreduce
from repro.sim import RngStreams, Simulator


def anatomy_of_one_shuffle() -> None:
    """Run a single shuffle and show the per-reducer completion skew."""
    sim = Simulator()
    cfg = ShuffleConfig(
        n_mappers=4, n_reducers=4, bytes_per_partition=256 * 1024,
        downlink_rate_bps=20e6, buffer_pkts=32,
    )
    shuffle = MapReduceShuffle(sim, cfg, streams=RngStreams(7))
    result = shuffle.run(horizon=120.0)

    rows = []
    for r in range(cfg.n_reducers):
        rows.append([f"reducer {r}", f"{result.reducer_completion(r):.3f}s"])
    print(format_table(
        ["", "last partition at"], rows,
        title=(
            f"one {cfg.n_mappers}x{cfg.n_reducers} shuffle "
            f"(bound {cfg.reducer_bound_seconds:.2f}s per reducer)"
        ),
    ))
    print(f"makespan {result.makespan:.3f}s "
          f"({result.normalized_latency:.2f}x bound); "
          f"straggler spread {result.straggler_spread:.3f}s; "
          f"{result.drops} incast drops\n")


def main() -> None:
    anatomy_of_one_shuffle()

    print("=== window-based vs rate-based shuffle (5 seeds each) ===\n")
    result = run_mapreduce(seed=1)
    print(result.to_text())
    print("""
why: each reducer's downlink drops packets in sub-RTT bursts during the
incast.  With window-based senders the burst hits whichever mappers'
clumps were in flight — those flows halve, the others don't, and the
reducers finish far apart.  Paced senders spread every flow's packets
evenly, so every flow samples every congestion event: uniform slowdown,
tight reducer completions.  That is the paper's §5 recommendation for
tightly controlled environments, on its proposed MapReduce workload.""")


if __name__ == "__main__":
    main()
