#!/usr/bin/env python
"""GridFTP-style parallel transfer: how many flows should you use?

Reproduces the paper's §4.2 scenario (Figure 8): a fixed payload split
into equal chunks over N parallel TCP flows.  Because the bottleneck's
losses come in sub-RTT bursts, only some flows lose slow-start packets —
those flows drop to half speed (or worse) while their siblings race ahead,
and the *slowest* chunk defines the transfer's latency.  The result:
completion times far above the bandwidth bound and hard to predict,
especially at long RTTs with few flows.

Run:  python examples/gridftp_parallel_transfer.py
"""

import numpy as np

from repro.apps import ParallelTransfer, ParallelTransferConfig, lower_bound
from repro.core.report import format_table
from repro.experiments.common import add_noise_fleet
from repro.sim import DumbbellConfig, RngStreams, Simulator, build_dumbbell

CAPACITY = 20e6  # scaled-down cluster interconnect
PAYLOAD = 8 * 2**20  # 8 MB (the paper moves 64 MB at 100 Mbps)
RTTS = (0.010, 0.200)  # a rack-local and a cross-continent path
FLOW_COUNTS = (2, 4, 8, 16)
REPETITIONS = 3


def one_transfer(n_flows: int, rtt: float, seed: int) -> float:
    """Run one transfer; returns the normalized latency (1.0 = bound)."""
    sim = Simulator()
    streams = RngStreams(seed)
    cfg = DumbbellConfig(bottleneck_rate_bps=CAPACITY)
    cfg.buffer_pkts = max(4, cfg.bdp_packets(max(rtt, 0.01)) // 2)
    db = build_dumbbell(sim, cfg)
    # A touch of background noise, as on any shared interconnect: it is
    # what breaks the symmetry between otherwise-identical flows.
    add_noise_fleet(sim, db, streams, n_flows=4, load_fraction=0.05)
    transfer = ParallelTransfer(
        sim, db, rtt=rtt,
        config=ParallelTransferConfig(total_bytes=PAYLOAD, n_flows=n_flows),
    )
    # Stagger starts slightly, as real worker processes would.
    jitter = streams.stream("starts")
    for snd in transfer.senders:
        snd.start(float(jitter.uniform(0.0, 0.01)))
    t = 0.0
    while t < 300.0 and len(transfer._completions) < n_flows:
        t += 1.0
        sim.run(until=t)
    if len(transfer._completions) < n_flows:
        return float("inf")
    return max(transfer._completions) / lower_bound(PAYLOAD, CAPACITY)


def main() -> None:
    bound = lower_bound(PAYLOAD, CAPACITY)
    print(f"payload {PAYLOAD / 2**20:.0f} MB over {CAPACITY / 1e6:.0f} Mbps; "
          f"theoretic lower bound {bound:.2f} s\n")

    rows = []
    for rtt in RTTS:
        for n in FLOW_COUNTS:
            lats = [one_transfer(n, rtt, seed=1000 * n + r) for r in range(REPETITIONS)]
            lats = np.array(lats)
            rows.append([
                f"{rtt * 1e3:.0f}ms", n,
                f"{lats.mean():.2f}x", f"{lats.std():.2f}",
                f"{lats.min():.2f}-{lats.max():.2f}",
            ])
    print(format_table(
        ["RTT", "flows", "mean latency", "std", "range"],
        rows,
        title="Normalized transfer latency (1.0x = fully-utilized bottleneck)",
    ))
    print("""
reading the table (cf. paper Figure 8):
  * latency is always above the bound — slow start + loss recovery
  * long-RTT cells are far slower AND far noisier: losses hit flows
    unevenly, and the slowest flow is the transfer
  * adding flows at long RTT first helps (more slow-start aggression),
    which is exactly why predicting the right N is hard""")


if __name__ == "__main__":
    main()
