#!/usr/bin/env python
"""Quickstart: measure sub-RTT packet-loss burstiness in one page.

Builds the paper's Figure 1 dumbbell (a 20 Mbps DropTail bottleneck shared
by TCP flows and on-off noise), records every packet drop at the router,
and runs the paper's core analysis: RTT-normalized inter-loss intervals,
their PDF against a same-rate Poisson process, and the headline
burstiness statistics.

Run:  python examples/quickstart.py
"""

from repro.core import (
    burstiness_summary,
    compare_to_poisson,
    interval_pdf,
    intervals_from_trace,
    pdf_figure_text,
    poisson_reference_pdf,
)
from repro.sim import DumbbellConfig, RngStreams, Simulator, build_dumbbell
from repro.tcp import NewRenoSender, TcpSink


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the Figure 1 dumbbell: one shared DropTail bottleneck.
    # ------------------------------------------------------------------
    sim = Simulator()
    streams = RngStreams(seed=7)
    rtts = streams.stream("rtts").uniform(0.002, 0.200, size=8)
    mean_rtt = float(rtts.mean())

    config = DumbbellConfig(bottleneck_rate_bps=20e6)
    config.buffer_pkts = config.bdp_packets(mean_rtt) // 2  # 1/2 BDP buffer
    dumbbell = build_dumbbell(sim, config)

    # ------------------------------------------------------------------
    # 2. Attach 8 long-lived TCP NewReno flows with heterogeneous RTTs.
    # ------------------------------------------------------------------
    starts = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        pair = dumbbell.add_pair(rtt=float(rtt))
        flow_id = 100 + i
        sender = NewRenoSender(sim, pair.left, flow_id, pair.right.node_id)
        TcpSink(sim, pair.right, flow_id, pair.left.node_id)
        sender.start(float(starts.uniform(0.0, 0.5)))

    # ------------------------------------------------------------------
    # 3. Simulate 15 seconds; the bottleneck's drop trace is the dataset.
    # ------------------------------------------------------------------
    sim.run(until=15.0)
    drop_times = dumbbell.drop_trace.drop_times()
    print(f"simulated 15s: {sim.events_processed:,} events, "
          f"{len(drop_times)} packets dropped at the bottleneck\n")

    # ------------------------------------------------------------------
    # 4. The paper's analysis: interval PDF vs the same-rate Poisson.
    # ------------------------------------------------------------------
    intervals = intervals_from_trace(drop_times, mean_rtt)
    pdf = interval_pdf(intervals)  # 0.02-RTT bins over [0, 2] RTT
    poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
    print(pdf_figure_text(pdf, poisson, "Loss-interval PDF (cf. paper Fig. 2)"))

    # ------------------------------------------------------------------
    # 5. Headline statistics.
    # ------------------------------------------------------------------
    summary = burstiness_summary(drop_times, mean_rtt)
    comparison = compare_to_poisson(intervals)
    print(f"""
burstiness summary
  losses                 : {summary.n_losses}
  within 0.01 RTT        : {summary.frac_within_001 * 100:.1f}%   (paper Fig. 2: >95%)
  within 1 RTT           : {summary.frac_within_1 * 100:.1f}%
  interval CV            : {summary.cv:.1f}       (Poisson: 1.0)
  bursts (1-RTT gap)     : {summary.n_bursts}, mean size {summary.mean_burst_size:.1f}
  KS test vs exponential : p = {comparison.ks_pvalue:.2e}
  first-bin excess       : {comparison.first_bin_excess:.1f}x the Poisson density
  verdict                : {"BURSTY (non-Poisson)" if summary.is_burstier_than_poisson() else "Poisson-like"}
""")


if __name__ == "__main__":
    main()
