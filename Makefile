# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test check-invariants faults report zoo-smoke fluid-smoke fluid-convergence chaos campaign-smoke top-smoke bench bench-smoke bench-micro bench-paper figures examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test: check-invariants faults report zoo-smoke fluid-smoke chaos campaign-smoke top-smoke bench-smoke
	$(PYTHON) -m pytest tests/

# Chaos lane: SIGKILL the live campaign supervisor from outside, hang
# and kill its shard workers from inside, resume — every scenario must
# converge to bytes identical to a clean run.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/internet/test_chaos.py

# Crash-tolerant campaign smoke: a ~50-site sharded campaign is
# SIGKILLed mid-run and resumed from its shard ledger, byte-identical
# to the uninterrupted reference, under an explicit wall-clock budget.
campaign-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.internet.smoke

# Fleet-observability smoke: a seeded mini-campaign serves /metrics and
# /snapshot.json mid-run (--metrics-port 0, port discovered from the
# state dir), then `repro top --once` post-mortems the finished state
# directory with zero torn records.
top-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.obs.topsmoke

# Protocol/AQM zoo lane: every registered sender and queue kind must run
# a grid cell (the registry-completeness tests fail on unregistered-but-
# untested variants), plus the full sender x queue conservation matrix.
zoo-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/experiments/test_zoo.py tests/integration/test_zoo_matrix.py tests/tcp/test_registry.py tests/sim/test_codel.py

# Fluid lane: mean-field engine invariants (conservation, determinism,
# dt-halving) plus the N=100 vs N=1k packet-vs-fluid convergence pair.
fluid-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/sim/test_fluid.py tests/experiments/test_manyflows.py

# Full convergence run: adds the N=10k leg (several minutes of packet
# simulation) and the 100x flows/sec assertion.  Opt-in, not in `test`.
fluid-convergence:
	REPRO_FLUID_FULL=1 PYTHONPATH=src $(PYTHON) -m pytest -q tests/experiments/test_manyflows.py

# Conservation smoke: run the two simulator-heavy figures with the
# invariant checker armed; any accounting violation aborts the run.
# The second fig2 line re-runs with fault injection armed: conservation
# identities must hold even while links flap (injected drops are
# accounted separately, see repro.obs.invariants.check_link).
check-invariants:
	PYTHONPATH=src $(PYTHON) -m repro fig2 --check-invariants --metrics-out metrics/fig2.json
	PYTHONPATH=src $(PYTHON) -m repro fig7 --check-invariants --metrics-out metrics/fig7.json
	PYTHONPATH=src $(PYTHON) -m repro fig2 --check-invariants --inject-faults 11 --metrics-out metrics/fig2-faults.json

# Fault-injection smoke: armed fault plan, retry/skip policies,
# kill+resume bit-identity, tracefile corruption — then the fast
# faults-focused test lane.
faults:
	PYTHONPATH=src $(PYTHON) -m repro.faults.smoke
	PYTHONPATH=src $(PYTHON) -m pytest -q -k faults

# Flight-recorder smoke: record a telemetry-armed fig2, render its
# report twice (once automatically via --report, once via the report
# command), and validate the required sections are present and ordered.
report:
	rm -rf runs/smoke
	PYTHONPATH=src $(PYTHON) -m repro fig2 --telemetry-out runs/smoke --report
	PYTHONPATH=src $(PYTHON) -m repro report runs/smoke --html > /dev/null
	PYTHONPATH=src $(PYTHON) -c "from pathlib import Path; from repro.obs import validate_report; validate_report(Path('runs/smoke/report.md').read_text()); print('report: ok')"

# Tracked benchmark lane: paired baseline-vs-optimized suite, results
# appended to the repo's BENCH_<n>.json trajectory (see docs/PERFORMANCE.md).
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench

# Tiny pinned bench run: validates the BENCH_*.json schema and the <5%
# disabled-telemetry overhead budget.  Writes to a throwaway directory so
# smoke numbers never pollute the trajectory.
bench-smoke:
	rm -rf runs/bench-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench runs/bench-smoke --smoke
	PYTHONPATH=src $(PYTHON) -m repro bench . --check-regression

# pytest-benchmark micro lane (multi-round statistical measurements).
bench-micro:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	REPRO_SCALE=paper PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) examples/export_figures.py figures/

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis figures metrics runs
	find . -name __pycache__ -type d -exec rm -rf {} +
