# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-paper figures examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) examples/export_figures.py figures/

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis figures
	find . -name __pycache__ -type d -exec rm -rf {} +
