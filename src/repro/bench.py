"""Canonical tracked benchmark harness (``python -m repro bench``).

Performance claims need receipts.  This module runs the repository's
pinned benchmark suite — scheduler and pool micro-benchmarks plus a
scaled-down Figure 2 scenario — and writes the results to the next free
``BENCH_<n>.json`` in the target directory, so the repo accumulates a
perf *trajectory* instead of anecdotes.

Every headline number is a **paired** measurement: the same workload runs
on :class:`repro.sim.reference.ReferenceSimulator` (the pre-optimization
engine, kept verbatim as a baseline and equivalence oracle) and on the
optimized :class:`repro.sim.engine.Simulator`, in the same process, and
both numbers land in the same file.  The scenario pair additionally
asserts that the two engines produced *identical* drop traces — a
speedup measured against a behavior change would be meaningless.

Usage::

    python -m repro bench [DIR] [--smoke]     # DIR defaults to .
    make bench                                # full suite -> BENCH_<n>.json
    make bench-smoke                          # tiny pinned run + schema check

``--smoke`` shrinks every workload to seconds-total size, validates the
JSON schema with :func:`validate_bench`, and checks that the disabled
flight-recorder path costs < 5% — the regression tripwire for the
default ``make test`` lane.  Trajectory files are append-only: never
rewrite an existing ``BENCH_<n>.json``; later indices are later
measurements (machines differ, so compare ratios, not absolutes).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import resource
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

__all__ = [
    "SCHEMA",
    "BenchConfig",
    "SMOKE",
    "FULL",
    "run_bench",
    "validate_bench",
    "next_bench_path",
    "main",
]

#: Schema tag written into (and required from) every benchmark file.
SCHEMA = "repro-bench/1"

#: Benchmark entries every file must carry, with paired baseline numbers.
_REQUIRED_PAIRED = ("event_loop", "fig2_scaled")


@dataclass(frozen=True)
class BenchConfig:
    """Pinned workload sizes for one benchmark run."""

    name: str
    loop_events: int  # event-loop micro: no-op callbacks scheduled
    churn_events: int  # cancel-churn micro: handles scheduled (half cancelled)
    pool_packets: int  # packet micro: alloc/free cycles
    trace_records: int  # trace micro: records appended
    analysis_drops: int  # analysis micro: synthetic drop records
    repeats: int  # best-of repeats for the micros
    fig2_flows: int  # scaled scenario: TCP flows
    fig2_noise: int  # scaled scenario: noise flows
    fig2_duration: float  # scaled scenario: simulated seconds
    overhead_check: bool  # also measure disabled-telemetry overhead
    campaign_paths: int = 56  # sharded-campaign stage: directed paths probed
    manyflows_n: int = 1_000  # many-flows stage: population size
    manyflows_duration: float = 2.0  # many-flows stage: simulated seconds


FULL = BenchConfig(
    name="full",
    loop_events=200_000,
    churn_events=100_000,
    # The pool and trace stages compare small ratios (~1.3-3x), so their
    # passes are sized up to a few hundred ms each: per-pass jitter then
    # averages out instead of dominating the min-of-N ratio.
    pool_packets=400_000,
    trace_records=500_000,
    analysis_drops=200_000,
    # 13 best-of repeats: each stage's measurement window then spans
    # ~10-30s of machine time, long enough to catch a fast period for
    # both legs of a pair even when a shared host drifts mid-run (the
    # 0.95x trajectory gate needs run-to-run ratio noise well under 5%).
    repeats=13,
    fig2_flows=8,
    fig2_noise=12,
    fig2_duration=8.0,
    overhead_check=False,
    campaign_paths=650,  # the full 26-site directed matrix
    manyflows_n=10_000,  # the ISSUE's headline population
    manyflows_duration=2.0,
)

SMOKE = BenchConfig(
    name="smoke",
    loop_events=20_000,
    churn_events=10_000,
    pool_packets=20_000,
    trace_records=20_000,
    analysis_drops=20_000,
    repeats=1,
    fig2_flows=4,
    fig2_noise=4,
    fig2_duration=2.0,
    overhead_check=True,
    campaign_paths=30,
    manyflows_n=100,
    manyflows_duration=1.0,
)


def _noop() -> None:
    pass


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls (rides out noise).

    Garbage collection is forced once up front and then disabled for the
    timed calls: the bench process carries unrelated live objects (CLI,
    run log, earlier stages), and letting collection cycles land inside a
    timed loop taxes the allocation-heavy legs unevenly.
    """
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def _best_of_pair(
    base_fn: Callable[[], object],
    opt_fn: Callable[[], object],
    repeats: int,
) -> tuple[float, float]:
    """Interleaved ``_best_of`` for a baseline/optimized pair.

    Alternating one baseline and one optimized pass per repeat means both
    legs sample the same few seconds of machine conditions, so the ratio
    of the two minima is far more stable across runs than timing the
    blocks back to back (the same idiom ``_bench_overhead`` and the
    scaled fig2 stage already use).
    """
    base_best = opt_best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            base_fn()
            base_best = min(base_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            opt_fn()
            opt_best = min(opt_best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return base_best, opt_best


def _paired(name: str, unit: str, n: int, base_s: float, opt_s: float) -> dict:
    """One paired benchmark entry: throughputs plus the speedup ratio."""
    return {
        "unit": unit,
        "n": n,
        "baseline_wall_s": round(base_s, 6),
        "optimized_wall_s": round(opt_s, 6),
        "baseline": round(n / base_s, 1),
        "optimized": round(n / opt_s, 1),
        "speedup": round(base_s / opt_s, 3),
    }


# --------------------------------------------------------------------------
# Micro-benchmarks (paired: ReferenceSimulator / pre-PR idiom vs optimized)
# --------------------------------------------------------------------------


def _bench_event_loop(cfg: BenchConfig) -> dict:
    """Schedule + dispatch N no-op callbacks: Event-object heap vs the
    slot-free ``schedule_fast`` tuple path."""
    from repro.sim.engine import Simulator
    from repro.sim.reference import ReferenceSimulator

    n = cfg.loop_events

    def baseline():
        sim = ReferenceSimulator()
        for i in range(n):
            sim.schedule(i * 1e-6, _noop)
        sim.run()

    def optimized():
        sim = Simulator()
        for i in range(n):
            sim.schedule_fast(i * 1e-6, _noop)
        sim.run()

    return _paired(
        "event_loop", "events/sec", n,
        *_best_of_pair(baseline, optimized, cfg.repeats),
    )


def _bench_cancel_churn(cfg: BenchConfig) -> dict:
    """Cancellable handles with 50% cancelled before dispatch — exercises
    pooled Event recycling and the cancelled-pop fast discard."""
    from repro.sim.engine import Simulator
    from repro.sim.reference import ReferenceSimulator

    n = cfg.churn_events

    def drive(sim):
        handles = [sim.schedule(i * 1e-6, _noop) for i in range(n)]
        for h in handles[::2]:
            h.cancel()
        sim.run()

    base, opt = _best_of_pair(
        lambda: drive(ReferenceSimulator()), lambda: drive(Simulator()),
        cfg.repeats,
    )
    return _paired("cancel_churn", "events/sec", n, base, opt)


def _bench_packet_pool(cfg: BenchConfig) -> dict:
    """Packet alloc/free cycles: fresh objects vs the free-list pool."""
    from repro.sim.engine import Simulator
    from repro.sim.reference import ReferenceSimulator

    n = cfg.pool_packets

    def drive(sim):
        alloc, free = sim.alloc_packet, sim.free_packet
        for i in range(n):
            free(alloc(1, i, 1000))

    base, opt = _best_of_pair(
        lambda: drive(ReferenceSimulator()), lambda: drive(Simulator()),
        cfg.repeats,
    )
    return _paired("packet_pool", "packets/sec", n, base, opt)


class _RowDropTrace:
    """Pre-PR row storage (Python lists + asarray), kept as the append
    baseline for the columnar trace benchmark."""

    def __init__(self):
        self._times: list[float] = []
        self._flow_ids: list[int] = []
        self._seqs: list[int] = []
        self._sizes: list[int] = []
        self._marked: list[bool] = []

    def record(self, pkt, now: float, marked: bool = False) -> None:
        self._times.append(now)
        self._flow_ids.append(pkt.flow_id)
        self._seqs.append(pkt.seq)
        self._sizes.append(pkt.size)
        self._marked.append(marked)

    def materialize(self) -> None:
        np.asarray(self._times, dtype=np.float64)
        np.asarray(self._flow_ids, dtype=np.int64)
        np.asarray(self._seqs, dtype=np.int64)
        np.asarray(self._sizes, dtype=np.int64)
        np.asarray(self._marked, dtype=bool)

    def nbytes(self) -> int:
        cols = (self._times, self._flow_ids, self._seqs, self._sizes,
                self._marked)
        # List slots, plus the boxed floats backing the timestamp column
        # (small ints and bools are interned; floats are one object each).
        return sum(sys.getsizeof(c) for c in cols) + 32 * len(self._times)


def _bench_trace_append(cfg: BenchConfig) -> dict:
    """One record-then-analyze trace cycle, rows vs columns.

    Appends N records, then materializes every column twice — analysis
    reads columns repeatedly (``drop_times`` alone touches two), and the
    row layout pays a list-to-ndarray conversion on every read where the
    columnar layout pays a flat buffer copy.  Also reports each layout's
    per-record memory footprint, the columnar backend's main win.
    """
    from repro.sim.packet import Packet
    from repro.sim.trace import DropTrace

    n = cfg.trace_records
    pkt = Packet(flow_id=7, seq=0, size=1000)

    def baseline():
        tr = _RowDropTrace()
        for i in range(n):
            tr.record(pkt, i * 1e-6)
        tr.materialize()
        tr.materialize()
        return tr

    def optimized():
        tr = DropTrace()
        for i in range(n):
            tr.record(pkt, i * 1e-6)
        for _ in range(2):
            tr.times, tr.flow_ids, tr.seqs, tr.sizes, tr.marked  # noqa: B018
        return tr

    entry = _paired(
        "trace_append", "records/sec", n,
        *_best_of_pair(baseline, optimized, cfg.repeats),
    )
    columnar = optimized()
    row_bytes = baseline().nbytes() / n
    col_bytes = sum(
        len(col) * col.itemsize
        for col in (columnar._times, columnar._flow_ids, columnar._seqs,
                    columnar._sizes, columnar._kinds)
    ) / n
    entry["bytes_per_record_baseline"] = round(row_bytes, 1)
    entry["bytes_per_record_optimized"] = round(col_bytes, 1)
    return entry


def _synthetic_drops(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Clustered loss timestamps + flow ids shaped like a real drop trace."""
    rng = np.random.default_rng(0)
    per_burst = 20
    centers = np.sort(rng.uniform(0.0, n / 100.0, n // per_burst))
    times = np.sort((centers[:, None] + rng.exponential(1e-4, (len(centers), per_burst))).ravel())
    fids = rng.integers(100, 132, size=len(times), dtype=np.int64)
    return times, fids


def _bench_analysis(cfg: BenchConfig) -> dict:
    """Per-event distinct-flow counts: the pre-PR per-event Python loop
    (LossEvent objects + np.unique per event) vs the vectorized
    span/bincount kernel — the Eq. 1–2 detection hot path."""
    from repro.core.events import (
        cluster_loss_events,
        distinct_flows_per_event,
        event_spans,
    )

    times, fids = _synthetic_drops(cfg.analysis_drops)
    rtt = 0.05

    def baseline():
        events = cluster_loss_events(times, rtt, flow_ids=fids)
        return [e.n_flows_hit for e in events]

    def optimized():
        spans = event_spans(times, rtt)
        return distinct_flows_per_event(spans, fids)

    return _paired(
        "analysis_detection", "records/sec", len(times),
        *_best_of_pair(baseline, optimized, cfg.repeats),
    )


# --------------------------------------------------------------------------
# Scaled Figure 2 scenario (paired + equivalence-checked)
# --------------------------------------------------------------------------


def _run_fig2_scaled(sim_cls, cfg: BenchConfig, seed: int = 1):
    """One scaled fig2 run on the given engine; returns wall time,
    events processed, and the full drop-trace columns."""
    from repro.experiments.common import add_noise_fleet, random_rtts
    from repro.sim.rng import RngStreams
    from repro.sim.topology import DumbbellConfig, build_dumbbell
    from repro.tcp.newreno import NewRenoSender
    from repro.tcp.sink import TcpSink

    streams = RngStreams(seed)
    sim = sim_cls()
    rtts = random_rtts(cfg.fig2_flows, streams)
    mean_rtt = float(rtts.mean())
    topo = DumbbellConfig(bottleneck_rate_bps=20e6)
    topo.buffer_pkts = max(4, int(topo.bdp_packets(mean_rtt) * 0.5))
    db = build_dumbbell(sim, topo)
    start_rng = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        pair = db.add_pair(rtt=float(rtt), name=f"tcp{i}")
        snd = NewRenoSender(sim, pair.left, 100 + i, pair.right.node_id,
                            total_packets=None)
        TcpSink(sim, pair.right, 100 + i, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.5)))
    add_noise_fleet(sim, db, streams, cfg.fig2_noise, 0.10)

    t0 = time.perf_counter()
    sim.run(until=cfg.fig2_duration)
    wall = time.perf_counter() - t0
    tr = db.drop_trace
    cols = (tr.times, tr.flow_ids, tr.seqs, tr.sizes, tr.marked)
    return wall, sim.events_processed, cols


def _bench_fig2_scaled(cfg: BenchConfig) -> dict:
    """Paired scaled-fig2 runs; asserts the engines produce identical
    drop traces before reporting the speedup.  Best-of like the micros
    (each full run is deterministic, so repeats only tighten the
    wall-clock measurement)."""
    from repro.sim.engine import Simulator
    from repro.sim.reference import ReferenceSimulator

    base_wall, base_events, base_cols = _run_fig2_scaled(ReferenceSimulator, cfg)
    opt_wall, opt_events, opt_cols = _run_fig2_scaled(Simulator, cfg)
    for _ in range(cfg.repeats - 1):
        base_wall = min(base_wall, _run_fig2_scaled(ReferenceSimulator, cfg)[0])
        opt_wall = min(opt_wall, _run_fig2_scaled(Simulator, cfg)[0])
    identical = base_events == opt_events and all(
        np.array_equal(b, o) for b, o in zip(base_cols, opt_cols)
    )
    if not identical:
        raise AssertionError(
            "optimized engine diverged from the reference on the scaled "
            f"fig2 scenario (events {base_events} vs {opt_events}, "
            f"drops {len(base_cols[0])} vs {len(opt_cols[0])})"
        )
    return {
        "unit": "seconds",
        "sim_seconds": cfg.fig2_duration,
        "n_flows": cfg.fig2_flows + cfg.fig2_noise,
        "n_drops": int(len(base_cols[0])),
        "events": int(base_events),
        "baseline_wall_s": round(base_wall, 6),
        "optimized_wall_s": round(opt_wall, 6),
        "baseline": round(base_events / base_wall, 1),
        "optimized": round(opt_events / opt_wall, 1),
        "speedup": round(base_wall / opt_wall, 3),
        "identical_drops": True,
    }


def _bench_campaign_shard(cfg: BenchConfig) -> dict:
    """Sharded-campaign path throughput (the supervisor's worker hot
    path): probe ``campaign_paths`` directed paths through the streaming
    :class:`~repro.internet.shards.GapHistogram` reducer and report
    paths/sec plus the reducer's (constant) state footprint."""
    from repro.internet.probe import ProbeConfig
    from repro.internet.shards import plan_shards, reduce_shards, run_shard

    probe = ProbeConfig(duration=1.0)
    specs = plan_shards(26, 4, seed=2006, n_paths=cfg.campaign_paths)

    # Best-of like every other stage (this one used to be a single cold
    # pass, which made it the noisiest entry in the file by far).
    results = []

    def one_pass():
        results[:] = [run_shard(s, probe_config=probe) for s in specs]

    wall = _best_of(one_pass, cfg.repeats)
    merged, counters = reduce_shards(results)
    return {
        "unit": "paths/sec",
        "n": counters["n_experiments"],
        "n_shards": len(specs),
        "wall_s": round(wall, 6),
        "optimized": round(counters["n_experiments"] / wall, 1),
        "reducer_state_bytes": int(merged.state_nbytes()),
    }


def _bench_many_flows(cfg: BenchConfig) -> dict:
    """Many-flows population scenario: packet engine (baseline) vs the
    O(1)-per-flow mean-field fluid backend (optimized).

    Both legs run the identical two-RTT-class scenario at ``manyflows_n``
    flows under the weak-convergence scaling (see
    :mod:`repro.experiments.manyflows`); the reported unit is simulated
    flows per wall-clock second — the population-scale unlock.  One pass
    per engine: the packet leg dominates the suite's wall time at the
    full population, and both engines are deterministic per seed.
    """
    from dataclasses import replace

    from repro.experiments.common import FAST
    from repro.experiments.manyflows import (
        run_manyflows_fluid,
        run_manyflows_packet,
    )

    sc = replace(FAST, manyflows_duration=cfg.manyflows_duration)
    n = cfg.manyflows_n
    packet = run_manyflows_packet(n, seed=1, sc=sc)
    fluid = run_manyflows_fluid(n, sc=sc)
    entry = _paired("many_flows", "flows/sec", n, packet.wall_s, fluid.wall_s)
    entry["sim_seconds"] = cfg.manyflows_duration
    entry["share_gap"] = round(
        max(abs(f - p) for f, p in zip(fluid.throughput_share,
                                       packet.throughput_share)), 4,
    )
    return entry


def _bench_overhead(cfg: BenchConfig) -> dict:
    """Disabled-telemetry overhead: bare run vs inert observe_run wiring
    (min-of-N, interleaved).  Mirrors the test_perf_micro tripwire."""
    from repro.sim.engine import Simulator

    def workload(observe: bool) -> int:
        from repro.obs import observe_run
        from repro.sim.topology import DumbbellConfig, build_dumbbell
        from repro.tcp.newreno import NewRenoSender
        from repro.tcp.sink import TcpSink

        sim = Simulator()
        db = build_dumbbell(
            sim, DumbbellConfig(bottleneck_rate_bps=20e6, buffer_pkts=100)
        )
        flows = []
        for i in range(4):
            pair = db.add_pair(rtt=0.02 + 0.01 * i)
            snd = NewRenoSender(sim, pair.left, i + 1, pair.right.node_id,
                                total_packets=300)
            sink = TcpSink(sim, pair.right, i + 1, pair.left.node_id)
            flows.append((snd, sink))
        for snd, _ in flows:
            snd.start()
        if observe:
            obs = observe_run(sim, db, "bench-overhead", flows=flows)
            with obs.profiled():
                sim.run(until=10.0)
            obs.finalize(duration=10.0)
        else:
            sim.run(until=10.0)
        return sim.events_processed

    workload(True)  # warm-up
    bare, wired = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        workload(False)
        t1 = time.perf_counter()
        workload(True)
        bare.append(t1 - t0)
        wired.append(time.perf_counter() - t1)
    ratio = min(wired) / min(bare)
    return {
        "unit": "ratio",
        "bare_wall_s": round(min(bare), 6),
        "disabled_telemetry_wall_s": round(min(wired), 6),
        "overhead": round(ratio, 4),
    }


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------


def run_bench(cfg: BenchConfig = FULL, quiet: bool = False) -> dict:
    """Run the pinned suite and return the ``repro-bench/1`` document."""
    benches: dict[str, dict] = {}
    stages: list[tuple[str, Callable[[BenchConfig], dict]]] = [
        ("event_loop", _bench_event_loop),
        ("cancel_churn", _bench_cancel_churn),
        ("packet_pool", _bench_packet_pool),
        ("trace_append", _bench_trace_append),
        ("analysis_detection", _bench_analysis),
        ("fig2_scaled", _bench_fig2_scaled),
        ("campaign_shard", _bench_campaign_shard),
        ("many_flows", _bench_many_flows),
    ]
    if cfg.overhead_check:
        stages.append(("telemetry_overhead", _bench_overhead))
    from repro.obs.bus import RunLog

    log = RunLog("bench", stream=None if quiet else sys.stdout)
    for name, fn in stages:
        result = fn(cfg)
        benches[name] = result
        if "speedup" in result:
            log.emit(
                "stage",
                message=(
                    f"  {name:<20} {result['baseline']:>12,.0f} -> "
                    f"{result['optimized']:>12,.0f} {result['unit']:<12} "
                    f"({result['speedup']:.2f}x)"
                ),
                stage=name, speedup=result["speedup"],
                optimized=result["optimized"], unit=result["unit"],
            )
        elif "overhead" in result:
            log.emit(
                "stage",
                message=f"  {name:<20} overhead {result['overhead']:.3f}x",
                stage=name, overhead=result["overhead"],
            )
        else:
            log.emit(
                "stage",
                message=(
                    f"  {name:<20} {result['optimized']:>12,.1f} "
                    f"{result['unit']:<12}"
                ),
                stage=name, optimized=result["optimized"],
                unit=result["unit"],
            )
    doc = {
        "schema": SCHEMA,
        "mode": cfg.name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "benchmarks": benches,
    }
    validate_bench(doc)
    return doc


def validate_bench(doc: dict) -> None:
    """Assert ``doc`` is a well-formed ``repro-bench/1`` document.

    Raises ``ValueError`` naming the first violated requirement.  Checked
    by ``make bench-smoke`` and by tests against every file the harness
    writes.
    """
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("mode", "python", "platform", "peak_rss_kb", "benchmarks"):
        if key not in doc:
            raise ValueError(f"missing top-level field {key!r}")
    if not (isinstance(doc["peak_rss_kb"], int) and doc["peak_rss_kb"] > 0):
        raise ValueError("peak_rss_kb must be a positive integer")
    benches = doc["benchmarks"]
    if not isinstance(benches, dict) or not benches:
        raise ValueError("benchmarks must be a non-empty object")
    for name in _REQUIRED_PAIRED:
        entry = benches.get(name)
        if entry is None:
            raise ValueError(f"missing required benchmark {name!r}")
        for field in ("baseline", "optimized", "speedup",
                      "baseline_wall_s", "optimized_wall_s"):
            v = entry.get(field)
            if not (isinstance(v, (int, float)) and v > 0):
                raise ValueError(f"{name}.{field} must be a positive number")
    if benches["fig2_scaled"].get("identical_drops") is not True:
        raise ValueError("fig2_scaled.identical_drops must be true")
    campaign = benches.get("campaign_shard")
    if campaign is not None:
        for field in ("optimized", "reducer_state_bytes"):
            v = campaign.get(field)
            if not (isinstance(v, (int, float)) and v > 0):
                raise ValueError(
                    f"campaign_shard.{field} must be a positive number"
                )
    many = benches.get("many_flows")
    if many is not None:
        for field in ("baseline", "optimized", "speedup"):
            v = many.get(field)
            if not (isinstance(v, (int, float)) and v > 0):
                raise ValueError(
                    f"many_flows.{field} must be a positive number"
                )
    overhead = benches.get("telemetry_overhead")
    if overhead is not None and not overhead.get("overhead", 99.0) < 1.05:
        raise ValueError(
            f"disabled-telemetry overhead {overhead.get('overhead')}x "
            "exceeds the 5% budget"
        )


#: A later bench file may not lose more than this fraction of any
#: stage's recorded speedup relative to its predecessor.
REGRESSION_FLOOR = 0.95


def check_regression(directory: Union[str, Path],
                     floor: float = REGRESSION_FLOOR) -> list[str]:
    """Compare the two most recent ``BENCH_<n>.json`` trajectory files.

    For every benchmark stage present in both files with a recorded
    ``speedup``, the newer file must retain at least ``floor`` of the
    older file's speedup.  Returns a list of human-readable violations
    (empty = gate passes).  Fewer than two bench files is a pass — the
    gate guards the trajectory, it does not require one.

    A stage that exists in only one of the two files (a newly added or a
    retired benchmark) is not a violation: the gate emits a
    ``UserWarning`` naming the one-sided stage and skips the comparison,
    so growing the suite never breaks the gate retroactively.

    The gate deliberately compares *recorded* (checked-in) files rather
    than a live smoke run against a recorded full run: smoke configs are
    sized for schema validation, not for stable timing, and machine
    noise would make such a comparison flaky by construction.
    """
    d = Path(directory)
    indexed = []
    for p in d.glob("BENCH_*.json"):
        stem = p.stem.removeprefix("BENCH_")
        if stem.isdigit():
            indexed.append((int(stem), p))
    if len(indexed) < 2:
        return []
    indexed.sort()
    (_, prev_path), (_, new_path) = indexed[-2:]
    prev = json.loads(prev_path.read_text())
    new = json.loads(new_path.read_text())
    prev_b = prev.get("benchmarks", {})
    new_b = new.get("benchmarks", {})
    violations = []
    for name in sorted(set(prev_b) | set(new_b)):
        if name not in prev_b or name not in new_b:
            present, absent = ((new_path, prev_path) if name in new_b
                               else (prev_path, new_path))
            warnings.warn(
                f"bench stage {name!r} appears only in {present.name} "
                f"(absent from {absent.name}); skipping its regression "
                "comparison",
                stacklevel=2,
            )
            continue
        prev_entry, new_entry = prev_b[name], new_b[name]
        if not isinstance(prev_entry, dict) or not isinstance(new_entry, dict):
            continue
        a, b = prev_entry.get("speedup"), new_entry.get("speedup")
        if not (isinstance(a, (int, float)) and isinstance(b, (int, float))):
            continue
        if b < floor * a:
            violations.append(
                f"{name}: speedup fell {a:.3f}x -> {b:.3f}x in "
                f"{new_path.name} (< {floor:.2f}x of {prev_path.name})"
            )
    return violations


def next_bench_path(directory: Union[str, Path]) -> Path:
    """Next free ``BENCH_<n>.json`` in ``directory`` (trajectory order)."""
    d = Path(directory)
    taken = set()
    for p in d.glob("BENCH_*.json"):
        stem = p.stem.removeprefix("BENCH_")
        if stem.isdigit():
            taken.add(int(stem))
    n = 0
    while n in taken:
        n += 1
    return d / f"BENCH_{n}.json"


def _write_atomic(doc: dict, path: Path) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point behind ``python -m repro bench``."""
    import argparse

    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the pinned benchmark suite; write BENCH_<n>.json.",
    )
    p.add_argument("directory", nargs="?", default=".",
                   help="where BENCH_<n>.json files accumulate (default .)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny pinned run: schema + telemetry-overhead check, "
                   "no trajectory significance")
    p.add_argument("--check-regression", action="store_true",
                   help="don't run anything: compare the two latest "
                   "BENCH_<n>.json in the directory and fail if any "
                   f"stage's speedup fell below {REGRESSION_FLOOR}x of "
                   "its predecessor")
    args = p.parse_args(argv)

    from repro.obs.bus import RunLog

    log = RunLog("bench", stream=sys.stdout)
    if args.check_regression:
        violations = check_regression(args.directory)
        if violations:
            errlog = RunLog("bench", stream=sys.stderr, mode=log.mode)
            for v in violations:
                errlog.emit(
                    "regression", message=f"REGRESSION: {v}", detail=v
                )
            return 1
        log.emit(
            "gate",
            message=f"bench regression gate: ok (floor {REGRESSION_FLOOR}x)",
            floor=REGRESSION_FLOOR, ok=True,
        )
        return 0

    cfg = SMOKE if args.smoke else FULL
    log.emit(
        "start",
        message=f"repro bench [{cfg.name}] — paired baseline vs optimized:",
        mode=cfg.name,
    )
    doc = run_bench(cfg)
    out = next_bench_path(args.directory)
    out.parent.mkdir(parents=True, exist_ok=True)
    _write_atomic(doc, out)
    fig2 = doc["benchmarks"]["fig2_scaled"]
    loop = doc["benchmarks"]["event_loop"]
    log.emit(
        "summary",
        message=(
            f"event loop {loop['speedup']:.2f}x, fig2-scaled "
            f"{fig2['speedup']:.2f}x "
            f"(peak RSS {doc['peak_rss_kb'] / 1024:.0f} MiB)"
        ),
        event_loop_speedup=loop["speedup"],
        fig2_scaled_speedup=fig2["speedup"],
        peak_rss_kb=doc["peak_rss_kb"],
    )
    log.emit("written", message=f"[bench written to {out}]", path=str(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
