"""Persistent one-RTT ECN congestion signal (paper §5, reference [22]).

The paper's proposed fix for loss burstiness: instead of the loss signal —
a sub-RTT burst that only some flows sample — the router raises an ECN
signal that *persists for one full RTT* after congestion onset, marking
every ECN-capable packet in that window.  Since every active flow sends at
least one packet per RTT, (nearly) every flow receives the signal exactly
once per congestion event: uniform detection, restoring fairness between
window-based and rate-based implementations.

:class:`PersistentEcnQueue` implements the router side; the sender side is
the standard once-per-window ECN reaction already built into
:class:`repro.tcp.base.TcpSender` (enable with ``ecn=True``).
"""

from __future__ import annotations

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, EnqueueResult, register_queue

__all__ = ["PersistentEcnQueue"]


class PersistentEcnQueue(DropTailQueue):
    """DropTail buffer that raises a one-RTT-wide marking window on
    congestion onset.

    Congestion onset is detected when the queue crosses
    ``onset_threshold`` (a fraction of capacity, default 50% so the signal
    precedes buffer overflow and flows can back off before losses start)
    or overflows.
    From onset time ``t`` until ``t + signal_duration`` every ECN-capable
    arrival is marked (and still enqueued if there is room).  Non-ECN
    packets fall back to DropTail behaviour.

    ``signal_duration`` should be set to (an upper estimate of) the RTT of
    the participating flows — the "persistent signal for one RTT" of [22].
    """

    def __init__(
        self,
        capacity_pkts: int,
        signal_duration: float,
        onset_threshold: float = 0.5,
        name: str = "pecn",
    ):
        super().__init__(capacity_pkts, name=name)
        if signal_duration <= 0:
            raise ValueError(f"signal_duration must be positive, got {signal_duration}")
        if not (0.0 < onset_threshold <= 1.0):
            raise ValueError(f"onset_threshold must be in (0, 1], got {onset_threshold}")
        self.signal_duration = float(signal_duration)
        self.onset_threshold = float(onset_threshold)
        self.marking_until: float = -1.0
        self.signals_raised = 0

    def _maybe_raise_signal(self, now: float) -> None:
        if now >= self.marking_until:
            self.marking_until = now + self.signal_duration
            self.signals_raised += 1

    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        # _fits honours the byte limit too; a byte-capacity overflow is a
        # congestion-onset signal just like a slot overflow.
        full = not self._fits(pkt)
        # Occupancy including this arrival: the signal fires when the queue
        # would reach the threshold.
        congested = full or (len(self._q) + 1) >= self.onset_threshold * self.capacity
        if congested:
            self._maybe_raise_signal(now)

        marking = now < self.marking_until
        if full:
            # Overflow still drops — ECN cannot create buffer space.
            self.dropped += 1
            return EnqueueResult.DROPPED
        if marking and pkt.ecn_capable:
            pkt.ecn_marked = True
            self.marked += 1
            self._accept(pkt)
            return EnqueueResult.MARKED
        self._accept(pkt)
        return EnqueueResult.ENQUEUED


@register_queue("pecn")
def _make_pecn(capacity_pkts, *, rng=None, name="pecn", service_rate_pps=0.0,
               signal_duration: float = 0.1, onset_threshold: float = 0.5,
               **kwargs) -> PersistentEcnQueue:
    return PersistentEcnQueue(
        capacity_pkts,
        signal_duration=signal_duration,
        onset_threshold=onset_threshold,
        name=name,
        **kwargs,
    )
