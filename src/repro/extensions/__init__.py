"""Paper §5 / future-work extensions.

* :mod:`repro.extensions.ecn` — the persistent one-RTT ECN congestion
  signal of reference [22], as a queue discipline.
* :mod:`repro.extensions.ecn_fairness` — rerunning the Figure 7
  competition under the ECN signal to show the fairness fix.
* :mod:`repro.extensions.red_tuning` — RED parameter sweeps quantifying
  both of the paper's claims: RED de-bursts the loss process, and its
  parameters are easy to get wrong.
* :mod:`repro.extensions.delay_based` — the [23] comparison: delay-based
  (FAST) vs loss-based control on stability, fairness, and loss itself.
"""

from repro.extensions.delay_based import (
    DelayBasedResult,
    SignalOutcome,
    jain_index,
    run_delay_based,
)
from repro.extensions.ecn import PersistentEcnQueue
from repro.extensions.ecn_fairness import EcnFairnessResult, run_ecn_fairness
from repro.extensions.red_tuning import (
    RedOutcome,
    RedSetting,
    red_default_grid,
    run_red_sweep,
    sweep_table,
)

__all__ = [
    "DelayBasedResult",
    "EcnFairnessResult",
    "PersistentEcnQueue",
    "RedOutcome",
    "RedSetting",
    "SignalOutcome",
    "jain_index",
    "red_default_grid",
    "run_delay_based",
    "run_ecn_fairness",
    "run_red_sweep",
    "sweep_table",
]
