"""RED parameter studies (paper §3.3 / §5).

The paper suggests RED as the deployable way to de-burst the loss process
but warns that "the parameter tunings of RED are difficult".  This module
runs the Figure 2 scenario with a RED bottleneck across a parameter grid
and reports the burstiness metrics per setting, quantifying both claims:
well-tuned RED sharply reduces sub-RTT clustering; badly-tuned RED either
barely helps (thresholds too high -> effectively DropTail) or destroys
utilization (thresholds too low / max_p too aggressive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.burstiness import fraction_within
from repro.core.intervals import intervals_from_trace
from repro.core.report import format_table
from repro.experiments.common import Scale, add_noise_fleet, current_scale, random_rtts
from repro.sim.engine import Simulator
from repro.sim.queues import REDParams, REDQueue
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["RedSetting", "RedOutcome", "run_red_sweep", "red_default_grid"]


@dataclass(frozen=True)
class RedSetting:
    """One RED configuration, thresholds as fractions of the buffer."""

    label: str
    min_th_frac: float
    max_th_frac: float
    max_p: float
    weight: float = 0.002


@dataclass
class RedOutcome:
    """Burstiness + performance of one queue configuration."""

    setting: Optional[RedSetting]  # None = DropTail baseline
    n_drops: int
    frac_001: float
    frac_1: float
    utilization: float

    @property
    def label(self) -> str:
        """Human-readable name of this configuration."""
        return self.setting.label if self.setting else "droptail"


def red_default_grid() -> tuple[RedSetting, ...]:
    """Classic / aggressive / timid / heavy-handed configurations."""
    return (
        RedSetting("classic", min_th_frac=0.15, max_th_frac=0.45, max_p=0.1),
        RedSetting("aggressive", min_th_frac=0.05, max_th_frac=0.15, max_p=0.5),
        RedSetting("timid", min_th_frac=0.7, max_th_frac=0.95, max_p=0.02),
        RedSetting("heavy", min_th_frac=0.02, max_th_frac=0.10, max_p=1.0),
    )


def _run_one(
    setting: Optional[RedSetting],
    seed: int,
    sc: Scale,
    buffer_bdp_fraction: float,
) -> RedOutcome:
    streams = RngStreams(seed)
    sim = Simulator()
    rtts = random_rtts(sc.n_tcp_flows, streams)
    mean_rtt = float(rtts.mean())
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps)
    buffer_pkts = max(8, int(cfg.bdp_packets(mean_rtt) * buffer_bdp_fraction))
    cfg.buffer_pkts = buffer_pkts
    db = build_dumbbell(sim, cfg)

    if setting is not None:
        params = REDParams(
            min_th=max(1.0, setting.min_th_frac * buffer_pkts),
            max_th=max(2.0, setting.max_th_frac * buffer_pkts),
            max_p=setting.max_p,
            weight=setting.weight,
        )
        service_pps = sc.capacity_bps / 8.0 / cfg.packet_size
        red = REDQueue(
            buffer_pkts, params, rng=streams.stream("red"),
            service_rate_pps=service_pps,
        )
        db.set_forward_queue(red)

    start_rng = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        pair = db.add_pair(rtt=float(rtt), name=f"tcp{i}")
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.5)))
    add_noise_fleet(sim, db, streams, sc.n_noise_flows, sc.noise_load)
    sim.run(until=sc.measure_duration)

    drop_times = db.drop_trace.drop_times()
    intervals = intervals_from_trace(drop_times, mean_rtt)
    return RedOutcome(
        setting=setting,
        n_drops=len(drop_times),
        frac_001=fraction_within(intervals, 0.01) if len(intervals) else float("nan"),
        frac_1=fraction_within(intervals, 1.0) if len(intervals) else float("nan"),
        utilization=db.bottleneck_fwd.utilization(sc.measure_duration),
    )


def run_red_sweep(
    seed: int = 1,
    scale: Optional[Scale] = None,
    settings: Optional[tuple[RedSetting, ...]] = None,
    buffer_bdp_fraction: float = 0.5,
) -> list[RedOutcome]:
    """DropTail baseline plus every RED setting, same workload and seed."""
    sc = current_scale(scale)
    grid = settings if settings is not None else red_default_grid()
    outcomes = [_run_one(None, seed, sc, buffer_bdp_fraction)]
    for s in grid:
        outcomes.append(_run_one(s, seed, sc, buffer_bdp_fraction))
    return outcomes


def sweep_table(outcomes: list[RedOutcome]) -> str:
    """ASCII table of the sweep outcomes."""
    rows = [
        [o.label, o.n_drops, round(o.frac_001, 3), round(o.frac_1, 3),
         round(o.utilization, 3)]
        for o in outcomes
    ]
    return format_table(
        ["queue", "drops", "<0.01 RTT", "<1 RTT", "utilization"],
        rows,
        title="RED tuning sweep — loss burstiness vs queue discipline",
    )
