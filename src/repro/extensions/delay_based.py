"""Delay-based vs loss-based congestion control (paper §5, ref. [23]).

"In [23], a delay-based algorithm is proposed and achieved better
stability and fairness."  This experiment quantifies that claim on the
Figure 1 dumbbell: the same flow population run under loss-based NewReno
and under delay-based FAST, comparing

* **losses** — FAST needs none once converged; NewReno *requires* them;
* **fairness** — Jain's index across flows with heterogeneous RTTs
  (loss-based TCP is biased ~1/RTT; FAST equalizes);
* **stability** — the coefficient of variation of each flow's window
  after convergence (sawtooth vs flat);
* **utilization** — neither may waste the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import ThroughputTrace
from repro.tcp.fast import FastSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

from repro.core.fairness import jain_index

__all__ = ["SignalOutcome", "DelayBasedResult", "run_delay_based", "jain_index"]


@dataclass
class SignalOutcome:
    """One congestion signal's behaviour on the shared bottleneck."""

    label: str
    drops: int
    jain: float
    mean_window_cv: float  # mean per-flow cwnd CV after convergence
    utilization: float


@dataclass
class DelayBasedResult:
    """Loss-signal vs delay-signal outcomes, side by side."""
    loss_based: SignalOutcome
    delay_based: SignalOutcome

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [
            [o.label, o.drops, round(o.jain, 3), round(o.mean_window_cv, 3),
             round(o.utilization, 3)]
            for o in (self.loss_based, self.delay_based)
        ]
        return format_table(
            ["signal", "drops", "Jain fairness", "window CV", "utilization"],
            rows,
            title="Delay-based vs loss-based congestion control (paper §5, [23])",
        )


def _run_signal(
    sender_cls, label: str, seed: int, sc: Scale, rtts, duration: float,
    converge_after: float,
) -> SignalOutcome:
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
    mean_rtt = float(np.mean(rtts))
    # Buffer comfortably above N*alpha so the delay-based target fits.
    cfg.buffer_pkts = max(len(rtts) * 12, cfg.bdp_packets(mean_rtt) // 2)
    db = build_dumbbell(sim, cfg)
    tp = ThroughputTrace(1.0)
    senders = []
    start_rng = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        fid = 100 + i
        pair = db.add_pair(rtt=float(rtt))
        kwargs = {"alpha": 10.0} if sender_cls is FastSender else {}
        snd = sender_cls(sim, pair.left, fid, pair.right.node_id, **kwargs)
        TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
        tp.assign(fid, i)
        snd.start(float(start_rng.uniform(0.0, 0.2)))
        senders.append(snd)

    window_samples: list[list[float]] = [[] for _ in senders]

    def sample():
        """Record every sender's current window (periodic probe)."""
        for k, s in enumerate(senders):
            window_samples[k].append(s.cwnd)
        if sim.now < duration - 0.25:
            sim.schedule(0.2, sample)

    sim.schedule(converge_after, sample)
    sim.run(until=duration)

    rates = np.array([tp.total_bytes(i) for i in range(len(rtts))], dtype=float)
    cvs = []
    for ws in window_samples:
        arr = np.array(ws)
        if len(arr) >= 2 and arr.mean() > 0:
            cvs.append(arr.std() / arr.mean())
    return SignalOutcome(
        label=label,
        drops=len(db.drop_trace),
        jain=jain_index(rates),
        mean_window_cv=float(np.mean(cvs)) if cvs else float("nan"),
        utilization=db.bottleneck_fwd.utilization(duration),
    )


def run_delay_based(
    seed: int = 1,
    scale: Optional[Scale] = None,
    n_flows: int = 6,
    rtt_range: tuple[float, float] = (0.020, 0.120),
) -> DelayBasedResult:
    """Run both signals on an identical heterogeneous-RTT population."""
    sc = current_scale(scale)
    streams = RngStreams(seed)
    rtts = streams.stream("rtts").uniform(rtt_range[0], rtt_range[1], size=n_flows)
    duration = sc.fig7_duration
    converge_after = duration / 2.0
    return DelayBasedResult(
        loss_based=_run_signal(
            NewRenoSender, "loss (NewReno)", seed, sc, rtts, duration, converge_after
        ),
        delay_based=_run_signal(
            FastSender, "delay (FAST)", seed, sc, rtts, duration, converge_after
        ),
    )
