"""ECN fairness experiment: does the persistent signal fix Figure 7?

Paper §5: the persistent one-RTT ECN signal "solves the competition
problem of rate-based implementation and window-based implementations" —
because every flow sees the signal exactly once per congestion event, the
detection asymmetry of Eqs. (1)/(2) disappears.

This driver reruns the Figure 7 competition twice — DropTail + loss
signal vs. PersistentEcnQueue + ECN-capable senders — and reports the
pacing deficit under each regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import Scale, current_scale
from repro.extensions.ecn import PersistentEcnQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import ThroughputTrace
from repro.tcp.newreno import NewRenoSender
from repro.tcp.pacing import PacedSender
from repro.tcp.sink import TcpSink

__all__ = ["EcnFairnessResult", "run_ecn_fairness"]


@dataclass
class EcnFairnessResult:
    """Pacing deficit with and without the persistent ECN signal."""

    droptail_newreno_mbps: float
    droptail_pacing_mbps: float
    ecn_newreno_mbps: float
    ecn_pacing_mbps: float
    signals_raised: int

    @property
    def droptail_deficit(self) -> float:
        """Pacing's fractional throughput loss under DropTail."""
        return _deficit(self.droptail_newreno_mbps, self.droptail_pacing_mbps)

    @property
    def ecn_deficit(self) -> float:
        """Pacing's fractional throughput loss under the ECN signal."""
        return _deficit(self.ecn_newreno_mbps, self.ecn_pacing_mbps)

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        return (
            "ECN fairness — persistent one-RTT signal vs DropTail loss signal\n"
            f"  droptail: NewReno {self.droptail_newreno_mbps:.2f} Mbps, "
            f"Pacing {self.droptail_pacing_mbps:.2f} Mbps "
            f"(deficit {self.droptail_deficit * 100:.1f}%)\n"
            f"  ecn:      NewReno {self.ecn_newreno_mbps:.2f} Mbps, "
            f"Pacing {self.ecn_pacing_mbps:.2f} Mbps "
            f"(deficit {self.ecn_deficit * 100:.1f}%)\n"
            f"  signals raised: {self.signals_raised}"
        )


def _deficit(newreno: float, pacing: float) -> float:
    if newreno <= 0:
        return float("nan")
    return (newreno - pacing) / newreno


def _competition(
    seed: int, sc: Scale, rtt: float, ecn: bool
) -> tuple[float, float, int]:
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
    # Half-BDP buffer: congestion onsets are frequent enough that the
    # signal comparison has plenty of events to average over.
    cfg.buffer_pkts = max(4, cfg.bdp_packets(rtt) // 2)
    db = build_dumbbell(sim, cfg)
    signals = 0
    if ecn:
        # [22] calls for a signal persisting one RTT; in practice the echo
        # takes ~1 RTT to return and bursty flows have phase jitter, so a
        # 1.5x margin guarantees every flow's next burst sees the signal.
        q = PersistentEcnQueue(cfg.buffer_pkts, signal_duration=1.5 * rtt)
        db.set_forward_queue(q)
    tp = ThroughputTrace(bin_width=0.5)
    start_rng = streams.stream("starts")
    n = sc.fig7_flows_per_class
    for i in range(n):
        pair = db.add_pair(rtt=rtt, name=f"nr{i}")
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id, ecn=ecn)
        TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
        tp.assign(fid, 0)
        snd.start(float(start_rng.uniform(0.0, 0.1)))
    for i in range(n):
        pair = db.add_pair(rtt=rtt, name=f"pc{i}")
        fid = 200 + i
        snd = PacedSender(
            sim, pair.left, fid, pair.right.node_id, base_rtt=rtt, ecn=ecn
        )
        TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
        tp.assign(fid, 1)
        snd.start(float(start_rng.uniform(0.0, 0.1)))
    sim.run(until=sc.fig7_duration)
    if ecn:
        signals = db.forward_queue.signals_raised  # type: ignore[attr-defined]
    return (
        tp.mean_mbps(0, sc.fig7_duration),
        tp.mean_mbps(1, sc.fig7_duration),
        signals,
    )


def run_ecn_fairness(
    seed: int = 1, scale: Optional[Scale] = None, rtt: float = 0.050
) -> EcnFairnessResult:
    """Run the Figure 7 competition under both congestion signals."""
    sc = current_scale(scale)
    dt_nr, dt_pc, _ = _competition(seed, sc, rtt, ecn=False)
    ec_nr, ec_pc, signals = _competition(seed, sc, rtt, ecn=True)
    return EcnFairnessResult(
        droptail_newreno_mbps=dt_nr,
        droptail_pacing_mbps=dt_pc,
        ecn_newreno_mbps=ec_nr,
        ecn_pacing_mbps=ec_pc,
        signals_raised=signals,
    )
