"""Fault injection and resilient execution (``repro.faults``).

The paper's PlanetLab leg (§3.1) is an inherently lossy measurement
process: sites go down mid-campaign, probe runs crash, traces arrive
truncated.  This package makes failure a first-class, *injectable*,
*recoverable* condition:

:class:`FaultPlan`
    A seed-reproducible schedule of injected faults — link flaps,
    transient loss spikes, clock skew, probe-process crashes, tracefile
    truncation — armed on the simulator leg (link down/up events) or the
    campaign leg (path outages, mid-run crashes).
:class:`Result` / :class:`RetryPolicy`
    Per-item outcomes and bounded backoff for the resilient
    :func:`repro.experiments.parallel.parallel_map` and the campaign.
:class:`Checkpoint`
    JSON-lines completion logs so an interrupted campaign resumes exactly
    where it stopped, bit-identical to an uninterrupted run.

``python -m repro.faults.smoke`` (the ``make faults`` target) smoke-runs
a campaign with an armed plan and asserts it completes degraded-but-valid.
"""

from repro.faults.checkpoint import (
    ENV_CHECKPOINT_DIR,
    Checkpoint,
    CheckpointError,
    checkpoint_path_from_env,
)
from repro.faults.plan import (
    ENV_FAULTS,
    ClockSkew,
    FaultPlan,
    InjectedFault,
    LinkFlap,
    LossSpike,
    ProbeCrash,
    ProbeCrashError,
    TraceTruncation,
    WorkerHang,
    WorkerKill,
    fault_seed_from_env,
)
from repro.faults.resilient import (
    ENV_ON_ERROR,
    ItemTimeoutError,
    Result,
    RetryPolicy,
    on_error_from_env,
    run_with_retry,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "ClockSkew",
    "ENV_CHECKPOINT_DIR",
    "ENV_FAULTS",
    "ENV_ON_ERROR",
    "FaultPlan",
    "InjectedFault",
    "ItemTimeoutError",
    "LinkFlap",
    "LossSpike",
    "ProbeCrash",
    "ProbeCrashError",
    "Result",
    "RetryPolicy",
    "TraceTruncation",
    "WorkerHang",
    "WorkerKill",
    "checkpoint_path_from_env",
    "fault_seed_from_env",
    "on_error_from_env",
    "run_with_retry",
]
