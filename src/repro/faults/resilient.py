"""Resilient execution primitives: per-item results and retry policies.

The measurement-harness layers (``repro.experiments.parallel``,
``repro.internet.campaign``) treat worker failure as data, not as a fatal
event: every work item resolves to a :class:`Result` carrying either the
value or the exception plus how many attempts it took.  A
:class:`RetryPolicy` bounds the retries and spaces them with exponential
backoff whose jitter is *deterministic* (derived from the item key via
:func:`repro.sim.rng.stable_hash`), so a retried campaign replays
identically from the same seed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.rng import stable_hash

__all__ = [
    "Result",
    "RetryPolicy",
    "ItemTimeoutError",
    "run_with_retry",
    "ENV_ON_ERROR",
    "on_error_from_env",
]

#: Valid ``on_error`` policies for resilient mappers.
ON_ERROR_POLICIES = ("raise", "skip", "retry")

#: Environment knob: default ``on_error`` policy for experiment drivers
#: (set by the CLI's ``--on-error``; empty/unset means ``"raise"``).
ENV_ON_ERROR = "REPRO_ON_ERROR"


def on_error_from_env(default: str = "raise") -> str:
    """The ``REPRO_ON_ERROR`` policy, or ``default`` when unset."""
    raw = os.environ.get(ENV_ON_ERROR, "").strip().lower()
    if not raw:
        return default
    if raw not in ON_ERROR_POLICIES:
        raise ValueError(
            f"{ENV_ON_ERROR} must be one of {ON_ERROR_POLICIES}, got {raw!r}"
        )
    return raw


class ItemTimeoutError(RuntimeError):
    """A work item exceeded its per-item timeout."""


@dataclass
class Result:
    """Outcome of one work item under a resilient mapper.

    ``ok`` is True iff ``value`` holds the item's return value; otherwise
    ``error`` holds the exception of the *last* attempt.  ``attempts``
    counts every execution, so a first-try success reads 1.
    """

    index: int
    ok: bool
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1

    @property
    def error_text(self) -> str:
        """``"TypeName: message"`` of the failure ('' when ok)."""
        if self.error is None:
            return ""
        return f"{type(self.error).__name__}: {self.error}"

    def unwrap(self) -> Any:
        """The value, or re-raise the recorded error."""
        if self.ok:
            return self.value
        assert self.error is not None
        raise self.error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``retries`` is the number of *additional* attempts after the first
    (``retries=2`` means at most 3 executions).  The delay before retry
    attempt ``k`` (1-based) is ``base * factor**(k-1)`` stretched by up to
    ``jitter`` (a fraction), capped at ``max_delay``.  Jitter is derived
    from a stable hash of the item key, never from wall-clock entropy, so
    two runs of the same campaign back off identically.
    """

    retries: int = 2
    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based) of item ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        d = self.base * self.factor ** (attempt - 1)
        if self.jitter > 0:
            u = stable_hash(f"{key}/attempt{attempt}") / 0xFFFFFFFF
            d *= 1.0 + self.jitter * u
        return min(d, self.max_delay)


def run_with_retry(
    fn,
    item,
    index: int = 0,
    policy: Optional[RetryPolicy] = None,
    pass_attempt: bool = False,
    key: str = "",
    sleep=time.sleep,
) -> Result:
    """Execute ``fn(item)`` serially under ``policy``; never raises.

    With ``pass_attempt`` the callable receives the 1-based attempt number
    as a second argument — the hook fault plans use to crash an experiment
    on its first attempt and let the retry succeed.
    """
    pol = policy or RetryPolicy(retries=0)
    last: Optional[BaseException] = None
    attempts = 0
    for attempt in range(1, pol.retries + 2):
        attempts = attempt
        try:
            value = fn(item, attempt) if pass_attempt else fn(item)
            return Result(index=index, ok=True, value=value, attempts=attempt)
        except Exception as exc:  # noqa: BLE001 - failure is data here
            last = exc
            if attempt <= pol.retries:
                sleep(pol.delay(attempt, key=key or str(index)))
    return Result(index=index, ok=False, error=last, attempts=attempts)
