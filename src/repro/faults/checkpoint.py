"""JSON-lines checkpoints for interruptible grid/campaign runs.

A checkpoint file holds one meta line (what run this is: kind, seed, item
count) followed by one JSON record per *completed* work item.  Appends are
flushed and fsynced, so a killed run loses at most the record it was
writing.  The durability rule is newline-terminated-or-nothing: a record
only counts once its trailing newline is on disk.  A kill mid-append
leaves a torn final line; :meth:`Checkpoint.load` (and the first
:meth:`Checkpoint.append` after reopening) detects it, warns, drops the
partial record, and truncates the file back to the last complete line —
if the torn bytes were left in place, the next append would concatenate
onto them and poison every later resume.  Anything else undecodable is
real corruption and raises.  Resuming is then just "skip the indices
already on disk": the caller re-derives per-item RNG streams from the run
seed, so the merged result is bit-identical to an uninterrupted run.

Floats survive the round trip exactly: ``json`` serializes via
``float.__repr__``, which is lossless for IEEE-754 doubles.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import IO, Optional, Union

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "ENV_CHECKPOINT_DIR",
    "checkpoint_path_from_env",
]

_FORMAT_VERSION = 1

#: Environment knob: directory experiment drivers write their checkpoint
#: files into (set by the CLI's ``--checkpoint-dir``; unset: no checkpoints).
ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"


def checkpoint_path_from_env(name: str) -> Optional[Path]:
    """``$REPRO_CHECKPOINT_DIR/<name>.jsonl``, or ``None`` when unset."""
    raw = os.environ.get(ENV_CHECKPOINT_DIR, "").strip()
    if not raw:
        return None
    return Path(raw) / f"{name}.jsonl"


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt or belongs to a different run."""


class Checkpoint:
    """One run's append-only completion log.

    Parameters
    ----------
    path:
        The ``.jsonl`` file (created lazily on first append).
    meta:
        Identity of the run (e.g. ``{"kind": "campaign", "seed": 7,
        "n": 300}``).  Written as the first line of a fresh file and
        *validated* against an existing file on :meth:`load` — resuming a
        campaign against another run's checkpoint is an error, not a
        silently mixed dataset.
    """

    def __init__(self, path: Union[str, Path], meta: Optional[dict] = None):
        self.path = Path(path)
        self.meta = dict(meta or {})
        self.meta.setdefault("version", _FORMAT_VERSION)
        self._fh: Optional[IO[str]] = None

    # -- torn-tail repair ------------------------------------------------
    def _repair_torn_tail(self) -> int:
        """Drop a partial trailing line left by a kill mid-append.

        A record is durable only once its newline reaches disk, so any
        bytes after the last ``\\n`` are the append a crash interrupted —
        never a record.  They must also be *removed*: a later append
        would otherwise concatenate onto them, welding two records into
        one undecodable line and poisoning every subsequent resume.
        Returns the number of bytes dropped (0 when the file is clean).
        """
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return 0
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all
        torn = len(raw) - keep
        warnings.warn(
            f"{self.path}: dropping {torn}-byte partial record left by an "
            f"interrupted append (resuming from the last complete line)",
            stacklevel=3,
        )
        with self.path.open("rb+") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
        return torn

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[int, dict]:
        """Completed records by index (empty when no file exists).

        A truncated final line (the append a crash interrupted) is
        dropped — with a warning — and the file is repaired in place so
        later appends start from a clean tail.  An undecodable *complete*
        line anywhere raises :class:`CheckpointError`, as does a meta
        mismatch: those are corruption, not an interrupted write.
        """
        if not self.path.exists():
            return {}
        self._repair_torn_tail()
        raw = self.path.read_text()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: dict[int, dict] = {}
        for pos, line in enumerate(lines):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                raise CheckpointError(
                    f"{self.path}: corrupt checkpoint line {pos + 1}"
                ) from None
            if pos == 0:
                self._validate_meta(obj)
                continue
            if not isinstance(obj, dict) or "i" not in obj:
                raise CheckpointError(
                    f"{self.path}: line {pos + 1} is not a checkpoint record"
                )
            records[int(obj["i"])] = obj["record"]
        return records

    def _validate_meta(self, on_disk: dict) -> None:
        if not isinstance(on_disk, dict):
            raise CheckpointError(f"{self.path}: first line is not a meta record")
        for key, want in self.meta.items():
            got = on_disk.get(key)
            if got != want:
                raise CheckpointError(
                    f"{self.path}: checkpoint belongs to a different run "
                    f"({key}={got!r}, this run has {key}={want!r})"
                )

    # -- writing ---------------------------------------------------------
    def append(self, index: int, record: dict) -> None:
        """Durably log item ``index`` as completed."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = self.path.open("a")
            if fresh:
                self._write_line(self.meta)
        self._write_line({"i": int(index), "record": record})

    def _write_line(self, obj: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Checkpoint {self.path} meta={self.meta}>"
