"""Reproducible fault injection: the :class:`FaultPlan`.

A fault plan is a declarative schedule of failures to inject into a run —
link flaps, transient loss-rate spikes, clock skew on probe timestamps,
probe-process crashes, and tracefile truncation.  Plans are either built
explicitly (``plan.add_probe_crash(3)``) or *sampled* from a seed
(:meth:`FaultPlan.sample_sim`, :meth:`FaultPlan.sample_campaign`), in
which case every fault site/time is drawn from named
:class:`~repro.sim.rng.RngStreams`, so the exact same faults replay from
the same seed — failure becomes a first-class, testable input rather than
an environmental accident.

Two execution legs consume plans:

* **Simulator leg** — :meth:`FaultPlan.arm_links` schedules link
  down/up events on a :class:`~repro.sim.engine.Simulator`; a downed
  link drops every packet offered to it (accounted separately so the
  conservation invariants still hold, see
  :func:`repro.obs.invariants.check_link`).
* **Campaign leg** — :class:`~repro.internet.campaign.Campaign` calls
  :meth:`crash_check` / :meth:`apply_probe_faults` per experiment, so
  flaps become path outages on the campaign clock, spikes add transient
  loss, skew perturbs loss timestamps, and crashes raise
  :class:`ProbeCrashError` mid-run (resolved by the retry policy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

import numpy as np

from repro.sim.rng import RngStreams, stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

__all__ = [
    "InjectedFault",
    "ProbeCrashError",
    "LinkFlap",
    "LossSpike",
    "ClockSkew",
    "ProbeCrash",
    "TraceTruncation",
    "WorkerKill",
    "WorkerHang",
    "FaultPlan",
    "ENV_FAULTS",
    "fault_seed_from_env",
]

#: Environment knob: an integer seed arms a sampled fault plan for the run
#: (set by the CLI's ``--inject-faults``; empty/unset means no injection).
ENV_FAULTS = "REPRO_FAULTS"


def fault_seed_from_env() -> Optional[int]:
    """The ``REPRO_FAULTS`` seed, or ``None`` when injection is off."""
    raw = os.environ.get(ENV_FAULTS, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_FAULTS} must be an integer seed, got {raw!r}"
        ) from None


class InjectedFault(RuntimeError):
    """Base class for failures raised *on purpose* by a fault plan."""


class ProbeCrashError(InjectedFault):
    """An injected probe-process crash (a path experiment dying mid-run)."""


@dataclass(frozen=True)
class LinkFlap:
    """A link goes down at ``down_at`` and comes back at ``up_at``.

    ``link`` names the target link for the simulator leg (``None`` means
    every armed link).  On the campaign leg the window lives on the
    campaign clock and models a site/path outage: probes sent inside it
    are lost.
    """

    down_at: float
    up_at: float
    link: Optional[str] = None

    def __post_init__(self):
        if self.down_at < 0:
            raise ValueError(f"down_at must be non-negative, got {self.down_at}")
        if self.up_at <= self.down_at:
            raise ValueError(
                f"up_at ({self.up_at}) must be after down_at ({self.down_at})"
            )


@dataclass(frozen=True)
class LossSpike:
    """Transient extra loss: every packet in the window is additionally
    lost with probability ``extra_loss_prob`` (campaign clock)."""

    start: float
    duration: float
    extra_loss_prob: float

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise ValueError("spike window must be non-negative start, positive duration")
        if not (0.0 < self.extra_loss_prob <= 1.0):
            raise ValueError(
                f"extra_loss_prob must be in (0, 1], got {self.extra_loss_prob}"
            )


@dataclass(frozen=True)
class ClockSkew:
    """Probe-timestamp distortion: ``t -> t + offset + drift * t``.

    Models an unsynchronized or drifting measurement-host clock; applied
    to recorded loss timestamps, never to the underlying loss process.
    """

    offset: float = 0.0
    drift: float = 0.0

    def __post_init__(self):
        if self.drift <= -1.0:
            raise ValueError(f"drift must be > -1 (monotonic clock), got {self.drift}")


@dataclass(frozen=True)
class ProbeCrash:
    """Experiment ``index`` raises :class:`ProbeCrashError` on its first
    ``crashes`` attempts — a retry policy then resolves it."""

    index: int
    crashes: int = 1

    def __post_init__(self):
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")
        if self.crashes < 1:
            raise ValueError(f"crashes must be >= 1, got {self.crashes}")


@dataclass(frozen=True)
class WorkerKill:
    """Shard ``shard_id``'s worker SIGKILLs itself after ``after_paths``
    completed paths, on its first ``kills`` attempts — modelling an OOM
    kill or node loss mid-shard.  Only realized by process-isolated
    workers (:mod:`repro.internet.supervisor`); the supervising parent
    detects the dead process and reschedules the shard."""

    shard_id: int
    after_paths: int = 0
    kills: int = 1

    def __post_init__(self):
        if self.shard_id < 0 or self.after_paths < 0:
            raise ValueError("shard_id and after_paths must be non-negative")
        if self.kills < 1:
            raise ValueError(f"kills must be >= 1, got {self.kills}")


@dataclass(frozen=True)
class WorkerHang:
    """Shard ``shard_id``'s worker wedges (stops heartbeating) after
    ``after_paths`` completed paths, on its first ``hangs`` attempts.

    ``duration=None`` hangs forever — the supervisor's hang detector must
    SIGKILL it; a finite ``duration`` just stalls (for serial tests)."""

    shard_id: int
    after_paths: int = 0
    hangs: int = 1
    duration: Optional[float] = None

    def __post_init__(self):
        if self.shard_id < 0 or self.after_paths < 0:
            raise ValueError("shard_id and after_paths must be non-negative")
        if self.hangs < 1:
            raise ValueError(f"hangs must be >= 1, got {self.hangs}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class TraceTruncation:
    """Keep only the leading ``keep_fraction`` of a tracefile's bytes."""

    keep_fraction: float = 0.5

    def __post_init__(self):
        if not (0.0 <= self.keep_fraction < 1.0):
            raise ValueError(
                f"keep_fraction must be in [0, 1), got {self.keep_fraction}"
            )


class FaultPlan:
    """A reproducible schedule of injected faults.

    Plans are cheap value-ish objects: picklable (they travel to worker
    processes with campaign jobs; the metrics registry is dropped in
    transit) and driven entirely by their own named RNG streams.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.streams = RngStreams(self.seed)
        self.flaps: list[LinkFlap] = []
        self.spikes: list[LossSpike] = []
        self.skew: Optional[ClockSkew] = None
        self.crashes: dict[int, ProbeCrash] = {}
        self.worker_kills: dict[int, WorkerKill] = {}
        self.worker_hangs: dict[int, WorkerHang] = {}
        self.truncation: Optional[TraceTruncation] = None
        #: Realized injections by kind (counted where the plan executes).
        self.injected: dict[str, int] = {}
        self._registry: Optional["MetricsRegistry"] = None
        self._observers: list = []

    # -- construction ----------------------------------------------------
    def add_link_flap(
        self, down_at: float, up_at: float, link: Optional[str] = None
    ) -> "FaultPlan":
        """Schedule a link (or path) outage window."""
        self.flaps.append(LinkFlap(down_at=down_at, up_at=up_at, link=link))
        return self

    def add_loss_spike(
        self, start: float, duration: float, extra_loss_prob: float
    ) -> "FaultPlan":
        """Schedule a transient loss-rate spike."""
        self.spikes.append(
            LossSpike(start=start, duration=duration, extra_loss_prob=extra_loss_prob)
        )
        return self

    def set_clock_skew(self, offset: float = 0.0, drift: float = 0.0) -> "FaultPlan":
        """Skew recorded probe timestamps."""
        self.skew = ClockSkew(offset=offset, drift=drift)
        return self

    def add_probe_crash(self, index: int, crashes: int = 1) -> "FaultPlan":
        """Crash experiment ``index`` on its first ``crashes`` attempts."""
        self.crashes[index] = ProbeCrash(index=index, crashes=crashes)
        return self

    def add_worker_kill(
        self, shard_id: int, after_paths: int = 0, kills: int = 1
    ) -> "FaultPlan":
        """SIGKILL shard ``shard_id``'s worker on its first ``kills``
        attempts, after ``after_paths`` completed paths."""
        self.worker_kills[shard_id] = WorkerKill(
            shard_id=shard_id, after_paths=after_paths, kills=kills
        )
        return self

    def add_worker_hang(
        self,
        shard_id: int,
        after_paths: int = 0,
        hangs: int = 1,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Wedge shard ``shard_id``'s worker (stop heartbeating) on its
        first ``hangs`` attempts, after ``after_paths`` completed paths."""
        self.worker_hangs[shard_id] = WorkerHang(
            shard_id=shard_id, after_paths=after_paths, hangs=hangs,
            duration=duration,
        )
        return self

    def set_trace_truncation(self, keep_fraction: float = 0.5) -> "FaultPlan":
        """Arm tracefile truncation (see :meth:`corrupt_tracefile`)."""
        self.truncation = TraceTruncation(keep_fraction=keep_fraction)
        return self

    @classmethod
    def sample_sim(
        cls,
        seed: int,
        n_flaps: int = 2,
        window: tuple[float, float] = (0.2, 5.0),
        flap_duration: tuple[float, float] = (0.02, 0.1),
    ) -> "FaultPlan":
        """Sample a simulator-leg plan: ``n_flaps`` link flaps with start
        times uniform in ``window`` and durations uniform in
        ``flap_duration`` (seconds, deterministic per seed)."""
        plan = cls(seed)
        rng = plan.streams.stream("faults/flaps")
        for _ in range(n_flaps):
            t = float(rng.uniform(*window))
            d = float(rng.uniform(*flap_duration))
            plan.add_link_flap(t, t + d)
        return plan

    @classmethod
    def sample_campaign(
        cls,
        seed: int,
        n_experiments: int,
        span_seconds: float,
        n_flaps: int = 2,
        n_crashes: int = 2,
        n_spikes: int = 1,
        outage_frac: tuple[float, float] = (0.01, 0.05),
        spike_frac: tuple[float, float] = (0.02, 0.10),
        spike_extra_loss: tuple[float, float] = (0.02, 0.10),
    ) -> "FaultPlan":
        """Sample a campaign-leg plan on the campaign clock: path outages
        (flaps), probe-process crashes on random experiment indices, and
        transient loss spikes — all deterministic per seed.

        Outage and spike durations are drawn as *fractions* of
        ``span_seconds`` (``outage_frac`` / ``spike_frac``), so the same
        fault density holds whether the campaign spans minutes or days —
        degradation, never blackout.
        """
        if n_experiments <= 0:
            raise ValueError(f"need a positive experiment count, got {n_experiments}")
        plan = cls(seed)
        rng = plan.streams.stream("faults/campaign")
        for _ in range(n_flaps):
            t = float(rng.uniform(0.0, span_seconds))
            d = span_seconds * float(rng.uniform(*outage_frac))
            plan.add_link_flap(t, t + d)
        for _ in range(n_spikes):
            t = float(rng.uniform(0.0, span_seconds))
            d = span_seconds * float(rng.uniform(*spike_frac))
            p = float(rng.uniform(*spike_extra_loss))
            plan.add_loss_spike(t, d, p)
        picks = rng.choice(n_experiments, size=min(n_crashes, n_experiments), replace=False)
        for idx in picks:
            plan.add_probe_crash(int(idx))
        return plan

    @classmethod
    def sample_shard_faults(
        cls,
        seed: int,
        n_shards: int,
        shard_paths: int,
        n_kills: int = 2,
        n_hangs: int = 1,
    ) -> "FaultPlan":
        """Sample a supervisor-leg plan: ``n_kills`` worker SIGKILLs and
        ``n_hangs`` worker hangs on distinct random shards, each firing
        after a random number of completed paths (first attempt only, so
        a retrying supervisor always converges) — deterministic per seed.

        ``shard_paths`` is the (smallest) shard size; fault trigger points
        are drawn inside it so every armed fault actually fires.
        """
        if n_shards < 1 or shard_paths < 1:
            raise ValueError("need positive shard count and shard size")
        plan = cls(seed)
        rng = plan.streams.stream("faults/shards")
        n_faulty = min(n_kills + n_hangs, n_shards)
        picks = [int(s) for s in rng.choice(n_shards, size=n_faulty, replace=False)]
        for i, sid in enumerate(picks):
            at = int(rng.integers(0, shard_paths))
            if i < min(n_kills, n_faulty):
                plan.add_worker_kill(sid, after_paths=at)
            else:
                plan.add_worker_hang(sid, after_paths=at)
        return plan

    # -- accounting ------------------------------------------------------
    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Count realized injections as ``faults.injected.<kind>``."""
        self._registry = registry

    def add_observer(self, fn) -> None:
        """Register ``fn(kind, amount)`` to be called on every realized
        injection (the span tracer hooks in here so injections show up as
        trace events).  Observers, like the registry, do not pickle to
        workers — campaign injections are relayed via the result records."""
        self._observers.append(fn)

    def record(self, kind: str, amount: int = 1) -> None:
        """Note ``amount`` realized injections of ``kind``."""
        self.injected[kind] = self.injected.get(kind, 0) + amount
        if self._registry is not None:
            self._registry.counter(f"faults.injected.{kind}").inc(amount)
        for fn in self._observers:
            fn(kind, amount)

    def describe(self) -> dict:
        """JSON-able static spec of the plan (what *would* be injected)."""
        return {
            "seed": self.seed,
            "link_flaps": [
                {"down_at": f.down_at, "up_at": f.up_at, "link": f.link}
                for f in self.flaps
            ],
            "loss_spikes": [
                {"start": s.start, "duration": s.duration,
                 "extra_loss_prob": s.extra_loss_prob}
                for s in self.spikes
            ],
            "clock_skew": (
                None if self.skew is None
                else {"offset": self.skew.offset, "drift": self.skew.drift}
            ),
            "probe_crashes": [
                {"index": c.index, "crashes": c.crashes}
                for c in sorted(self.crashes.values(), key=lambda c: c.index)
            ],
            "worker_kills": [
                {"shard_id": k.shard_id, "after_paths": k.after_paths,
                 "kills": k.kills}
                for k in sorted(self.worker_kills.values(), key=lambda k: k.shard_id)
            ],
            "worker_hangs": [
                {"shard_id": h.shard_id, "after_paths": h.after_paths,
                 "hangs": h.hangs, "duration": h.duration}
                for h in sorted(self.worker_hangs.values(), key=lambda h: h.shard_id)
            ],
            "trace_truncation": (
                None if self.truncation is None
                else {"keep_fraction": self.truncation.keep_fraction}
            ),
        }

    def __getstate__(self) -> dict:
        # Registries hold callback gauges into live components; workers
        # count via the returned records instead.
        state = self.__dict__.copy()
        state["_registry"] = None
        state["_observers"] = []
        return state

    # -- simulator leg ---------------------------------------------------
    def arm_links(self, sim: "Simulator", links: Iterable["Link"]) -> int:
        """Schedule this plan's flaps on ``links``; returns the number of
        flap windows armed.  A flap naming a link applies to that link
        only; unnamed flaps apply to every link given."""
        armed = 0
        links = list(links)
        for flap in self.flaps:
            targets = [
                l for l in links if flap.link is None or l.name == flap.link
            ]
            for link in targets:
                sim.schedule_at(flap.down_at, self._flap_down, link)
                sim.schedule_at(flap.up_at, self._flap_up, link)
                armed += 1
        return armed

    def _flap_down(self, link: "Link") -> None:
        link.take_down()
        self.record("link_down")

    def _flap_up(self, link: "Link") -> None:
        link.bring_up()
        self.record("link_up")

    # -- campaign leg ----------------------------------------------------
    def crash_check(self, index: int, attempt: int) -> None:
        """Raise :class:`ProbeCrashError` if experiment ``index`` is armed
        to crash on this ``attempt`` (1-based)."""
        crash = self.crashes.get(index)
        if crash is not None and attempt <= crash.crashes:
            self.record("probe_crash")
            raise ProbeCrashError(
                f"injected probe crash: experiment {index}, attempt {attempt} "
                f"of {crash.crashes} armed"
            )

    # -- supervisor leg --------------------------------------------------
    def shard_fault_check(self, shard_id: int, progress: int, attempt: int) -> None:
        """Realize an armed worker-level fault for ``shard_id`` at
        ``progress`` completed paths on ``attempt`` (1-based).

        A :class:`WorkerKill` SIGKILLs the calling process — no cleanup,
        no exception, exactly what a kernel OOM kill looks like to the
        supervisor.  A :class:`WorkerHang` stops making progress (sleeps
        forever, or ``duration`` seconds when finite) so the supervisor's
        heartbeat stall detector has to reap it.  Only process-isolated
        shard workers may call this; in-process execution must not
        (a self-SIGKILL would take the whole campaign down).
        """
        import signal
        import time as _time

        kill = self.worker_kills.get(shard_id)
        if kill is not None and progress == kill.after_paths and attempt <= kill.kills:
            self.record("worker_sigkill")
            os.kill(os.getpid(), signal.SIGKILL)
        hang = self.worker_hangs.get(shard_id)
        if hang is not None and progress == hang.after_paths and attempt <= hang.hangs:
            self.record("worker_hang")
            if hang.duration is not None:
                _time.sleep(hang.duration)
            else:
                while True:  # wedge until the supervisor reaps us
                    _time.sleep(3600.0)

    def outage_mask(self, send_times: np.ndarray, started_at: float) -> np.ndarray:
        """Which probes (relative send times) fall in an outage window."""
        t = np.asarray(send_times, dtype=np.float64) + started_at
        mask = np.zeros(len(t), dtype=bool)
        for flap in self.flaps:
            if flap.link is None:
                mask |= (t >= flap.down_at) & (t < flap.up_at)
        return mask

    def apply_probe_faults(
        self,
        send_times: np.ndarray,
        lost: np.ndarray,
        started_at: float,
        index: int,
    ) -> np.ndarray:
        """Fold outages and loss spikes into a probe run's loss mask.

        Deterministic per (plan seed, experiment index): spike randomness
        comes from a generator *re-derived on every call* from the plan
        seed and the experiment index, so a retried or resumed experiment
        sees the exact same injected weather as its first attempt.
        """
        lost = np.asarray(lost, dtype=bool).copy()
        if self.flaps:
            outage = self.outage_mask(send_times, started_at)
            extra = outage & ~lost
            if extra.any():
                self.record("outage_loss", int(extra.sum()))
            lost |= outage
        if self.spikes:
            t = np.asarray(send_times, dtype=np.float64) + started_at
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    (self.seed, stable_hash(f"faults/spike/{index}"))
                )
            )
            for spike in self.spikes:
                window = (t >= spike.start) & (t < spike.start + spike.duration)
                if not window.any():
                    continue
                u = rng.random(int(window.sum()))
                hit = np.zeros(len(t), dtype=bool)
                hit[window] = u < spike.extra_loss_prob
                extra = hit & ~lost
                if extra.any():
                    self.record("spike_loss", int(extra.sum()))
                lost |= hit
        return lost

    def skew_times(self, times: np.ndarray) -> np.ndarray:
        """Apply the armed clock skew to recorded timestamps."""
        if self.skew is None:
            return times
        t = np.asarray(times, dtype=np.float64)
        if len(t):
            self.record("skewed_timestamps", int(len(t)))
        return t * (1.0 + self.skew.drift) + self.skew.offset

    # -- tracefile leg ---------------------------------------------------
    def corrupt_tracefile(self, path: Union[str, Path]) -> Path:
        """Truncate ``path`` to the armed ``keep_fraction`` of its bytes
        (simulating a crash mid-write of a non-atomic writer)."""
        if self.truncation is None:
            raise ValueError("no trace truncation armed on this plan")
        p = Path(path)
        size = p.stat().st_size
        keep = int(size * self.truncation.keep_fraction)
        with p.open("rb+") as fh:
            fh.truncate(keep)
        self.record("trace_truncation")
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} flaps={len(self.flaps)} "
            f"spikes={len(self.spikes)} crashes={len(self.crashes)} "
            f"skew={self.skew is not None}>"
        )
