"""Fault-injection smoke test (the ``make faults`` target).

Runs the resilience machinery end to end and asserts degraded-but-valid
completion::

    PYTHONPATH=src python -m repro.faults.smoke

Legs exercised:

1. **Campaign + retry** — an armed :class:`~repro.faults.FaultPlan`
   (path-outage link flaps, a loss spike, two probe crashes) completes
   under ``on_error="retry"``, reports the injections in the result
   metadata, and produces data for every experiment.
2. **Kill + resume** — a checkpointed campaign is "killed" (its
   checkpoint truncated to a prefix, final record ripped mid-line) and
   resumed; the merged result fingerprints identically to an
   uninterrupted run with the same seed.
3. **Skip degradation** — without retries, the injected crashes land in
   ``result.failures`` and the figure text carries an explicit
   ``DEGRADED`` note while the surviving cells still analyze.
4. **Simulator flaps + invariants** — a dumbbell run with link flaps
   armed keeps every packet-conservation identity exact (injected drops
   are accounted, not leaked).
5. **Tracefile corruption** — the atomic writer leaves no temp litter
   and a truncated archive raises a structured ``TraceCorruptError``.

Exits nonzero (an ``AssertionError``) on any failure.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.faults.plan import FaultPlan
from repro.internet.campaign import Campaign
from repro.internet.probe import ProbeConfig

#: Smoke-run sizing: small enough for CI, big enough to see every fault.
SEED = 2006
FAULT_SEED = 11
N_EXPERIMENTS = 8
PROBE = ProbeConfig(duration=30.0, interval=0.005)


def _plan() -> FaultPlan:
    """A fresh armed plan (fresh per run: plans accumulate realized
    injection counts, and determinism must not depend on reuse)."""
    return FaultPlan.sample_campaign(
        FAULT_SEED,
        n_experiments=N_EXPERIMENTS,
        span_seconds=Campaign.CAMPAIGN_SPAN_SECONDS,
        n_flaps=2,
        n_crashes=2,
        n_spikes=1,
    )


def _campaign() -> Campaign:
    return Campaign(seed=SEED, probe_config=PROBE, fault_plan=_plan())


def check_campaign_retry() -> str:
    """Leg 1: armed plan + retry -> complete, injections in metadata."""
    res = _campaign().run(N_EXPERIMENTS, on_error="retry")
    assert len(res.experiments) == N_EXPERIMENTS, (
        f"expected {N_EXPERIMENTS} experiments, got {len(res.experiments)}"
    )
    assert not res.failures, f"retry should resolve crashes: {res.failures}"
    assert len(res.meta["retried"]) == 2, (
        f"expected 2 retried (crashed) experiments, got {res.meta['retried']}"
    )
    assert res.meta["fault_plan"]["probe_crashes"], "plan lost its crashes"
    return res.fingerprint()


def check_kill_and_resume(reference: str) -> None:
    """Leg 2: truncate the checkpoint mid-run, resume, compare."""
    with tempfile.TemporaryDirectory() as td:
        ck = Path(td) / "smoke.jsonl"
        _campaign().run(N_EXPERIMENTS, on_error="retry", checkpoint=ck)
        # "Kill" the run after 4 completions, ripping the next append
        # mid-line — exactly what a crash during fsync leaves behind.
        lines = ck.read_text().splitlines(keepends=True)
        ck.write_text("".join(lines[:5]) + lines[5][: len(lines[5]) // 2])
        resumed = _campaign().run(N_EXPERIMENTS, on_error="retry", checkpoint=ck)
        assert resumed.meta["resumed"] == 4, (
            f"expected 4 resumed cells, got {resumed.meta['resumed']}"
        )
        assert resumed.fingerprint() == reference, (
            "resumed campaign is not bit-identical to the uninterrupted run"
        )


def check_skip_degrades() -> None:
    """Leg 3: no retries -> crashes become recorded failures."""
    res = _campaign().run(N_EXPERIMENTS, on_error="skip")
    assert res.degraded, "skip mode should report a degraded result"
    assert len(res.failures) == 2, f"expected 2 failures, got {res.failures}"
    assert all("ProbeCrashError" in f.error for f in res.failures)
    assert res.meta["failed"] == sorted(f.index for f in res.failures)
    assert len(res.experiments) == N_EXPERIMENTS - 2
    assert res.all_intervals_rtt().size > 0, "surviving cells must analyze"


def check_sim_flaps_conserve() -> tuple[int, Path]:
    """Leg 4: link flaps under the invariant checker; returns the flap
    count and an archived drop trace for leg 5."""
    from repro.obs.invariants import InvariantChecker
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams
    from repro.sim.tracefile import save_drop_trace
    from repro.sim.topology import DumbbellConfig, build_dumbbell
    from repro.tcp.newreno import NewRenoSender
    from repro.tcp.sink import TcpSink

    sim = Simulator()
    db = build_dumbbell(sim, DumbbellConfig(bottleneck_rate_bps=10e6, buffer_pkts=16))
    streams = RngStreams(SEED)
    flows = []
    for i in range(4):
        pair = db.add_pair(rtt=0.04 + 0.02 * i, name=f"tcp{i}")
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id, total_packets=None)
        sink = TcpSink(sim, pair.right, fid, pair.left.node_id)
        flows.append((snd, sink))
        snd.start(float(streams.stream("starts").uniform(0.0, 0.1)))

    plan = FaultPlan.sample_sim(FAULT_SEED, n_flaps=3, window=(0.5, 3.0))
    plan.arm_links(sim, (db.bottleneck_fwd, db.bottleneck_rev))

    registry = MetricsRegistry("faults-smoke")
    checker = InvariantChecker(registry)
    checker.add_link(db.bottleneck_fwd)
    checker.add_link(db.bottleneck_rev)
    for snd, sink in flows:
        checker.add_flow(snd, sink=sink, drop_traces=(db.drop_trace,),
                         traces_complete=True)
    checker.attach(sim, interval=0.5)
    sim.run(until=4.0)
    checker.final_check(sim)  # raises InvariantViolation on any leak

    flaps = db.bottleneck_fwd.flap_count + db.bottleneck_rev.flap_count
    assert flaps >= 3, f"expected >=3 realized flaps, got {flaps}"
    assert plan.injected.get("link_down", 0) >= 3, plan.injected
    assert db.drop_trace.drop_times().size > 0, "flaps produced no drops"

    out = Path(tempfile.mkdtemp()) / "smoke_trace.npz"
    save_drop_trace(db.drop_trace, out, rtt=0.05)
    litter = list(out.parent.glob(".*.tmp-*"))
    assert not litter, f"atomic save left temp litter: {litter}"
    return flaps, out


def check_tracefile_corruption(trace_path: Path) -> None:
    """Leg 5: a truncated archive raises TraceCorruptError on load."""
    from repro.sim.tracefile import TraceCorruptError, load_drop_trace

    load_drop_trace(trace_path)  # pristine archive loads fine
    plan = FaultPlan(FAULT_SEED).set_trace_truncation(keep_fraction=0.5)
    plan.corrupt_tracefile(trace_path)
    try:
        load_drop_trace(trace_path)
    except TraceCorruptError as exc:
        assert exc.path == trace_path
    else:
        raise AssertionError("truncated tracefile loaded without error")


def main() -> int:
    """Run every leg; print a one-line verdict per leg."""
    fp = check_campaign_retry()
    print(f"[faults] campaign+retry ok (fingerprint {fp[:12]}...)")
    check_kill_and_resume(fp)
    print("[faults] kill+resume bit-identical ok")
    check_skip_degrades()
    print("[faults] skip-mode degradation ok")
    flaps, trace_path = check_sim_flaps_conserve()
    print(f"[faults] sim flaps ({flaps}) conserve ok")
    check_tracefile_corruption(trace_path)
    print("[faults] tracefile corruption detected ok")
    print("[faults] all legs passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by `make faults`
    sys.exit(main())
