"""Figure 3: PDF of inter-loss time at the Dummynet-emulated bottleneck.

Same dumbbell as Figure 2 but through the emulation substrate: only four
RTT classes (2, 10, 50, 200 ms), random per-packet processing noise at the
pipe, and drop timestamps quantized to the FreeBSD 1 ms clock.

Paper observation to reproduce: **about 80% of packet losses cluster
within periods smaller than 0.01 RTT** — lower than NS-2's 95% because
the non-ideal pipe (and the coarse clock) smears some clusters apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.burstiness import fraction_within
from repro.core.intervals import intervals_from_trace
from repro.core.pdf import IntervalPdf, interval_pdf, poisson_reference_pdf
from repro.core.poisson import PoissonComparison, compare_to_poisson
from repro.core.report import pdf_figure_text
from repro.emulation.dummynet import DummynetConfig, build_dummynet_dumbbell
from repro.experiments.common import Scale, add_noise_fleet, current_scale
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    """Reproduced Figure 3 plus headline statistics."""

    pdf: IntervalPdf
    poisson: np.ndarray
    frac_001: float
    frac_1: float
    comparison: PoissonComparison
    n_drops: int
    mean_rtt: float

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        return pdf_figure_text(
            self.pdf,
            self.poisson,
            "Figure 3 — PDF of inter-loss time (Dummynet-style emulation)",
            frac_001=self.frac_001,
            frac_1=self.frac_1,
        )


def run_fig3(
    seed: int = 1,
    scale: Optional[Scale] = None,
    buffer_bdp_fraction: float = 0.5,
) -> Fig3Result:
    """Run the Figure 3 scenario: emulated pipe, four RTT classes."""
    sc = current_scale(scale)
    streams = RngStreams(seed)
    sim = Simulator()

    dn_cfg = DummynetConfig(base=DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps))
    classes = dn_cfg.rtt_classes
    mean_rtt = float(np.mean(classes))
    dn_cfg.base.buffer_pkts = max(
        4, int(dn_cfg.base.bdp_packets(mean_rtt) * buffer_bdp_fraction)
    )
    db = build_dummynet_dumbbell(sim, dn_cfg, rng=streams.stream("pipe-noise"))

    start_rng = streams.stream("starts")
    for i in range(sc.n_tcp_flows):
        rtt = classes[i % len(classes)]
        pair = db.add_pair(rtt=rtt, name=f"tcp{i}")
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id, total_packets=None)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.5)))

    add_noise_fleet(sim, db, streams, sc.n_noise_flows, sc.noise_load)
    sim.run(until=sc.measure_duration)

    drop_times = db.drop_trace.drop_times()
    intervals = intervals_from_trace(drop_times, mean_rtt)
    pdf = interval_pdf(intervals)
    poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
    return Fig3Result(
        pdf=pdf,
        poisson=poisson,
        frac_001=fraction_within(intervals, 0.01),
        frac_1=fraction_within(intervals, 1.0),
        comparison=compare_to_poisson(intervals),
        n_drops=len(drop_times),
        mean_rtt=mean_rtt,
    )
