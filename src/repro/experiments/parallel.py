"""Process-parallel, failure-resilient experiment execution.

The figure grids (Figure 8's 20 cells x 5 repetitions, the 300-experiment
campaign) are embarrassingly parallel: every cell builds its own simulator
from its own seed, so cells can run in separate processes with no shared
state and bit-identical results regardless of scheduling.

:func:`parallel_map` is the execution core.  Beyond order-preserving
process fan-out it provides what a lossy measurement harness needs
(paper §3.1: PlanetLab sites go down mid-campaign, probe runs die):

* an ``on_error`` policy — ``"raise"`` (default, legacy behavior),
  ``"skip"`` (failed items become failed :class:`~repro.faults.Result`
  records), or ``"retry"`` (bounded retries with exponential backoff and
  deterministic jitter, then skip);
* a per-item ``timeout`` (workers>1: a stuck worker's item is abandoned
  and treated as failed/retried; serial runs cannot preempt and ignore it);
* per-item :class:`~repro.faults.Result` values carrying
  ``(ok, value, error, attempts)`` so callers degrade gracefully instead
  of discarding every completed cell;
* even in ``"raise"`` mode, the raised worker exception carries a
  ``completed_indices`` attribute listing the items that *did* finish, so
  callers can report progress instead of losing it silently.

Worker counts resolve explicitly (``workers=``), then from the
``REPRO_WORKERS`` environment variable (the CLI's ``--workers`` flag),
then serial.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence, TypeVar, Union

from repro.faults.resilient import (
    ON_ERROR_POLICIES,
    ItemTimeoutError,
    Result,
    RetryPolicy,
    run_with_retry,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "ENV_WORKERS", "Result", "RetryPolicy"]

#: Environment knob pinning the worker count (the CLI's ``--workers``).
ENV_WORKERS = "REPRO_WORKERS"


def _env_workers() -> Optional[int]:
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return None
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(f"{ENV_WORKERS} must be an integer, got {raw!r}") from None
    if n < 1:
        raise ValueError(f"{ENV_WORKERS} must be >= 1, got {n}")
    return n


def default_workers() -> int:
    """The worker count to use when fanning out: ``REPRO_WORKERS`` when
    set (CI and users pin it there), else physical parallelism minus one,
    always >= 1."""
    env = _env_workers()
    if env is not None:
        return env
    return max(1, (os.cpu_count() or 2) - 1)


def _invoke(fn, item, attempt, pass_attempt):
    """Picklable worker shim: optionally forwards the attempt number."""
    return fn(item, attempt) if pass_attempt else fn(item)


def parallel_map(
    fn: Callable[..., R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
    *,
    on_error: str = "raise",
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    pass_attempt: bool = False,
    on_result: Optional[Callable[[Result], None]] = None,
    tracer=None,
    span_name: str = "item",
) -> Union[list[R], list[Result]]:
    """Order-preserving, failure-policied map over ``items``.

    ``fn`` and every item must be picklable (module-level functions and
    plain data).  ``workers=None`` falls back to ``$REPRO_WORKERS`` and
    then to serial execution — the results are identical either way
    because each work item carries its own seed.

    Returns raw values when ``on_error="raise"`` (legacy behavior: the
    first worker exception is re-raised, annotated with the
    ``completed_indices`` of items that already finished).  With
    ``on_error="skip"`` or ``"retry"`` every item resolves to a
    :class:`Result` and nothing raises.  ``on_result`` (parent-side) is
    called with each item's final :class:`Result` as it completes —
    checkpoint writers hook in here.  With ``pass_attempt`` the callable
    receives the 1-based attempt number as a second argument.

    ``tracer`` (a :class:`repro.obs.SpanTracer`, parent-side) records one
    retroactive ``span_name`` span per item as it completes, carrying the
    item's index, outcome, and attempt count — workers cannot reach the
    tracer, so item spans are logged here at the fan-in point.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    policy = retry if retry is not None else (
        RetryPolicy() if on_error == "retry" else RetryPolicy(retries=0)
    )
    if on_error != "retry":
        policy = RetryPolicy(
            retries=0, base=policy.base, factor=policy.factor,
            max_delay=policy.max_delay, jitter=policy.jitter,
        )
    if tracer is not None:
        user_on_result = on_result

        def on_result(res: Result, _user=user_on_result) -> None:
            tracer.record_span(
                span_name, index=res.index, ok=res.ok, attempts=res.attempts
            )
            if _user is not None:
                _user(res)

    items = list(items)
    if workers is None:
        workers = _env_workers()
    if workers is None or workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, on_error, policy, pass_attempt, on_result)
    return _pool_map(
        fn, items, min(workers, len(items)), on_error, policy, timeout,
        pass_attempt, on_result,
    )


def _finish(
    res: Result,
    results: list,
    completed: list[int],
    on_error: str,
    on_result: Optional[Callable[[Result], None]],
) -> None:
    """Record one item's final result; raises in ``"raise"`` mode."""
    if on_result is not None:
        on_result(res)
    if res.ok:
        completed.append(res.index)
        results[res.index] = res.value if on_error == "raise" else res
        return
    if on_error == "raise":
        err = res.error
        assert err is not None
        err.completed_indices = sorted(completed)
        raise err
    results[res.index] = res


def _serial_map(fn, items, on_error, policy, pass_attempt, on_result) -> list:
    results: list = [None] * len(items)
    completed: list[int] = []
    for i, item in enumerate(items):
        res = run_with_retry(
            fn, item, index=i, policy=policy, pass_attempt=pass_attempt,
        )
        _finish(res, results, completed, on_error, on_result)
    return results


def _pool_map(
    fn, items, n_workers, on_error, policy, timeout, pass_attempt, on_result
) -> list:
    results: list = [None] * len(items)
    completed: list[int] = []
    attempts = [0] * len(items)
    #: (ready_at_monotonic, index) retries waiting out their backoff.
    backlog: list[tuple[float, int]] = []
    running: dict[Future, int] = {}
    deadlines: dict[Future, float] = {}

    with ProcessPoolExecutor(max_workers=n_workers) as pool:

        def submit(index: int) -> None:
            attempts[index] += 1
            f = pool.submit(_invoke, fn, items[index], attempts[index], pass_attempt)
            running[f] = index
            if timeout is not None:
                deadlines[f] = time.monotonic() + timeout

        def settle(index: int, error: BaseException) -> None:
            """A failed attempt: schedule a retry or finalize the failure."""
            if attempts[index] <= policy.retries:
                ready = time.monotonic() + policy.delay(
                    attempts[index], key=str(index)
                )
                backlog.append((ready, index))
                return
            res = Result(
                index=index, ok=False, error=error, attempts=attempts[index]
            )
            try:
                _finish(res, results, completed, on_error, on_result)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise

        for i in range(len(items)):
            submit(i)
        while running or backlog:
            now = time.monotonic()
            due = sorted(b for b in backlog if b[0] <= now)
            if due:
                backlog[:] = [b for b in backlog if b[0] > now]
                for _, index in due:
                    submit(index)
            if not running:
                # Only backed-off retries remain; sleep until the first.
                time.sleep(max(0.0, min(b[0] for b in backlog) - now))
                continue
            poll = 0.05 if (timeout is not None or backlog) else None
            done, _ = wait(list(running), timeout=poll, return_when=FIRST_COMPLETED)
            for f in done:
                index = running.pop(f)
                deadlines.pop(f, None)
                exc = f.exception()
                if exc is None:
                    _finish(
                        Result(index=index, ok=True, value=f.result(),
                               attempts=attempts[index]),
                        results, completed, on_error, on_result,
                    )
                else:
                    settle(index, exc)
            if timeout is not None:
                now = time.monotonic()
                for f, dl in list(deadlines.items()):
                    if dl <= now and f in running:
                        # Abandon the attempt: stop tracking the future (a
                        # running worker cannot be preempted; its eventual
                        # result is dropped) and fail/retry the item.
                        index = running.pop(f)
                        deadlines.pop(f, None)
                        f.cancel()
                        settle(index, ItemTimeoutError(
                            f"item {index} exceeded {timeout}s "
                            f"(attempt {attempts[index]})"
                        ))
    return results
