"""Process-parallel experiment execution.

The figure grids (Figure 8's 20 cells x 5 repetitions, the 300-experiment
campaign) are embarrassingly parallel: every cell builds its own simulator
from its own seed, so cells can run in separate processes with no shared
state and bit-identical results regardless of scheduling.

:func:`parallel_map` is a thin ``ProcessPoolExecutor`` wrapper that
preserves input order, falls back to serial execution for ``workers<=1``
(or when the platform lacks working process pools), and re-raises worker
exceptions in the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, >= 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving map over ``items``, optionally process-parallel.

    ``fn`` and every item must be picklable (module-level functions and
    plain data).  ``workers=None`` or ``workers<=1`` runs serially — the
    results are identical either way because each work item carries its
    own seed.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    n = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
