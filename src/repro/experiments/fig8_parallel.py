"""Figure 8: latency of parallel flows transferring a fixed payload.

For each (flow count, RTT) cell, a 64 MB payload is split into equal
chunks over N parallel NewReno flows on the shared dumbbell; completion is
the slowest flow's finish time, normalized by the theoretic lower bound
(5.39 s at 100 Mbps).  The paper's observations: latency sits well above
the bound, grows with RTT, and is wildly variable at RTT = 200 ms with few
flows (the 4-flow cell's standard deviation is off the chart) — because
only the flows that happen to lose slow-start packets fall behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from repro.apps.latency import LatencyStats, summarize_latencies
from repro.apps.parallel_transfer import ParallelTransfer, ParallelTransferConfig
from repro.core.report import format_table
from repro.experiments.common import Scale, add_noise_fleet, current_scale
from repro.faults import Result, on_error_from_env
from repro.obs.runtime import open_flight_log
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.newreno import NewRenoSender

__all__ = ["Fig8Result", "run_fig8", "run_fig8_cell"]


@dataclass
class Fig8Result:
    """Reproduced Figure 8 grid: stats per (flow count, RTT) cell.

    ``failures`` lists repetitions that died permanently under a
    skip/retry policy as ``(flows, rtt, error)``; their cells aggregate
    the surviving repetitions and the rendering carries an explicit
    degradation note.
    """

    cells: dict[tuple[int, float], LatencyStats]
    total_bytes: int
    capacity_bps: float
    bound_seconds: float
    failures: list = None  # list[(n_flows, rtt, error_text)]

    def __post_init__(self):
        if self.failures is None:
            self.failures = []

    def series_for_rtt(self, rtt: float) -> tuple[list[int], list[float]]:
        """X (flow counts) and Y (mean normalized latency) for one curve."""
        pts = sorted(
            (n, st.mean) for (n, r), st in self.cells.items() if r == rtt
        )
        return [p[0] for p in pts], [p[1] for p in pts]

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = []
        for (n, rtt), st in sorted(self.cells.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append(
                [n, f"{rtt * 1e3:.0f}ms", round(st.mean, 2), round(st.std, 2),
                 round(st.min, 2), round(st.max, 2),
                 "yes" if st.unpredictable else "no"]
            )
        text = format_table(
            ["flows", "RTT", "mean", "std", "min", "max", "unpredictable"],
            rows,
            title=(
                "Figure 8 — Normalized parallel-transfer latency "
                f"({self.total_bytes / 2**20:.0f} MB over "
                f"{self.capacity_bps / 1e6:.0f} Mbps; bound {self.bound_seconds:.2f} s)"
            ),
        )
        if self.failures:
            lost = ", ".join(
                f"({n} flows, {rtt * 1e3:.0f}ms): {err}"
                for n, rtt, err in self.failures
            )
            text += (
                f"\nDEGRADED: {len(self.failures)} repetition(s) failed and "
                f"were excluded: {lost}"
            )
        return text


def run_fig8_cell(
    n_flows: int,
    rtt: float,
    seed: int,
    scale: Optional[Scale] = None,
    sender_cls: Type = NewRenoSender,
    with_noise: bool = True,
    buffer_bdp_fraction: float = 0.5,
) -> float:
    """One repetition of one (flows, RTT) cell: normalized latency."""
    sc = current_scale(scale)
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig8_capacity_bps)
    cfg.buffer_pkts = max(4, int(cfg.bdp_packets(max(rtt, 0.010)) * buffer_bdp_fraction))
    db = build_dumbbell(sim, cfg)
    if with_noise:
        add_noise_fleet(sim, db, streams, max(2, sc.n_noise_flows // 4), sc.noise_load)

    pt_cfg = ParallelTransferConfig(
        total_bytes=sc.fig8_total_bytes, n_flows=n_flows, sender_cls=sender_cls
    )
    pt = ParallelTransfer(sim, db, rtt=rtt, config=pt_cfg)
    # Small start jitter models process-launch skew in a real cluster.
    jitter = streams.stream("start-jitter")
    for snd in pt.senders:
        snd.start(float(jitter.uniform(0.0, 0.01)))
    from repro.apps.latency import lower_bound

    bound = lower_bound(sc.fig8_total_bytes, sc.fig8_capacity_bps)
    # Run in slices so the background noise stops as soon as the slowest
    # flow finishes, instead of simulating the full horizon.
    horizon = 60.0 * bound
    step = max(0.5, bound / 4.0)
    t = 0.0
    while t < horizon and len(pt._completions) < n_flows:
        t += step
        sim.run(until=t)
    if len(pt._completions) < n_flows:
        return float("inf")
    return max(pt._completions) / bound


def _run_cell_args(args: tuple) -> tuple[tuple[int, float], float]:
    """Picklable worker: one (flows, rtt, seed, scale) repetition."""
    n, rtt, seed, sc = args
    return (n, rtt), run_fig8_cell(n, rtt, seed=seed, scale=sc)


def run_fig8(
    seed: int = 1,
    scale: Optional[Scale] = None,
    workers: Optional[int] = None,
    on_error: Optional[str] = None,
) -> Fig8Result:
    """Run the full Figure 8 grid.

    ``workers`` > 1 fans the grid's repetitions out over a process pool
    (:mod:`repro.experiments.parallel`); every repetition derives its own
    seed, so results are identical to the serial run.  ``on_error``
    (default: ``REPRO_ON_ERROR``, then ``"raise"``) selects the resilience
    policy: under ``"skip"``/``"retry"``, a permanently failed repetition
    lands in ``result.failures`` and its cell aggregates the survivors.
    """
    sc = current_scale(scale)
    from repro.apps.latency import lower_bound
    from repro.experiments.parallel import parallel_map

    if on_error is None:
        on_error = on_error_from_env()
    jobs = [
        (n, rtt, seed * 10_000 + rep * 100 + n, sc)
        for rtt in sc.fig8_rtts
        for n in sc.fig8_flow_counts
        for rep in range(sc.fig8_repetitions)
    ]
    # The grid has no single simulator clock, so the flight record is a
    # parent-side FlightLog: manifest + one retroactive span per cell
    # repetition, logged at the fan-in point of parallel_map.
    flight = open_flight_log(
        "fig8",
        manifest={
            "seed": seed,
            "scale": sc.name,
            "total_bytes": sc.fig8_total_bytes,
            "flow_counts": list(sc.fig8_flow_counts),
            "rtts": list(sc.fig8_rtts),
            "repetitions": sc.fig8_repetitions,
            "on_error": on_error,
        },
    )
    with flight.span("grid", jobs=len(jobs)):
        results = parallel_map(
            _run_cell_args, jobs, workers=workers, on_error=on_error,
            tracer=flight.tracer, span_name="fig8.cell",
        )

    by_cell: dict[tuple[int, float], list[float]] = {}
    failures: list[tuple[int, float, str]] = []
    for res in results:
        if isinstance(res, Result):
            if not res.ok:
                n, rtt, _, _ = jobs[res.index]
                failures.append((n, rtt, res.error_text))
                continue
            key, sample = res.value
        else:  # raise mode returns raw values (legacy contract)
            key, sample = res
        by_cell.setdefault(key, []).append(sample)

    cells: dict[tuple[int, float], LatencyStats] = {}
    for (n, rtt), samples in by_cell.items():
        finite = np.array([s for s in samples if np.isfinite(s)])
        if len(finite) == 0:
            finite = np.array([np.nan])
        cells[(n, rtt)] = summarize_latencies(n, rtt, finite)
    flight.telemetry = {
        "flows": [],
        "raster": None,
        "series": {},
        "cells": {
            f"{n}x{rtt}": {
                "mean": round(st.mean, 6) if st.mean == st.mean else None,
                "std": round(st.std, 6) if st.std == st.std else None,
                "n": int(len(st.samples)),
            }
            for (n, rtt), st in sorted(cells.items())
        },
    }
    flight.finalize()
    return Fig8Result(
        cells=cells,
        total_bytes=sc.fig8_total_bytes,
        capacity_bps=sc.fig8_capacity_bps,
        bound_seconds=lower_bound(sc.fig8_total_bytes, sc.fig8_capacity_bps),
        failures=failures,
    )
