"""Figure 4: PDF of inter-loss time over the Internet (PlanetLab substitute).

A random-pair CBR measurement campaign over the 26-site mesh (Table 1):
48 B / 400 B probe pairs per experiment, the paper's similarity validation,
per-path RTT normalization, intervals pooled over validated experiments.

Paper observations to reproduce: **~40% of losses within 0.01 RTT, ~60%
within 1 RTT**, and the loss process clearly burstier than Poisson inside
0–0.25 RTT despite the Internet's heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.burstiness import fraction_within
from repro.core.pdf import IntervalPdf, interval_pdf, poisson_reference_pdf
from repro.core.poisson import PoissonComparison, compare_to_poisson
from repro.core.report import pdf_figure_text
from repro.experiments.common import Scale, current_scale
from repro.internet.campaign import Campaign, CampaignResult
from repro.internet.probe import ProbeConfig

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    """Reproduced Figure 4 plus campaign statistics."""

    pdf: IntervalPdf
    poisson: np.ndarray
    frac_001: float
    frac_1: float
    comparison: PoissonComparison
    campaign: CampaignResult

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        head = pdf_figure_text(
            self.pdf,
            self.poisson,
            "Figure 4 — PDF of inter-loss time (Internet campaign, PlanetLab substitute)",
            frac_001=self.frac_001,
            frac_1=self.frac_1,
        )
        tail = (
            f"\nexperiments: {len(self.campaign.experiments)} "
            f"(validated {self.campaign.n_valid}, rejected {self.campaign.n_rejected}); "
            f"paths covered: {len(self.campaign.paths_measured())}"
        )
        return head + tail


def run_fig4(seed: int = 2006, scale: Optional[Scale] = None) -> Fig4Result:
    """Run the Internet campaign and analyze pooled intervals."""
    sc = current_scale(scale)
    camp = Campaign(
        seed=seed, probe_config=ProbeConfig(duration=sc.campaign_probe_duration)
    )
    result = camp.run(sc.campaign_experiments)
    intervals = result.all_intervals_rtt()
    pdf = interval_pdf(intervals)
    poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
    return Fig4Result(
        pdf=pdf,
        poisson=poisson,
        frac_001=fraction_within(intervals, 0.01),
        frac_1=fraction_within(intervals, 1.0),
        comparison=compare_to_poisson(intervals),
        campaign=result,
    )
