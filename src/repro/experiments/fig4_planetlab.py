"""Figure 4: PDF of inter-loss time over the Internet (PlanetLab substitute).

A random-pair CBR measurement campaign over the 26-site mesh (Table 1):
48 B / 400 B probe pairs per experiment, the paper's similarity validation,
per-path RTT normalization, intervals pooled over validated experiments.

Paper observations to reproduce: **~40% of losses within 0.01 RTT, ~60%
within 1 RTT**, and the loss process clearly burstier than Poisson inside
0–0.25 RTT despite the Internet's heterogeneity.

The driver runs the campaign *resiliently* (see :mod:`repro.faults`): the
environment knobs ``REPRO_WORKERS`` / ``REPRO_ON_ERROR`` /
``REPRO_CHECKPOINT_DIR`` / ``REPRO_FAULTS`` (the CLI's ``--workers`` /
``--on-error`` / ``--checkpoint-dir`` / ``--inject-faults``) fan
experiments over processes, skip-or-retry failed cells, resume interrupted
campaigns from a checkpoint, and arm a sampled fault plan.  A degraded
campaign renders with an explicit note — surviving cells, never silent
truncation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.burstiness import fraction_within
from repro.core.pdf import IntervalPdf, interval_pdf, poisson_reference_pdf
from repro.core.poisson import PoissonComparison, compare_to_poisson
from repro.core.report import pdf_figure_text
from repro.experiments.common import Scale, current_scale
from repro.faults import (
    FaultPlan,
    checkpoint_path_from_env,
    fault_seed_from_env,
    on_error_from_env,
)
from repro.internet.campaign import Campaign, CampaignResult
from repro.internet.probe import ProbeConfig
from repro.obs.runtime import open_flight_log

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    """Reproduced Figure 4 plus campaign statistics."""

    pdf: IntervalPdf
    poisson: np.ndarray
    frac_001: float
    frac_1: float
    comparison: PoissonComparison
    campaign: CampaignResult

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        head = pdf_figure_text(
            self.pdf,
            self.poisson,
            "Figure 4 — PDF of inter-loss time (Internet campaign, PlanetLab substitute)",
            frac_001=self.frac_001,
            frac_1=self.frac_1,
        )
        tail = (
            f"\nexperiments: {len(self.campaign.experiments)} "
            f"(validated {self.campaign.n_valid}, rejected {self.campaign.n_rejected}); "
            f"paths covered: {len(self.campaign.paths_measured())}"
        )
        if self.campaign.degraded:
            failed = ", ".join(
                f"#{f.index} ({f.error})" for f in self.campaign.failures
            )
            tail += (
                f"\nDEGRADED: {len(self.campaign.failures)} experiment(s) "
                f"failed and were excluded: {failed}"
            )
        injected = self.campaign.meta.get("injected") or {}
        if injected:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(injected.items()))
            tail += f"\ninjected faults: {parts}"
        return head + tail


def run_fig4(
    seed: int = 2006,
    scale: Optional[Scale] = None,
    workers: Optional[int] = None,
    on_error: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Fig4Result:
    """Run the Internet campaign and analyze pooled intervals.

    Resilience knobs left at ``None`` fall back to the environment:
    ``workers`` to ``REPRO_WORKERS`` (then serial), ``on_error`` to
    ``REPRO_ON_ERROR`` (then ``"raise"``, or ``"retry"`` when a fault plan
    is armed), ``fault_plan`` to a plan sampled from ``REPRO_FAULTS``.
    With ``REPRO_CHECKPOINT_DIR`` set, completed experiments stream to
    ``fig4.jsonl`` there and an interrupted run resumes from it.
    """
    sc = current_scale(scale)
    if fault_plan is None:
        fault_seed = fault_seed_from_env()
        if fault_seed is not None:
            fault_plan = FaultPlan.sample_campaign(
                fault_seed,
                n_experiments=sc.campaign_experiments,
                span_seconds=Campaign.CAMPAIGN_SPAN_SECONDS,
            )
    if on_error is None:
        # An armed plan *will* crash probes; default to riding them out.
        on_error = on_error_from_env("retry" if fault_plan is not None else "raise")
    camp = Campaign(
        seed=seed,
        probe_config=ProbeConfig(duration=sc.campaign_probe_duration),
        fault_plan=fault_plan,
    )
    # Campaigns have no single simulator clock: the flight record is a
    # parent-side FlightLog (manifest + per-experiment spans + fault
    # events relayed from the workers' result records).
    flight = open_flight_log(
        "fig4",
        manifest={
            "seed": seed,
            "scale": sc.name,
            "n_experiments": sc.campaign_experiments,
            "probe_duration": sc.campaign_probe_duration,
            "on_error": on_error,
            "fault_plan": None if fault_plan is None else fault_plan.describe(),
        },
    )
    with flight.span("campaign", n=sc.campaign_experiments):
        result = camp.run(
            sc.campaign_experiments,
            workers=workers,
            on_error=on_error,
            checkpoint=checkpoint_path_from_env("fig4"),
            tracer=flight.tracer,
        )
    intervals = result.all_intervals_rtt()
    pdf = interval_pdf(intervals)
    poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
    flight.finalize()
    return Fig4Result(
        pdf=pdf,
        poisson=poisson,
        frac_001=fraction_within(intervals, 0.01),
        frac_1=fraction_within(intervals, 1.0),
        comparison=compare_to_poisson(intervals),
        campaign=result,
    )
