"""Protocol/AQM zoo grid: Fig. 7 + Eqs. (1)/(2) across modern stacks.

The paper's unfairness results are strictly NewReno-vs-paced over a
DropTail bottleneck.  This driver re-runs the Figure 7 throughput
competition *and* the Eq. (1)/(2) loss-event detection measurement over
the cross product {protocol} x {AQM} x {RTT class}, resolving both axes
through the registries (:func:`repro.tcp.registry.create_sender`,
:func:`repro.sim.queues.make_queue`): every cell pits a NewReno baseline
class against a challenger protocol over the cell's queue discipline.

The ``(paced, droptail)`` cell *is* the paper's Figure 7 scenario — same
topology, flow ids, and RNG stream consumption as
:func:`repro.experiments.fig7_competition.run_fig7` — so its series
reproduce the seed outputs byte-identically (a pinned test enforces
this).  The other cells answer the ROADMAP's modernization question: does
the burstiness penalty on smooth senders survive BBR's model-based rate
control, QUIC's gain-and-burst pacing, and sojourn-time AQMs that were
built to kill standing queues (and with them, the synchronized overflow
bursts the paper blames)?

Reading BBR/QUIC cells against the paper's Reno-era numbers: see
``docs/TUTORIAL.md`` — the detection-ratio column only speaks to the
paper's Eq. (1)/(2) mechanism for challengers that, like TCP Pacing,
*react per loss event*; BBR ignores individual losses by design, so for
its cells the throughput split is the meaningful number, not the ratio.

Grid cells run through the shared resilience machinery: with
``REPRO_CHECKPOINT_DIR`` set, each completed cell streams to
``zoo.jsonl`` and an interrupted grid resumes (identically — each cell
re-derives its RNG from the run seed); ``REPRO_WORKERS`` fans cells over
processes; ``REPRO_FAULTS``/``REPRO_ON_ERROR`` inject and police faults
per cell like campaign shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.detection import DetectionModel  # noqa: F401  (re-export context)
from repro.core.events import distinct_flows_per_event, event_spans
from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale, observe_experiment
from repro.experiments.parallel import parallel_map
from repro.faults import (
    Checkpoint,
    Result,
    checkpoint_path_from_env,
    on_error_from_env,
)
from repro.obs.bus import open_bus
from repro.obs.httpd import maybe_obs_server
from repro.obs.spans import maybe_tracer, span
from repro.sim.engine import Simulator
from repro.sim.queues import make_queue
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import ThroughputTrace
from repro.tcp.registry import create_sender, sender_spec
from repro.tcp.sink import TcpSink

__all__ = [
    "ZooCellResult",
    "ZooGridResult",
    "run_zoo_cell",
    "run_zoo",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_AQMS",
    "DEFAULT_RTT_CLASSES",
]

#: Challenger protocols of the default grid (the baseline class is always
#: NewReno, the paper's window-based reference).
DEFAULT_PROTOCOLS = ("reno", "newreno", "paced", "quic-paced", "bbr")
#: Queue disciplines of the default grid.
DEFAULT_AQMS = ("droptail", "red", "codel", "fq-codel")
#: RTT classes: name -> propagation RTT.  "wan" is the paper's 50 ms
#: path (the pinned Fig. 7 byte-identity cell); the other three span a
#: campus switch, a metro ring, and an intercontinental path, so the
#: default grid reads the burstiness penalty across four delay regimes.
DEFAULT_RTT_CLASSES = (
    ("lan", 0.002),
    ("metro", 0.015),
    ("wan", 0.050),
    ("intercont", 0.150),
)

#: Throughput-trace groups; fid bases match run_fig7/run_eq12 so the
#: detection analysis classifies by the same id split.
GROUP_BASELINE = 0
GROUP_CHALLENGER = 1
_BASELINE_FID = 100
_CHALLENGER_FID = 200


@dataclass
class ZooCellResult:
    """One grid cell: a Fig. 7-style split plus Eq. (1)/(2) detection."""

    protocol: str
    aqm: str
    rtt_name: str
    rtt: float
    rate_based: bool
    # Fig. 7-style competition.
    mean_baseline_mbps: float
    mean_challenger_mbps: float
    # Eq. (1)/(2)-style detection.
    n_events: int
    mean_event_size: float
    measured_baseline_hits: float
    measured_challenger_hits: float
    # Queue accounting (push-time drops, dequeue-time drops, ECN marks).
    dropped: int
    dropped_head: int
    marked: int
    # Full throughput series (dropped when a cell round-trips through a
    # checkpoint record; the summary scalars are what the grid reports).
    times: Optional[np.ndarray] = None
    baseline_mbps: Optional[np.ndarray] = None
    challenger_mbps: Optional[np.ndarray] = None
    #: Which engine produced the cell: "packet" (default) or "fluid".
    backend: str = "packet"

    @property
    def challenger_deficit(self) -> float:
        """Fractional throughput shortfall of the challenger class
        (positive = the challenger loses, as the paper's paced class did)."""
        if self.mean_baseline_mbps <= 0:
            return float("nan")
        return (
            self.mean_baseline_mbps - self.mean_challenger_mbps
        ) / self.mean_baseline_mbps

    @property
    def detection_ratio(self) -> float:
        """Challenger/baseline share of flows detecting each loss event."""
        if self.measured_baseline_hits <= 0:
            return float("nan")
        return self.measured_challenger_hits / self.measured_baseline_hits

    def to_record(self) -> dict:
        """JSON-serializable summary (checkpoint record; series omitted)."""
        return {
            "protocol": self.protocol,
            "aqm": self.aqm,
            "rtt_name": self.rtt_name,
            "rtt": self.rtt,
            "rate_based": self.rate_based,
            "mean_baseline_mbps": self.mean_baseline_mbps,
            "mean_challenger_mbps": self.mean_challenger_mbps,
            "n_events": self.n_events,
            "mean_event_size": self.mean_event_size,
            "measured_baseline_hits": self.measured_baseline_hits,
            "measured_challenger_hits": self.measured_challenger_hits,
            "dropped": self.dropped,
            "dropped_head": self.dropped_head,
            "marked": self.marked,
            "backend": self.backend,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "ZooCellResult":
        """Rebuild a cell from its checkpoint record."""
        return cls(**rec)


@dataclass
class ZooGridResult:
    """The full grid plus run bookkeeping."""

    cells: list[ZooCellResult]
    seed: int
    scale_name: str
    resumed: int = 0  # cells restored from a checkpoint
    failed: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failed is None:
            self.failed = []

    def cell(self, protocol: str, aqm: str, rtt_name: str = "wan") -> ZooCellResult:
        """Look up one cell; raises ``KeyError`` when absent."""
        for c in self.cells:
            if (c.protocol, c.aqm, c.rtt_name) == (protocol, aqm, rtt_name):
                return c
        raise KeyError(f"no zoo cell ({protocol}, {aqm}, {rtt_name})")

    def to_text(self) -> str:
        """Render the grid as the paper-shaped summary table."""
        rows = []
        for c in self.cells:
            rows.append([
                c.protocol,
                c.aqm,
                c.rtt_name,
                round(c.mean_baseline_mbps, 2),
                round(c.mean_challenger_mbps, 2),
                f"{c.challenger_deficit * 100:+.1f}%",
                c.n_events,
                round(c.mean_event_size, 1),
                (f"{c.detection_ratio:.2f}"
                 if np.isfinite(c.detection_ratio) else "-"),
                c.dropped,
                c.dropped_head,
                c.marked,
            ])
        table = format_table(
            ["challenger", "aqm", "rtt", "newreno(Mbps)", "chal(Mbps)",
             "deficit", "events", "M", "L_chal/L_nr", "drop", "hdrop", "mark"],
            rows,
            title=(
                "Protocol/AQM zoo — NewReno baseline vs challenger "
                f"(seed={self.seed}, scale={self.scale_name})"
            ),
        )
        notes = [
            "paced/droptail is the paper's Fig. 7 cell (deficit ~ +17% at paper",
            "scale).  'deficit' > 0 means the challenger class loses throughput;",
            "L_chal/L_nr > 1 means more challenger flows detect each loss event",
            "(Eqs. 1-2).  hdrop = dequeue-time drops (CoDel sojourn drops,",
            "FQ-CoDel evictions); see docs/TUTORIAL.md for reading BBR/QUIC",
            "cells against the Reno-era numbers.",
        ]
        out = table + "\n" + "\n".join(notes)
        if self.resumed:
            out += f"\n[{self.resumed} cells resumed from checkpoint]"
        if self.failed:
            out += f"\n[FAILED cells: {', '.join(self.failed)}]"
        return out


def run_zoo_cell(
    seed: int,
    scale: Optional[Scale],
    protocol: str,
    aqm: str,
    rtt: float = 0.050,
    rtt_name: str = "wan",
    buffer_bdp_fraction: float = 1.0,
    bin_width: float = 0.5,
    backend: str = "packet",
) -> ZooCellResult:
    """Run one grid cell: NewReno baseline vs ``protocol`` over ``aqm``.

    Construction mirrors :func:`~repro.experiments.fig7_competition.run_fig7`
    exactly — same topology, flow-id bases, pair names, and RNG stream
    consumption order — so the ``(paced, droptail, wan)`` cell replays the
    paper's Figure 7 scenario bit-for-bit.  The AQM draws randomness from
    its own ``"aqm"`` stream, so swapping disciplines never perturbs the
    flow-start randomness (variance isolation).

    ``backend="fluid"`` runs the same cell on the mean-field engine
    (:mod:`repro.sim.fluid`) instead: protocols/AQMs without a fluid
    reduction raise :class:`~repro.sim.queues.FluidNotSupported` (the
    grid reports those cells as failed rather than silently degrading),
    and the detection columns are NaN — per-drop flow attribution is a
    packet-level concept.  Note the physics: both Fig. 7 classes share
    one RTT, and pacing differs from NewReno only *below* the RTT
    timescale, so the fluid limit predicts an equal split — the paper's
    pacing deficit is exactly the sub-RTT structure the mean-field
    limit integrates away (see docs/TUTORIAL.md §12).
    """
    sc = current_scale(scale)
    if backend == "fluid":
        return _run_zoo_cell_fluid(
            seed, sc, protocol, aqm, rtt=rtt, rtt_name=rtt_name,
            buffer_bdp_fraction=buffer_bdp_fraction, bin_width=bin_width,
        )
    if backend != "packet":
        raise ValueError(
            f"backend must be 'packet' or 'fluid', got {backend!r}"
        )
    spec = sender_spec(protocol)  # validate before simulating
    streams = RngStreams(seed)
    sim = Simulator()
    tracer = maybe_tracer(f"zoo.{protocol}.{aqm}.{rtt_name}", sim=sim)

    with span(tracer, "setup", seed=seed, protocol=protocol, aqm=aqm, rtt=rtt):
        cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
        cfg.buffer_pkts = max(4, int(cfg.bdp_packets(rtt) * buffer_bdp_fraction))
        db = build_dumbbell(sim, cfg)
        if aqm != "droptail":
            # The default bottleneck is already DropTail; leaving it in
            # place keeps the droptail cells on run_fig7's exact path.
            db.set_forward_queue(make_queue(
                aqm,
                cfg.buffer_pkts,
                rng=streams.stream("aqm"),
                name="bottleneck",
                service_rate_pps=sc.fig7_capacity_bps / 8.0 / cfg.packet_size,
            ))
        tp = ThroughputTrace(bin_width=bin_width)

        start_rng = streams.stream("starts")
        n = sc.fig7_flows_per_class
        flows = []
        for i in range(n):
            pair = db.add_pair(rtt=rtt, name=f"nr{i}")
            fid = _BASELINE_FID + i
            snd = create_sender("newreno", sim, pair.left, fid, pair.right.node_id)
            sink = TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
            tp.assign(fid, GROUP_BASELINE)
            flows.append((snd, sink))
            snd.start(float(start_rng.uniform(0.0, 0.1)))
        for i in range(n):
            pair = db.add_pair(rtt=rtt, name=f"pc{i}")
            fid = _CHALLENGER_FID + i
            snd = create_sender(protocol, sim, pair.left, fid, pair.right.node_id,
                                rtt=rtt)
            sink = TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
            tp.assign(fid, GROUP_CHALLENGER)
            flows.append((snd, sink))
            snd.start(float(start_rng.uniform(0.0, 0.1)))

        obs = observe_experiment(
            sim, db=db, name=f"zoo.{protocol}.{aqm}.{rtt_name}", flows=flows,
            tracer=tracer,
            manifest={
                "seed": seed,
                "scale": sc.name,
                "protocol": protocol,
                "aqm": aqm,
                "rtt": rtt,
                "rtt_class": rtt_name,
                "flows_per_class": n,
            },
        )
    with span(tracer, "run", until=sc.fig7_duration), obs.profiled():
        sim.run(until=sc.fig7_duration)

    with span(tracer, "analyze"):
        t, base = tp.series(GROUP_BASELINE, until=sc.fig7_duration - 1e-9)
        _, chal = tp.series(GROUP_CHALLENGER, until=sc.fig7_duration - 1e-9)

        # Eq. (1)/(2) detection over the same run's drop trace.
        trace = db.drop_trace
        all_fids = trace.flow_ids
        spans_idx = event_spans(trace.drop_times(), rtt)
        n_ev = len(spans_idx) - 1
        sizes = np.diff(spans_idx)
        base_mask = (all_fids >= _BASELINE_FID) & (all_fids < _CHALLENGER_FID)
        chal_mask = all_fids >= _CHALLENGER_FID
        base_hits = distinct_flows_per_event(spans_idx, all_fids,
                                             record_mask=base_mask)
        chal_hits = distinct_flows_per_event(spans_idx, all_fids,
                                             record_mask=chal_mask)
        q = db.forward_queue
    obs.finalize(duration=sc.fig7_duration)

    return ZooCellResult(
        protocol=protocol,
        aqm=aqm,
        rtt_name=rtt_name,
        rtt=rtt,
        rate_based=spec.rate_based,
        mean_baseline_mbps=tp.mean_mbps(GROUP_BASELINE, sc.fig7_duration),
        mean_challenger_mbps=tp.mean_mbps(GROUP_CHALLENGER, sc.fig7_duration),
        n_events=n_ev,
        mean_event_size=float(sizes.mean()) if len(sizes) else float("nan"),
        measured_baseline_hits=(
            float(np.mean(base_hits)) if len(base_hits) else float("nan")
        ),
        measured_challenger_hits=(
            float(np.mean(chal_hits)) if len(chal_hits) else float("nan")
        ),
        dropped=q.dropped,
        dropped_head=q.dropped_head,
        marked=q.marked,
        times=t,
        baseline_mbps=base,
        challenger_mbps=chal,
    )


def _run_zoo_cell_fluid(
    seed: int,
    sc: Scale,
    protocol: str,
    aqm: str,
    rtt: float,
    rtt_name: str,
    buffer_bdp_fraction: float,
    bin_width: float,
) -> ZooCellResult:
    """The cell's mean-field twin: same dimensioning, fluid dynamics."""
    from repro.sim.fluid import FluidClass, FluidScenario, run_fluid

    spec = sender_spec(protocol)
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
    buffer_pkts = max(4, int(cfg.bdp_packets(rtt) * buffer_bdp_fraction))
    n = sc.fig7_flows_per_class
    scenario = FluidScenario(
        classes=(
            FluidClass("baseline", "newreno", n=n, rtt=rtt),
            FluidClass("challenger", protocol, n=n, rtt=rtt),
        ),
        capacity_bps=sc.fig7_capacity_bps,
        buffer_pkts=buffer_pkts,
        queue=aqm,
        packet_size=cfg.packet_size,
        duration=sc.fig7_duration,
        # At least ~12 samples per RTT, and never coarser than 4 ms.
        dt=min(0.004, rtt / 12.0),
        warmup=0.0,
    )
    scenario.validate()  # FluidNotSupported surfaces before integrating
    res = run_fluid(scenario)

    # Bin the per-class delivered rate to the packet driver's cadence.
    bits_per_pkt = 8.0 * cfg.packet_size
    per_bin = max(1, int(round(bin_width / scenario.dt)))
    n_bins = res.steps // per_bin
    trimmed = res.x_trace[: n_bins * per_bin]
    binned = trimmed.reshape(n_bins, per_bin, 2).mean(axis=1)
    times = (np.arange(n_bins) + 0.5) * bin_width
    mean_mbps = res.x_trace.mean(axis=0) * bits_per_pkt / 1e6

    # Loss events: fluid drop episodes (cf. event_spans on drop traces).
    return ZooCellResult(
        protocol=protocol,
        aqm=aqm,
        rtt_name=rtt_name,
        rtt=rtt,
        rate_based=spec.rate_based,
        mean_baseline_mbps=float(mean_mbps[0]),
        mean_challenger_mbps=float(mean_mbps[1]),
        n_events=res.loss_event_count,
        mean_event_size=float("nan"),
        measured_baseline_hits=float("nan"),
        measured_challenger_hits=float("nan"),
        dropped=int(round(res.dropped_pkts)),
        dropped_head=0,
        marked=0,
        times=times,
        baseline_mbps=binned[:, 0] * bits_per_pkt / 1e6,
        challenger_mbps=binned[:, 1] * bits_per_pkt / 1e6,
        backend="fluid",
    )


def _zoo_worker(item: tuple) -> dict:
    """Picklable per-cell worker for :func:`parallel_map` fan-out."""
    seed, sc, protocol, aqm, rtt_name, rtt, backend = item
    cell = run_zoo_cell(seed, sc, protocol, aqm, rtt=rtt, rtt_name=rtt_name,
                        backend=backend)
    return cell.to_record()


def run_zoo(
    seed: int = 1,
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    aqms: Sequence[str] = DEFAULT_AQMS,
    rtt_classes: Sequence[tuple[str, float]] = DEFAULT_RTT_CLASSES,
    backend: str = "packet",
) -> ZooGridResult:
    """Run the full grid, resuming from / streaming to a checkpoint.

    Cell order is deterministic (rtt class, protocol, aqm) and each cell
    derives every random stream from ``seed`` alone, so a resumed or
    parallel run is bit-identical to a fresh serial one.

    With ``backend="fluid"`` every cell runs on the mean-field engine;
    cells whose protocol or AQM has no fluid reduction are reported in
    ``failed`` as ``<cell> (fluid unsupported: ...)`` up front instead
    of being attempted — no silent fallback to the packet engine.
    """
    sc = current_scale(scale)
    cells_spec = [
        (rtt_name, rtt, protocol, aqm)
        for rtt_name, rtt in rtt_classes
        for protocol in protocols
        for aqm in aqms
    ]

    unsupported: dict[int, str] = {}
    if backend == "fluid":
        from repro.sim.queues import FluidNotSupported, make_fluid_law
        from repro.tcp.fluid_maps import make_fluid_map

        for i, (rtt_name, rtt, protocol, aqm) in enumerate(cells_spec):
            try:
                make_fluid_map(protocol)
                make_fluid_law(aqm, 4, service_rate_pps=1.0)
            except FluidNotSupported as exc:
                unsupported[i] = (
                    f"{protocol}/{aqm}/{rtt_name} (fluid unsupported: {exc})"
                )

    ckpt: Optional[Checkpoint] = None
    records: dict[int, dict] = {}
    ckpt_path = checkpoint_path_from_env("zoo")
    bus = server = None
    if ckpt_path is not None:
        ckpt = Checkpoint(ckpt_path, meta={
            "kind": "zoo", "seed": seed, "scale": sc.name,
            "n": len(cells_spec),
        })
        records = ckpt.load()
        # The checkpoint directory doubles as the grid's observable state
        # directory: the event bus and the opt-in /metrics endpoint live
        # next to zoo.jsonl, so `repro top` works on zoo runs too.
        bus = open_bus(ckpt_path.parent, source="zoo")
        server = maybe_obs_server(ckpt_path.parent)
    resumed = len(records)

    todo_idx = [
        i for i in range(len(cells_spec))
        if i not in records and i not in unsupported
    ]
    items = [
        (seed, sc, cells_spec[i][2], cells_spec[i][3],
         cells_spec[i][0], cells_spec[i][1], backend)
        for i in todo_idx
    ]
    on_error = on_error_from_env()
    failed: list[str] = list(unsupported.values())

    def cell_label(idx: int) -> str:
        rtt_name, _, protocol, aqm = cells_spec[idx]
        return f"{protocol}/{aqm}/{rtt_name}"

    def note(res: Result) -> None:
        idx = todo_idx[res.index]
        if not res.ok:
            if bus is not None:
                bus.emit("cell.failed", i=idx, cell=cell_label(idx),
                         error=res.error_text)
            return
        records[idx] = res.value
        if ckpt is not None:
            ckpt.append(idx, res.value)
        if bus is not None:
            bus.emit("cell.done", i=idx, cell=cell_label(idx))

    if bus is not None:
        bus.emit("zoo.start", n=len(cells_spec), seed=seed, scale=sc.name,
                 resumed=resumed, pending=len(todo_idx))
    try:
        out = parallel_map(
            _zoo_worker, items,
            on_error=on_error, on_result=note, span_name="zoo.cell",
        )
    finally:
        if ckpt is not None:
            ckpt.close()
        if bus is not None:
            bus.close()
        if server is not None:
            server.close()

    if on_error == "raise":
        # Raw records come back; on_result already filed them, but a
        # serial raise-mode run with no checkpoint skips note() only on
        # error paths — ensure everything is filed.
        for pos, rec in enumerate(out):
            if not isinstance(rec, Result):
                records.setdefault(todo_idx[pos], rec)
    else:
        for res in out:
            if isinstance(res, Result) and not res.ok:
                rtt_name, _, protocol, aqm = cells_spec[todo_idx[res.index]]
                failed.append(f"{protocol}/{aqm}/{rtt_name}")

    cells = [
        ZooCellResult.from_record(records[i])
        for i in sorted(records)
    ]
    return ZooGridResult(
        cells=cells, seed=seed, scale_name=sc.name,
        resumed=resumed, failed=failed,
    )
