"""Many-flows convergence: the packet engine vs the mean-field fluid limit.

The paper's distributed-applications implications are population
statements — what loss burstiness does to *thousands* of flows sharing
one buffer — but the packet engine costs O(N) events per RTT.  This
driver runs the same two-class scenario on both backends under the
weak-convergence scaling (capacity and buffer grown proportionally to
N, per-flow bandwidth share held fixed) and measures how fast the
stochastic packet system converges to the deterministic fluid limit
(:mod:`repro.sim.fluid`) as N grows 100 → 1k → 10k:

* **throughput share** per RTT class (the Fig. 7 observable), and
* **per-flow loss-event rate** (window cuts per second — fast
  retransmits + timeouts on the packet side, the thinned feedback rate
  ``eta`` on the fluid side).

Lautenschlaeger's weak-convergence result (PAPERS.md) predicts the gap
shrinks like the population's relative fluctuations, so the suite in
``tests/experiments/test_manyflows.py`` asserts monotonically
tightening tolerance bands.  The fluid backend's cost is O(steps),
independent of N — the ≥100x flows/s unlock benchmarked by the
``many_flows`` stage in ``python -m repro bench``.

Scenario shape: two NewReno classes at 100 ms and 250 ms propagation
RTT, N/2 flows each, 800 kbps fair share per flow (per-flow BDP 10 and
25 packets), bottleneck buffer of 8 packets per flow, and a
receiver-window cap of twice the per-flow pipe on *both* backends
(without it the synchronized initial slow start overshoots into
timeout collapse, a regime the fluid model — which has no timeouts —
deliberately excludes).  Small per-flow BDPs keep windows in the
paper's loss-bursty regime; classes share one host pair each on the
packet side so object count stays O(classes) hosts + O(N) agents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import Scale, current_scale, observe_experiment
from repro.obs.spans import maybe_tracer, span
from repro.sim.engine import Simulator
from repro.sim.fluid import FluidClass, FluidScenario, run_fluid
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import ThroughputTrace
from repro.tcp.registry import create_sender
from repro.tcp.sink import TcpSink

__all__ = [
    "CLASS_RTTS",
    "ManyFlowsCell",
    "ManyFlowsRow",
    "ManyFlowsResult",
    "packet_scenario_events",
    "run_manyflows_fluid",
    "run_manyflows_packet",
    "run_manyflows",
]

#: The two RTT classes (name, propagation RTT seconds).  100/250 ms
#: spans the paper's WAN regime with a 2.5x unfairness lever arm.
CLASS_RTTS: tuple[tuple[str, float], ...] = (("near", 0.100), ("far", 0.250))

SENDER = "newreno"
BUFFER_PKTS_PER_FLOW = 8
WARMUP_FRACTION = 0.3


@dataclass(frozen=True)
class ManyFlowsCell:
    """One backend's measurements at one population size."""

    backend: str  # "packet" | "fluid"
    n: int
    wall_s: float
    throughput_share: tuple[float, ...]
    class_loss_event_rate: tuple[float, ...]  # per flow, events/s
    loss_rate: float

    @property
    def flows_per_s(self) -> float:
        """Simulated flows per wall-clock second (the bench metric)."""
        return self.n / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass(frozen=True)
class ManyFlowsRow:
    """Packet-vs-fluid comparison at one population size."""

    n: int
    packet: ManyFlowsCell
    fluid: ManyFlowsCell

    @property
    def share_gap(self) -> float:
        """Max absolute per-class throughput-share difference."""
        return max(
            abs(f - p)
            for f, p in zip(self.fluid.throughput_share,
                            self.packet.throughput_share)
        )

    @property
    def loss_gap(self) -> float:
        """Max relative per-class loss-event-rate difference."""
        return max(
            abs(f - p) / p if p > 0 else float("inf")
            for f, p in zip(self.fluid.class_loss_event_rate,
                            self.packet.class_loss_event_rate)
        )

    @property
    def speedup(self) -> float:
        """Packet wall time over fluid wall time at this N."""
        return (self.packet.wall_s / self.fluid.wall_s
                if self.fluid.wall_s > 0 else float("inf"))


@dataclass
class ManyFlowsResult:
    """The convergence sweep: one row per population size."""

    class_names: tuple[str, ...]
    rows: tuple[ManyFlowsRow, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        """Render the convergence table."""
        lines = [
            "Many-flows convergence — packet engine vs mean-field fluid limit",
            f"  classes: {', '.join(self.class_names)} ({SENDER}, "
            f"rtts {'/'.join(f'{r * 1e3:.0f}ms' for _, r in CLASS_RTTS)})",
            "  N      share(pkt)      share(fluid)    gap     "
            "ev/s(pkt)    ev/s(fluid)  rel.gap  speedup",
        ]
        for row in self.rows:
            ps = "/".join(f"{s:.3f}" for s in row.packet.throughput_share)
            fs = "/".join(f"{s:.3f}" for s in row.fluid.throughput_share)
            pe = "/".join(f"{e:.2f}" for e in row.packet.class_loss_event_rate)
            fe = "/".join(f"{e:.2f}" for e in row.fluid.class_loss_event_rate)
            lines.append(
                f"  {row.n:<6d} {ps:<15s} {fs:<15s} {row.share_gap:.3f}   "
                f"{pe:<12s} {fe:<12s} {row.loss_gap:.3f}    "
                f"{row.speedup:.0f}x"
            )
        return "\n".join(lines)


def _scenario_dims(n: int, sc: Scale) -> tuple[float, int]:
    """(capacity_bps, buffer_pkts) under the weak-convergence scaling."""
    return n * sc.manyflows_per_flow_bps, BUFFER_PKTS_PER_FLOW * n


def _class_caps(sc: Scale) -> tuple[tuple[float, float], ...]:
    """Per-class (max_cwnd, initial_ssthresh), identical on both backends.

    A receiver-window cap of twice the per-flow pipe (fair-share BDP +
    buffer share) is the real-deployment bound that keeps the initial
    synchronized slow start from overshooting into timeout collapse —
    without it the packet population spends the whole run in RTO
    recovery, a regime outside the fluid model (which has no timeouts).
    """
    per_flow_pps = sc.manyflows_per_flow_bps / 8.0 / 1000.0
    caps = []
    for _, rtt in CLASS_RTTS:
        pipe = per_flow_pps * rtt + BUFFER_PKTS_PER_FLOW
        w_max = 2.0 * pipe
        caps.append((w_max, w_max / 2.0))
    return tuple(caps)


def packet_scenario_events(n: int, sc: Optional[Scale] = None) -> float:
    """Rough forward-packet count of the packet run (for sizing docs)."""
    sc = current_scale(sc)
    capacity_bps, _ = _scenario_dims(n, sc)
    return capacity_bps / 8.0 / 1000.0 * sc.manyflows_duration


def fluid_scenario(n: int, sc: Optional[Scale] = None) -> FluidScenario:
    """The fluid half of the convergence pair at population size ``n``."""
    sc = current_scale(sc)
    capacity_bps, buffer_pkts = _scenario_dims(n, sc)
    split = _class_counts(n)
    caps = _class_caps(sc)
    return FluidScenario(
        classes=tuple(
            FluidClass(name, SENDER, n=nk, rtt=rtt,
                       w_max=w_max, ssthresh0=ssthresh0)
            for (name, rtt), nk, (w_max, ssthresh0)
            in zip(CLASS_RTTS, split, caps)
        ),
        capacity_bps=capacity_bps,
        buffer_pkts=buffer_pkts,
        duration=sc.manyflows_duration,
        dt=sc.manyflows_dt,
        warmup=WARMUP_FRACTION * sc.manyflows_duration,
    )


def _class_counts(n: int) -> tuple[int, ...]:
    """Split ``n`` flows across the RTT classes (remainder to the first)."""
    k = len(CLASS_RTTS)
    base = n // k
    counts = [base] * k
    counts[0] += n - base * k
    if min(counts) < 1:
        raise ValueError(f"need at least {k} flows for {k} classes, got {n}")
    return tuple(counts)


def run_manyflows_fluid(n: int, sc: Optional[Scale] = None) -> ManyFlowsCell:
    """Run the fluid backend at population size ``n``."""
    scn = fluid_scenario(n, sc)
    t0 = time.perf_counter()
    res = run_fluid(scn)
    wall = time.perf_counter() - t0
    return ManyFlowsCell(
        backend="fluid",
        n=n,
        wall_s=wall,
        throughput_share=res.throughput_share,
        class_loss_event_rate=res.class_loss_event_rate,
        loss_rate=res.loss_rate,
    )


def run_manyflows_packet(
    n: int, seed: int = 1, sc: Optional[Scale] = None
) -> ManyFlowsCell:
    """Run the packet engine on the same scenario at population size ``n``."""
    sc = current_scale(sc)
    capacity_bps, buffer_pkts = _scenario_dims(n, sc)
    duration = sc.manyflows_duration
    warmup = WARMUP_FRACTION * duration
    split = _class_counts(n)

    streams = RngStreams(seed)
    sim = Simulator()
    tracer = maybe_tracer("manyflows", sim=sim)
    t0 = time.perf_counter()

    with span(tracer, "setup", n=n, seed=seed):
        cfg = DumbbellConfig(
            bottleneck_rate_bps=capacity_bps,
            access_rate_bps=max(1e9, 16.0 * capacity_bps),
            buffer_pkts=buffer_pkts,
        )
        db = build_dumbbell(sim, cfg)
        tp = ThroughputTrace(bin_width=0.25)
        start_rng = streams.stream("starts")

        senders: list[list] = []
        flows = []
        caps = _class_caps(sc)
        for k, ((name, rtt), nk) in enumerate(zip(CLASS_RTTS, split)):
            # All nk flows of a class share one host pair: Host demuxes
            # by flow id, so object count stays O(classes) hosts.
            pair = db.add_pair(rtt=rtt, name=name)
            w_max, ssthresh0 = caps[k]
            cls_senders = []
            for i in range(nk):
                fid = (k + 1) * 1_000_000 + i
                snd = create_sender(SENDER, sim, pair.left, fid,
                                    pair.right.node_id,
                                    max_cwnd=w_max,
                                    initial_ssthresh=ssthresh0)
                sink = TcpSink(sim, pair.right, fid, pair.left.node_id,
                               throughput=tp)
                tp.assign(fid, k)
                cls_senders.append(snd)
                flows.append((snd, sink))
                snd.start(float(start_rng.uniform(0.0, 0.5)))
            senders.append(cls_senders)

        # Loss events (fast retransmits + timeouts) are cumulative from
        # flow start; snapshot at warmup so the measurement window
        # matches the fluid backend's.
        base_events = [[0] * len(cls) for cls in senders]

        def snapshot():
            for k, cls in enumerate(senders):
                for i, snd in enumerate(cls):
                    base_events[k][i] = (snd.stats.fast_retransmits
                                         + snd.stats.timeouts)

        sim.schedule(warmup, snapshot)
        obs = observe_experiment(
            sim, db=db, name="manyflows", flows=flows, tracer=tracer,
            manifest={"seed": seed, "n": n, "scale": sc.name},
        )
    with span(tracer, "run", until=duration), obs.profiled():
        sim.run(until=duration)
    wall = time.perf_counter() - t0

    with span(tracer, "analyze"):
        measured = duration - warmup
        shares = []
        rates = []
        for k, cls in enumerate(senders):
            t, mbps = tp.series(k, until=duration - 1e-9)
            mask = t >= warmup
            shares.append(float(mbps[mask].mean()) if mask.any() else 0.0)
            events = sum(
                snd.stats.fast_retransmits + snd.stats.timeouts - base
                for snd, base in zip(cls, base_events[k])
            )
            rates.append(events / (len(cls) * measured))
        total = sum(shares)
        shares = [s / total if total > 0 else 0.0 for s in shares]
        fq = db.forward_queue
        loss_rate = (fq.dropped / fq.arrived) if fq.arrived else 0.0
    obs.finalize(duration=duration)

    return ManyFlowsCell(
        backend="packet",
        n=n,
        wall_s=wall,
        throughput_share=tuple(shares),
        class_loss_event_rate=tuple(rates),
        loss_rate=float(loss_rate),
    )


def run_manyflows(
    seed: int = 1,
    scale: Optional[Scale] = None,
    ns: Optional[tuple[int, ...]] = None,
    backend: str = "both",
) -> ManyFlowsResult:
    """Run the convergence sweep over population sizes.

    ``backend`` narrows the run: ``"both"`` (default) produces the
    packet-vs-fluid comparison rows; ``"fluid"`` or ``"packet"`` run a
    single backend (the other cell is a zero-cost placeholder) for
    timing or scouting.
    """
    sc = current_scale(scale)
    sizes = tuple(ns) if ns is not None else sc.manyflows_ns
    if backend not in ("both", "packet", "fluid"):
        raise ValueError(
            f"backend must be 'both', 'packet' or 'fluid', got {backend!r}"
        )
    rows = []
    for n in sizes:
        fluid_cell = (run_manyflows_fluid(n, sc)
                      if backend in ("both", "fluid") else None)
        packet_cell = (run_manyflows_packet(n, seed=seed, sc=sc)
                       if backend in ("both", "packet") else None)
        filler = ManyFlowsCell(
            backend="none", n=n, wall_s=0.0,
            throughput_share=(0.0,) * len(CLASS_RTTS),
            class_loss_event_rate=(0.0,) * len(CLASS_RTTS),
            loss_rate=0.0,
        )
        rows.append(ManyFlowsRow(
            n=n,
            packet=packet_cell or filler,
            fluid=fluid_cell or filler,
        ))
    return ManyFlowsResult(
        class_names=tuple(name for name, _ in CLASS_RTTS),
        rows=tuple(rows),
    )
