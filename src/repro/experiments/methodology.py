"""Measurement-methodology comparison (paper §2 critique + future work).

One simulated bottleneck, three instruments observing its loss process:

1. **router drop trace** — the ground truth (what NS-2 gives the paper);
2. **TCP trace analysis** — Paxson-style reconstruction from the TCP
   senders' retransmission records;
3. **CBR probe** — a thin constant-bit-rate flow through the same
   bottleneck, losses reconstructed from receiver gaps (the paper's
   chosen methodology).

The paper argues (2) confounds the loss process's burstiness with TCP's
own sub-RTT burstiness and measurement timing error, while (3) samples
the process with an unbiased even comb.  This experiment quantifies the
claim: the CBR probe's burstiness statistics should sit closer to the
router's truth than the TCP-trace reconstruction's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.tcptrace import MethodologyComparison, compare_methodologies, \
    reconstruct_losses_from_retransmissions
from repro.experiments.common import Scale, add_noise_fleet, current_scale, random_rtts
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.cbr import CbrSource
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import ProbeSink, TcpSink

__all__ = ["MethodologyResult", "run_methodology"]

_PROBE_FLOW = 777


@dataclass
class MethodologyResult:
    """Three-instrument measurement comparison for one run."""
    comparison: MethodologyComparison
    n_router_drops: int
    n_tcp_estimates: int
    n_probe_losses: int
    mean_rtt: float

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        return self.comparison.to_text()


def run_methodology(
    seed: int = 1,
    scale: Optional[Scale] = None,
    buffer_bdp_fraction: float = 0.5,
    probe_interval: Optional[float] = None,
) -> MethodologyResult:
    """Run the three-instrument measurement on one congested dumbbell.

    ``probe_interval`` defaults to whatever keeps the probe at 4% of the
    bottleneck (1 ms at the fast scale's 20 Mbps): a fixed wall-clock
    interval would under-sample the proportionally shorter drop bursts of
    faster links and bias the cross-scale comparison.
    """
    sc = current_scale(scale)
    if probe_interval is None:
        probe_interval = 100 * 8.0 / (0.04 * sc.capacity_bps)
    streams = RngStreams(seed)
    sim = Simulator()

    rtts = random_rtts(sc.n_tcp_flows, streams)
    mean_rtt = float(rtts.mean())
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps)
    cfg.buffer_pkts = max(4, int(cfg.bdp_packets(mean_rtt) * buffer_bdp_fraction))
    db = build_dumbbell(sim, cfg)

    senders: dict[int, NewRenoSender] = {}
    rtt_map: dict[int, float] = {}
    start_rng = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        pair = db.add_pair(rtt=float(rtt), name=f"tcp{i}")
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.5)))
        senders[fid] = snd
        rtt_map[fid] = float(rtt)

    # The CBR probe must stay thin relative to the bottleneck: 100 B every
    # probe_interval is 0.8 Mbps at the 1 ms default — 4% of a fast-scale
    # 20 Mbps link, negligible per the paper's own validation argument.
    probe_pair = db.add_pair(rtt=mean_rtt, name="probe")
    probe = CbrSource(
        sim, probe_pair.left, _PROBE_FLOW, probe_pair.right.node_id,
        rate_bps=100 * 8 / probe_interval,  # 100 B per interval
        packet_size=100,
        jitter=0.0,
    )
    probe_sink = ProbeSink(sim, probe_pair.right, _PROBE_FLOW)
    probe.start(0.0)

    add_noise_fleet(sim, db, streams, sc.n_noise_flows, sc.noise_load)
    sim.run(until=sc.measure_duration)
    probe.stop()

    router_times = db.drop_trace.drop_times()
    # Exclude the probe's own drops from the "TCP" view but keep them in
    # ground truth (the router sees everything).
    tcp_estimates = reconstruct_losses_from_retransmissions(
        {fid: np.asarray(s.retx_times) for fid, s in senders.items()},
        rtt_map,
    )
    probe_losses = probe.lost_times(probe_sink.received_set())

    comparison = compare_methodologies(
        router_times, tcp_estimates, probe_losses, rtt=mean_rtt
    )
    return MethodologyResult(
        comparison=comparison,
        n_router_drops=len(router_times),
        n_tcp_estimates=len(tcp_estimates),
        n_probe_losses=len(probe_losses),
        mean_rtt=mean_rtt,
    )
