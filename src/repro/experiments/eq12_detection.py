"""Equations (1)/(2): loss-event detection, model vs. simulation.

The paper's ideal-case model (§4.1, Figures 5/6): when the bottleneck
drops ``M`` packets in one bursty loss event, ``L_rate = min(M, N)``
rate-based flows detect it but only ``L_win = max(M/K, 1)`` window-based
flows do (``K`` = packets a flow sends in that RTT), because window-based
traffic arrives in per-flow clumps while rate-based traffic is evenly
interleaved.

Empirical validation runs the *mixed* Figure 7 scenario — N window-based
(NewReno) and N rate-based (paced) flows sharing the bottleneck — clusters
the drop trace into loss events, and counts the distinct flows of each
class actually hit per event.  The measured rate/window detection ratio
must exceed 1 and track the model's prediction at the measured M and K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.detection import DetectionModel
from repro.core.events import distinct_flows_per_event, event_spans
from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.registry import create_sender
from repro.tcp.sink import TcpSink

__all__ = ["Eq12Result", "run_eq12", "analytic_table"]

_WINDOW_BASE = 100
_RATE_BASE = 200


@dataclass
class Eq12Result:
    """Per-event detection statistics from the mixed scenario."""

    n_flows_per_class: int
    n_events: int
    mean_event_size: float  # M over all drops
    k_packets_per_rtt: float  # K for the window class
    measured_window_hits: float  # distinct window flows hit per event
    measured_rate_hits: float  # distinct rate flows hit per event
    model_window_hits: float  # Eq (2) at measured class-M and K
    model_rate_hits: float  # Eq (1) at measured class-M

    @property
    def measured_ratio(self) -> float:
        """L_rate / L_win measured (paper: >> 1)."""
        if self.measured_window_hits <= 0:
            return float("nan")
        return self.measured_rate_hits / self.measured_window_hits

    @property
    def model_ratio(self) -> float:
        """Model-predicted L_rate / L_win at the measured M and K."""
        if self.model_window_hits <= 0:
            return float("nan")
        return self.model_rate_hits / self.model_window_hits

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [
            ["rate-based", self.n_flows_per_class,
             round(self.measured_rate_hits, 2), round(self.model_rate_hits, 2)],
            ["window-based", self.n_flows_per_class,
             round(self.measured_window_hits, 2), round(self.model_window_hits, 2)],
        ]
        head = format_table(
            ["class", "N", "measured L", "model L"],
            rows,
            title=(
                "Equations (1)/(2) — flows detecting each loss event "
                f"({self.n_events} events, mean M={self.mean_event_size:.1f}, "
                f"K={self.k_packets_per_rtt:.1f})"
            ),
        )
        return head + (
            f"\nL_rate/L_win: measured {self.measured_ratio:.2f}, "
            f"model {self.model_ratio:.2f} (paper: >> 1)"
        )


def run_eq12(
    seed: int = 1,
    scale: Optional[Scale] = None,
    rtt: float = 0.050,
    buffer_bdp_fraction: float = 1.0,
) -> Eq12Result:
    """Run the mixed competition and compare detection counts to the model."""
    sc = current_scale(scale)
    streams = RngStreams(seed)
    sim = Simulator()
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
    cfg.buffer_pkts = max(4, int(cfg.bdp_packets(rtt) * buffer_bdp_fraction))
    db = build_dumbbell(sim, cfg)
    n = sc.fig7_flows_per_class

    start_rng = streams.stream("starts")
    for i in range(n):
        pair = db.add_pair(rtt=rtt, name=f"win{i}")
        fid = _WINDOW_BASE + i
        snd = create_sender("newreno", sim, pair.left, fid, pair.right.node_id)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.1)))
    for i in range(n):
        pair = db.add_pair(rtt=rtt, name=f"rate{i}")
        fid = _RATE_BASE + i
        snd = create_sender("paced", sim, pair.left, fid, pair.right.node_id, rtt=rtt)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(start_rng.uniform(0.0, 0.1)))
    sim.run(until=sc.fig7_duration)

    trace = db.drop_trace
    # Vectorized per-event detection counts on the columnar trace: event
    # boundary indices once, then distinct (event, flow) pairs per class —
    # no Python loop over events.
    all_fids = trace.flow_ids
    spans = event_spans(trace.drop_times(), rtt)
    n_ev = len(spans) - 1
    sizes = np.diff(spans)
    win_mask = (all_fids >= _WINDOW_BASE) & (all_fids < _RATE_BASE)
    rate_mask = all_fids >= _RATE_BASE
    win_hits = distinct_flows_per_event(spans, all_fids, record_mask=win_mask)
    rate_hits = distinct_flows_per_event(spans, all_fids, record_mask=rate_mask)
    # Per-class drop counts, to evaluate the model at each class's own M.
    n_events = max(1, n_ev)
    m_win = float(np.sum(win_mask)) / n_events
    m_rate = float(np.sum(rate_mask)) / n_events

    # K: packets a window flow sends per RTT, from delivered throughput.
    delivered = db.forward_queue.dequeued
    k = max(1e-9, delivered / (2 * n) * rtt / sc.fig7_duration)
    model = DetectionModel(n=n, k=k)

    return Eq12Result(
        n_flows_per_class=n,
        n_events=n_ev,
        mean_event_size=float(sizes.mean()) if len(sizes) else float("nan"),
        k_packets_per_rtt=float(k),
        measured_window_hits=float(np.mean(win_hits)) if len(win_hits) else float("nan"),
        measured_rate_hits=float(np.mean(rate_hits)) if len(rate_hits) else float("nan"),
        # The paper's Eqs. (1)/(2) are uncapped ideals; when evaluating them
        # against a measured event we cap at N (no event can be detected by
        # more flows than exist), so huge events saturate both classes.
        model_window_hits=float(min(max(m_win / k, 1.0), n)),
        model_rate_hits=float(min(m_rate, n)),
    )


def analytic_table(
    ms: tuple[int, ...] = (1, 4, 16, 64),
    n: int = 16,
    k: float = 32.0,
) -> str:
    """Pure-model table of Eqs. (1)/(2) across event sizes."""
    from repro.core.detection import l_rate_based, l_window_based

    rows = [
        [m, l_rate_based(m, n), round(l_window_based(m, k), 2),
         round(l_rate_based(m, n) / l_window_based(m, k), 1)]
        for m in ms
    ]
    return format_table(
        ["M (drops)", f"L_rate (N={n})", f"L_win (K={k:g})", "ratio"],
        rows,
        title="Ideal-case detection model, Eqs. (1)-(2)",
    )
