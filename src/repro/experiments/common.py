"""Shared experiment scaffolding: scale profiles and scenario helpers.

Paper-scale scenarios (100 Mbps x 40-60 s x dozens of flows) generate
millions of packet events.  Every experiment driver therefore takes a
:class:`Scale`: the default ``FAST`` profile shrinks absolute parameters
while preserving the dimensionless shape (BDP in packets per flow, flow
counts ratios, RTT spread), and ``PAPER`` uses the paper's absolute
numbers.  Select via the ``REPRO_SCALE`` environment variable
(``fast`` | ``paper``) or pass a profile explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.obs import RunObservation, observe_run
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import Dumbbell
from repro.tcp.onoff import OnOffSource, noise_fleet_params
from repro.tcp.sink import UdpSink

__all__ = [
    "Scale",
    "FAST",
    "PAPER",
    "current_scale",
    "add_noise_fleet",
    "observe_experiment",
    "random_rtts",
]


@dataclass(frozen=True)
class Scale:
    """Absolute sizing of the paper's scenarios."""

    name: str
    # Figure 1 dumbbell.
    capacity_bps: float
    n_tcp_flows: int
    n_noise_flows: int
    noise_load: float  # fraction of capacity
    measure_duration: float  # Figures 2-3 trace length (seconds)
    # Figure 7 competition.
    fig7_capacity_bps: float
    fig7_flows_per_class: int
    fig7_duration: float
    # Figure 8 parallel transfer.
    fig8_capacity_bps: float
    fig8_total_bytes: int
    fig8_flow_counts: tuple[int, ...]
    fig8_rtts: tuple[float, ...]
    fig8_repetitions: int
    # Figure 4 campaign.
    campaign_experiments: int
    campaign_probe_duration: float
    # Many-flows convergence (fluid vs packet; see repro.experiments.manyflows).
    manyflows_ns: tuple[int, ...] = (100, 1000)
    manyflows_per_flow_bps: float = 800e3
    manyflows_duration: float = 5.0
    manyflows_dt: float = 0.004


FAST = Scale(
    name="fast",
    capacity_bps=20e6,
    n_tcp_flows=8,
    n_noise_flows=12,
    noise_load=0.10,
    measure_duration=15.0,
    fig7_capacity_bps=50e6,
    fig7_flows_per_class=8,
    fig7_duration=20.0,
    fig8_capacity_bps=20e6,
    fig8_total_bytes=8 * 2**20,
    fig8_flow_counts=(2, 4, 8, 16),
    fig8_rtts=(0.002, 0.010, 0.050, 0.200),
    fig8_repetitions=3,
    campaign_experiments=80,
    campaign_probe_duration=60.0,
    manyflows_ns=(100, 1000),
    manyflows_per_flow_bps=800e3,
    manyflows_duration=5.0,
    manyflows_dt=0.004,
)

PAPER = Scale(
    name="paper",
    capacity_bps=100e6,
    n_tcp_flows=16,
    n_noise_flows=50,
    noise_load=0.10,
    measure_duration=60.0,
    fig7_capacity_bps=100e6,
    fig7_flows_per_class=16,
    fig7_duration=40.0,
    fig8_capacity_bps=100e6,
    fig8_total_bytes=64 * 2**20,
    fig8_flow_counts=(2, 4, 8, 16, 32),
    fig8_rtts=(0.002, 0.010, 0.050, 0.200),
    fig8_repetitions=5,
    campaign_experiments=300,
    campaign_probe_duration=300.0,
    manyflows_ns=(100, 1000, 10000),
    manyflows_per_flow_bps=800e3,
    manyflows_duration=8.0,
    manyflows_dt=0.004,
)

_PROFILES = {"fast": FAST, "paper": PAPER}


def current_scale(override: Optional[Scale] = None) -> Scale:
    """Resolve the active scale: explicit override > $REPRO_SCALE > fast."""
    if override is not None:
        return override
    name = os.environ.get("REPRO_SCALE", "fast").lower()
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; expected one of {sorted(_PROFILES)}"
        ) from None


def observe_experiment(
    sim: Simulator,
    db: Optional[Dumbbell] = None,
    name: str = "run",
    flows: Iterable[tuple] = (),
    tracer=None,
    manifest: Optional[dict] = None,
) -> RunObservation:
    """Attach the observability layer to a figure-reproduction run.

    Resolves configuration from the environment (the ``repro`` CLI's
    ``--metrics-out`` / ``--check-invariants`` / ``--telemetry-out`` flags
    set it): when enabled, the run gets a metrics registry over the
    engine, bottleneck links, queues, and TCP flows, plus periodic
    packet-conservation checks; with telemetry armed it also gets
    flight-recorder samplers and writes a run directory at finalize.
    Drivers wrap their main ``sim.run`` in ``obs.profiled()`` and call
    ``obs.finalize(duration)`` after analysis, which performs the teardown
    invariant sweep and writes the metrics JSON next to the results.  When
    no observability is requested the returned handle is inert and free.

    ``tracer`` is the driver's :func:`repro.obs.maybe_tracer` span tracer
    (``None`` when tracing is off); ``manifest`` seeds the run manifest
    (seed, scale, parameters) written with the flight record.
    """
    return observe_run(
        sim, db=db, name=name, flows=flows, tracer=tracer, manifest=manifest
    )


def random_rtts(n: int, streams: RngStreams, lo: float = 0.002, hi: float = 0.200) -> np.ndarray:
    """Per-flow RTTs uniform in [lo, hi] (paper §3.1: access latencies
    randomly distributed from 2 ms to 200 ms)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return streams.stream("rtts").uniform(lo, hi, size=n)


def add_noise_fleet(
    sim: Simulator,
    db: Dumbbell,
    streams: RngStreams,
    n_flows: int,
    load_fraction: float = 0.10,
    flow_id_base: int = 900_000,
) -> list[OnOffSource]:
    """Attach the paper's two-way exponential on-off noise (Figure 1).

    ``n_flows`` sources per direction, aggregate mean rate
    ``load_fraction * capacity`` per direction; each noise flow rides its
    own host pair with a random RTT.
    """
    if n_flows <= 0:
        return []
    params = noise_fleet_params(
        db.capacity_bps, n_flows=n_flows, load_fraction=load_fraction
    )
    rtt_rng = streams.stream("noise-rtts")
    sources: list[OnOffSource] = []
    for i in range(n_flows):
        pair = db.add_pair(rtt=float(rtt_rng.uniform(0.002, 0.200)), name=f"noise{i}")
        # Forward direction: left -> right.
        fid_f = flow_id_base + 2 * i
        src_f = OnOffSource(
            sim, pair.left, fid_f, pair.right.node_id,
            rng=streams.stream(f"noise/{i}/fwd"), **params,
        )
        UdpSink(sim, pair.right, fid_f)
        # Reverse direction: right -> left.
        fid_r = flow_id_base + 2 * i + 1
        src_r = OnOffSource(
            sim, pair.right, fid_r, pair.left.node_id,
            rng=streams.stream(f"noise/{i}/rev"), **params,
        )
        UdpSink(sim, pair.left, fid_r)
        src_f.start(0.0)
        src_r.start(0.0)
        sources.extend((src_f, src_r))
    return sources
