"""Table 1: the PlanetLab measurement sites.

Regenerates the paper's site inventory from :mod:`repro.internet.sites`,
with the synthetic mesh statistics (path count, RTT range) appended so the
table doubles as a sanity report on the Internet substitute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import format_table
from repro.internet.paths import build_rtt_matrix
from repro.internet.sites import SITES, n_directed_paths

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """The reproduced Table 1 plus mesh statistics."""

    n_sites: int
    n_paths: int
    rtt_min: float
    rtt_max: float

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [[s.hostname, s.location, s.region.value] for s in SITES]
        table = format_table(["Node", "Location", "Region"], rows,
                             title="Table 1 — PlanetLab sites in measurement")
        return table + (
            f"\nsites: {self.n_sites}; directed paths: {self.n_paths}; "
            f"synthetic RTT range: {self.rtt_min * 1e3:.1f}-{self.rtt_max * 1e3:.1f} ms"
        )


def run_table1(seed: int = 2006) -> Table1Result:
    """Build the site table and mesh statistics."""
    matrix = build_rtt_matrix(seed)
    lo, hi = matrix.rtt_range()
    return Table1Result(
        n_sites=len(SITES),
        n_paths=n_directed_paths(),
        rtt_min=lo,
        rtt_max=hi,
    )
