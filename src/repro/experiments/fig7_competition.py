"""Figure 7: aggregate throughput of TCP Pacing vs TCP NewReno.

16 paced flows and 16 NewReno flows share a 100 Mbps / 50 ms-RTT path.
Both classes run identical window/loss-reaction logic; only the sub-RTT
emission pattern differs.  The paper reports the paced aggregate ending
up ~17% below NewReno's — the bursty loss process penalizes the class
whose packets are spread evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.report import format_series
from repro.experiments.common import Scale, current_scale, observe_experiment
from repro.obs.spans import maybe_tracer, span
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import ThroughputTrace
from repro.tcp.registry import create_sender
from repro.tcp.sink import TcpSink

__all__ = ["Fig7Result", "run_fig7"]

GROUP_NEWRENO = 0
GROUP_PACING = 1


@dataclass
class Fig7Result:
    """Reproduced Figure 7: two aggregate-throughput time series."""

    times: np.ndarray  # bin centers (seconds)
    newreno_mbps: np.ndarray
    pacing_mbps: np.ndarray
    mean_newreno_mbps: float
    mean_pacing_mbps: float
    rtt: float
    capacity_bps: float
    duration: float

    @property
    def pacing_deficit(self) -> float:
        """Fractional throughput loss of the paced class (paper: ~0.17)."""
        if self.mean_newreno_mbps <= 0:
            return float("nan")
        return (self.mean_newreno_mbps - self.mean_pacing_mbps) / self.mean_newreno_mbps

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        head = (
            "Figure 7 — Aggregate throughput, TCP Pacing vs TCP NewReno\n"
            f"  capacity={self.capacity_bps / 1e6:.0f} Mbps rtt={self.rtt * 1e3:.0f} ms "
            f"duration={self.duration:.0f} s\n"
            f"  mean aggregate: NewReno {self.mean_newreno_mbps:.2f} Mbps, "
            f"Pacing {self.mean_pacing_mbps:.2f} Mbps "
            f"(pacing deficit {self.pacing_deficit * 100:.1f}%)"
        )
        series = format_series(
            self.times,
            np.round(self.newreno_mbps, 3),
            xlabel="t(s)",
            ylabel="newreno(Mbps)",
            every=max(1, len(self.times) // 20),
        )
        series2 = format_series(
            self.times,
            np.round(self.pacing_mbps, 3),
            xlabel="t(s)",
            ylabel="pacing(Mbps)",
            every=max(1, len(self.times) // 20),
        )
        return head + "\n" + series + "\n" + series2


def run_fig7(
    seed: int = 1,
    scale: Optional[Scale] = None,
    rtt: float = 0.050,
    buffer_bdp_fraction: float = 1.0,
    bin_width: float = 0.5,
) -> Fig7Result:
    """Run the Figure 7 competition and return both throughput series."""
    sc = current_scale(scale)
    streams = RngStreams(seed)
    sim = Simulator()
    tracer = maybe_tracer("fig7", sim=sim)

    with span(tracer, "setup", seed=seed, scale=sc.name):
        cfg = DumbbellConfig(bottleneck_rate_bps=sc.fig7_capacity_bps)
        cfg.buffer_pkts = max(4, int(cfg.bdp_packets(rtt) * buffer_bdp_fraction))
        db = build_dumbbell(sim, cfg)
        tp = ThroughputTrace(bin_width=bin_width)

        start_rng = streams.stream("starts")
        n = sc.fig7_flows_per_class
        flows = []
        # Senders resolve through the protocol registry; "newreno" and
        # "paced" are the paper's two Fig. 7 classes.
        for i in range(n):
            pair = db.add_pair(rtt=rtt, name=f"nr{i}")
            fid = 100 + i
            snd = create_sender("newreno", sim, pair.left, fid, pair.right.node_id)
            sink = TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
            tp.assign(fid, GROUP_NEWRENO)
            flows.append((snd, sink))
            snd.start(float(start_rng.uniform(0.0, 0.1)))
        for i in range(n):
            pair = db.add_pair(rtt=rtt, name=f"pc{i}")
            fid = 200 + i
            snd = create_sender(
                "paced", sim, pair.left, fid, pair.right.node_id, rtt=rtt
            )
            sink = TcpSink(sim, pair.right, fid, pair.left.node_id, throughput=tp)
            tp.assign(fid, GROUP_PACING)
            flows.append((snd, sink))
            snd.start(float(start_rng.uniform(0.0, 0.1)))

        obs = observe_experiment(
            sim, db=db, name="fig7", flows=flows, tracer=tracer,
            manifest={
                "seed": seed,
                "scale": sc.name,
                "rtt": rtt,
                "buffer_bdp_fraction": buffer_bdp_fraction,
                "flows_per_class": n,
            },
        )
    with span(tracer, "run", until=sc.fig7_duration), obs.profiled():
        sim.run(until=sc.fig7_duration)

    with span(tracer, "analyze"):
        t, nr = tp.series(GROUP_NEWRENO, until=sc.fig7_duration - 1e-9)
        _, pc = tp.series(GROUP_PACING, until=sc.fig7_duration - 1e-9)
    obs.finalize(duration=sc.fig7_duration)
    return Fig7Result(
        times=t,
        newreno_mbps=nr,
        pacing_mbps=pc,
        mean_newreno_mbps=tp.mean_mbps(GROUP_NEWRENO, sc.fig7_duration),
        mean_pacing_mbps=tp.mean_mbps(GROUP_PACING, sc.fig7_duration),
        rtt=rtt,
        capacity_bps=sc.fig7_capacity_bps,
        duration=sc.fig7_duration,
    )
