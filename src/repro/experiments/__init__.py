"""Experiment drivers — one per paper figure/table (see DESIGN.md §4).

Each ``run_*`` function builds its scenario from a :class:`Scale` profile
(``REPRO_SCALE=fast|paper``), runs it, and returns a result object with
the paper's headline numbers plus ``to_text()`` producing the same rows /
series the paper reports.
"""

from repro.experiments.common import FAST, PAPER, Scale, current_scale
from repro.experiments.eq12_detection import Eq12Result, analytic_table, run_eq12
from repro.experiments.fig2_ns2 import Fig2Result, run_fig2
from repro.experiments.fig3_dummynet import Fig3Result, run_fig3
from repro.experiments.fig4_planetlab import Fig4Result, run_fig4
from repro.experiments.fig7_competition import Fig7Result, run_fig7
from repro.experiments.fig8_parallel import Fig8Result, run_fig8, run_fig8_cell
from repro.experiments.manyflows import (
    ManyFlowsCell,
    ManyFlowsResult,
    ManyFlowsRow,
    run_manyflows,
    run_manyflows_fluid,
    run_manyflows_packet,
)
from repro.experiments.mapreduce_shuffle import MapReduceResult, run_mapreduce
from repro.experiments.methodology import MethodologyResult, run_methodology
from repro.experiments.parallel import default_workers, parallel_map
from repro.experiments.shortflows import ShortFlowResult, run_shortflows
from repro.experiments.table1_sites import Table1Result, run_table1
from repro.experiments.zoo_grid import (
    ZooCellResult,
    ZooGridResult,
    run_zoo,
    run_zoo_cell,
)

__all__ = [
    "FAST",
    "PAPER",
    "Eq12Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "ManyFlowsCell",
    "ManyFlowsResult",
    "ManyFlowsRow",
    "MapReduceResult",
    "MethodologyResult",
    "Scale",
    "ShortFlowResult",
    "Table1Result",
    "ZooCellResult",
    "ZooGridResult",
    "analytic_table",
    "current_scale",
    "default_workers",
    "parallel_map",
    "run_eq12",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_fig8_cell",
    "run_manyflows",
    "run_manyflows_fluid",
    "run_manyflows_packet",
    "run_mapreduce",
    "run_methodology",
    "run_shortflows",
    "run_table1",
    "run_zoo",
    "run_zoo_cell",
]
