"""Figure 2: PDF of inter-loss time at an NS-2-style simulated bottleneck.

Setup (paper §3.1, Figure 1): dumbbell with c = 100 Mbps, access-link
latencies uniform in 2–200 ms, window-based TCP flows plus 50 two-way
exponential on-off noise flows at 10% load; the router logs every drop.
Analysis: RTT-normalized inter-loss intervals, PDF at 0.02-RTT bins over
[0, 2] RTT, against a same-rate Poisson reference.

Paper observation to reproduce: **more than 95% of packet losses cluster
within periods smaller than 0.01 RTT**, far above the Poisson line at
small intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.burstiness import fraction_within
from repro.core.intervals import intervals_from_trace
from repro.core.pdf import IntervalPdf, interval_pdf, poisson_reference_pdf
from repro.core.poisson import PoissonComparison, compare_to_poisson
from repro.core.report import pdf_figure_text
from repro.experiments.common import (
    Scale,
    add_noise_fleet,
    current_scale,
    observe_experiment,
    random_rtts,
)
from repro.obs.spans import maybe_tracer, span
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Reproduced Figure 2 plus headline statistics."""

    pdf: IntervalPdf
    poisson: np.ndarray  # reference densities on pdf.edges
    frac_001: float  # fraction of intervals < 0.01 RTT
    frac_1: float
    comparison: PoissonComparison
    n_drops: int
    mean_rtt: float
    bottleneck_utilization: float

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        return pdf_figure_text(
            self.pdf,
            self.poisson,
            "Figure 2 — PDF of inter-loss time (NS-2-style simulation)",
            frac_001=self.frac_001,
            frac_1=self.frac_1,
        )


def run_fig2(
    seed: int = 1,
    scale: Optional[Scale] = None,
    buffer_bdp_fraction: float = 0.5,
    sender_cls=NewRenoSender,
) -> Fig2Result:
    """Run the Figure 2 scenario and analyze the drop trace.

    ``buffer_bdp_fraction`` positions the bottleneck buffer within the
    paper's 1/8–2 BDP sweep (BDP computed at the mean flow RTT).
    """
    if not (0 < buffer_bdp_fraction <= 4):
        raise ValueError(f"buffer fraction out of range: {buffer_bdp_fraction}")
    sc = current_scale(scale)
    streams = RngStreams(seed)
    sim = Simulator()
    tracer = maybe_tracer("fig2", sim=sim)

    with span(tracer, "setup", seed=seed, scale=sc.name):
        rtts = random_rtts(sc.n_tcp_flows, streams)
        mean_rtt = float(rtts.mean())
        cfg = DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps)
        buffer_pkts = max(4, int(cfg.bdp_packets(mean_rtt) * buffer_bdp_fraction))
        cfg.buffer_pkts = buffer_pkts
        db = build_dumbbell(sim, cfg)

        start_rng = streams.stream("starts")
        flows = []
        for i, rtt in enumerate(rtts):
            pair = db.add_pair(rtt=float(rtt), name=f"tcp{i}")
            fid = 100 + i
            snd = sender_cls(sim, pair.left, fid, pair.right.node_id, total_packets=None)
            sink = TcpSink(sim, pair.right, fid, pair.left.node_id)
            flows.append((snd, sink))
            snd.start(float(start_rng.uniform(0.0, 0.5)))

        add_noise_fleet(sim, db, streams, sc.n_noise_flows, sc.noise_load)
        obs = observe_experiment(
            sim, db=db, name="fig2", flows=flows, tracer=tracer,
            manifest={
                "seed": seed,
                "scale": sc.name,
                "buffer_bdp_fraction": buffer_bdp_fraction,
                "buffer_pkts": buffer_pkts,
                "sender": sender_cls.__name__,
                "mean_rtt": round(mean_rtt, 9),
            },
        )
    with span(tracer, "run", until=sc.measure_duration), obs.profiled():
        sim.run(until=sc.measure_duration)

    with span(tracer, "analyze"):
        drop_times = db.drop_trace.drop_times()
        intervals = intervals_from_trace(drop_times, mean_rtt)
        pdf = interval_pdf(intervals)
        poisson = poisson_reference_pdf(pdf.rate_per_rtt(), pdf.edges)
        result = Fig2Result(
            pdf=pdf,
            poisson=poisson,
            frac_001=fraction_within(intervals, 0.01),
            frac_1=fraction_within(intervals, 1.0),
            comparison=compare_to_poisson(intervals),
            n_drops=len(drop_times),
            mean_rtt=mean_rtt,
            bottleneck_utilization=db.bottleneck_fwd.utilization(sc.measure_duration),
        )
    obs.finalize(duration=sc.measure_duration)
    return result
