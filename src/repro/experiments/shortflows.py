"""Slow-start churn vs long-lived flows as burstiness sources (paper §3.3).

The paper names two sources of sub-RTT loss burstiness: the DropTail
discipline under long-lived congestion-avoidance flows, and the slow-start
overshoot of short flows ("even harder to be eliminated").  This driver
measures the drop-trace burstiness under each workload separately:

* **long-lived** — the Figure 2 population (persistent NewReno flows);
* **churn** — nothing but Poisson arrivals of short slow-start-dominated
  transfers.

Both must exhibit the sub-RTT clustering; the churn case shows that the
burstiness does not depend on long-lived sawtooth synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.churn import ChurnConfig, FlowChurn
from repro.core.burstiness import BurstinessSummary, burstiness_summary
from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale, random_rtts
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["ShortFlowResult", "run_shortflows"]


@dataclass
class ShortFlowResult:
    """Burstiness of the long-lived vs churn workloads."""
    longlived: BurstinessSummary
    churn: BurstinessSummary
    churn_flows_started: int
    churn_flows_completed: int

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [
            [label, s.n_losses, round(s.frac_within_001, 3), round(s.cv, 1),
             round(s.mean_burst_size, 1), s.max_burst_size]
            for label, s in (("long-lived", self.longlived), ("churn", self.churn))
        ]
        head = format_table(
            ["workload", "drops", "<0.01 RTT", "CV", "mean burst", "max burst"],
            rows,
            title="Loss burstiness by workload (paper §3.3 sources)",
        )
        return head + (
            f"\nchurn: {self.churn_flows_started} short flows started, "
            f"{self.churn_flows_completed} completed"
        )


def _long_lived(seed: int, sc: Scale) -> BurstinessSummary:
    streams = RngStreams(seed)
    sim = Simulator()
    rtts = random_rtts(sc.n_tcp_flows, streams)
    mean_rtt = float(rtts.mean())
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps)
    cfg.buffer_pkts = max(4, cfg.bdp_packets(mean_rtt) // 2)
    db = build_dumbbell(sim, cfg)
    starts = streams.stream("starts")
    for i, rtt in enumerate(rtts):
        pair = db.add_pair(rtt=float(rtt))
        fid = 100 + i
        snd = NewRenoSender(sim, pair.left, fid, pair.right.node_id)
        TcpSink(sim, pair.right, fid, pair.left.node_id)
        snd.start(float(starts.uniform(0.0, 0.5)))
    sim.run(until=sc.measure_duration)
    return burstiness_summary(db.drop_trace.drop_times(), mean_rtt)


def _churn(seed: int, sc: Scale) -> tuple[BurstinessSummary, FlowChurn]:
    streams = RngStreams(seed + 1)
    sim = Simulator()
    mean_rtt = 0.101  # midpoint of the 2-200ms range
    cfg = DumbbellConfig(bottleneck_rate_bps=sc.capacity_bps)
    cfg.buffer_pkts = max(4, cfg.bdp_packets(mean_rtt) // 2)
    db = build_dumbbell(sim, cfg)
    # Offered load ~ arrival_rate * mean_size; pick ~1.2x capacity so slow
    # starts keep colliding.
    pkts_per_sec = sc.capacity_bps / 8.0 / cfg.packet_size
    churn_cfg = ChurnConfig(arrival_rate=1.2 * pkts_per_sec / 60.0,
                            mean_flow_packets=60.0)
    churn = FlowChurn(sim, db, streams, churn_cfg)
    churn.start(0.0)
    sim.run(until=sc.measure_duration)
    churn.stop()
    return burstiness_summary(db.drop_trace.drop_times(), mean_rtt), churn


def run_shortflows(seed: int = 1, scale: Optional[Scale] = None) -> ShortFlowResult:
    """Measure drop-trace burstiness under both §3.3 workloads."""
    sc = current_scale(scale)
    longlived = _long_lived(seed, sc)
    churn_summary, churn = _churn(seed, sc)
    return ShortFlowResult(
        longlived=longlived,
        churn=churn_summary,
        churn_flows_started=churn.flows_started,
        churn_flows_completed=churn.flows_completed,
    )
