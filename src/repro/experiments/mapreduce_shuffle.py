"""MapReduce shuffle predictability (paper future work + §5 lesson).

The paper's §5 advises: in a tightly controlled environment, "a rate-based
implementation has an advantage in that it makes TCP more fair, and leads
to better predictability of throughput for concurrent flows."  Its future
work proposes testing this on "a complete graph topology in MapReduce".

This driver runs the same M x R shuffle under window-based (NewReno) and
rate-based (paced) senders across several seeds and compares the
*distributions* of shuffle makespan: the rate-based shuffle should show
visibly lower run-to-run variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.mapreduce import MapReduceShuffle, ShuffleConfig
from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale
from repro.faults import Result, on_error_from_env
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.tcp.newreno import NewRenoSender
from repro.tcp.pacing import PacedSender

__all__ = ["ShuffleClassStats", "MapReduceResult", "run_mapreduce"]


@dataclass
class ShuffleClassStats:
    """Makespan statistics of one sender class across seeds."""

    label: str
    latencies: np.ndarray  # normalized makespans
    spreads: np.ndarray  # straggler spreads (seconds)

    @property
    def mean(self) -> float:
        """Mean normalized makespan across seeds."""
        return float(self.latencies.mean())

    @property
    def std(self) -> float:
        """Standard deviation of the normalized makespan across seeds."""
        return float(self.latencies.std())

    @property
    def worst(self) -> float:
        """Worst (largest) normalized makespan observed."""
        return float(self.latencies.max())

    @property
    def mean_spread(self) -> float:
        """Mean straggler spread: slowest minus fastest reducer completion
        within a shuffle — the §5 fairness/predictability metric."""
        return float(self.spreads.mean())


@dataclass
class MapReduceResult:
    """Window-based vs rate-based shuffle statistics.

    ``failures`` lists seeds that died permanently under a skip/retry
    policy as ``(class label, seed, error)``; the class statistics then
    aggregate the surviving seeds only.
    """

    window: ShuffleClassStats
    rate: ShuffleClassStats
    config: ShuffleConfig
    failures: list = None  # list[(label, seed, error_text)]

    def __post_init__(self):
        if self.failures is None:
            self.failures = []

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [
            [c.label, round(c.mean, 3), round(c.std, 4), round(c.worst, 3),
             round(float(c.spreads.mean()), 4)]
            for c in (self.window, self.rate)
        ]
        head = format_table(
            ["sender class", "mean latency", "std", "worst", "straggler spread(s)"],
            rows,
            title=(
                f"MapReduce shuffle ({self.config.n_mappers}x"
                f"{self.config.n_reducers}, "
                f"{self.config.bytes_per_partition / 2**20:.2g} MB/partition) — "
                "normalized makespan across seeds"
            ),
        )
        ratio = (
            self.window.mean_spread / self.rate.mean_spread
            if self.rate.mean_spread > 0
            else float("inf")
        )
        text = head + (
            f"\nstraggler spread (window/rate ratio): {ratio:.1f}x "
            "(paper §5: rate-based is fairer across concurrent flows)"
        )
        if self.failures:
            lost = ", ".join(
                f"{label} seed {seed}: {err}" for label, seed, err in self.failures
            )
            text += (
                f"\nDEGRADED: {len(self.failures)} shuffle run(s) failed and "
                f"were excluded: {lost}"
            )
        return text


def _shuffle_worker(job: tuple) -> tuple[float, float]:
    """Picklable worker: one seeded shuffle -> (latency, spread)."""
    seed, cfg = job
    sim = Simulator()
    shuffle = MapReduceShuffle(sim, cfg, streams=RngStreams(seed))
    res = shuffle.run(horizon=600.0)
    return res.normalized_latency, res.straggler_spread


def _run_class(
    sender_cls,
    seeds,
    cfg: ShuffleConfig,
    workers=None,
    on_error: str = "raise",
    failures: Optional[list] = None,
) -> ShuffleClassStats:
    """All seeds of one sender class, optionally fanned over processes.

    Each seeded run is an independent job, so parallel results match the
    serial ones exactly; permanently failed seeds are appended to
    ``failures`` and excluded from the statistics.
    """
    from repro.experiments.parallel import parallel_map

    jobs = [(seed, cfg) for seed in seeds]
    out = parallel_map(_shuffle_worker, jobs, workers=workers, on_error=on_error)
    lats, spreads = [], []
    for res in out:
        if isinstance(res, Result):
            if not res.ok:
                if failures is not None:
                    failures.append(
                        (sender_cls.variant, seeds[res.index], res.error_text)
                    )
                continue
            lat, spread = res.value
        else:  # raise mode returns raw values (legacy contract)
            lat, spread = res
        lats.append(lat)
        spreads.append(spread)
    return ShuffleClassStats(
        label=sender_cls.variant,
        latencies=np.asarray(lats),
        spreads=np.asarray(spreads),
    )


def run_mapreduce(
    seed: int = 1,
    scale: Optional[Scale] = None,
    n_seeds: int = 5,
    workers: Optional[int] = None,
    on_error: Optional[str] = None,
) -> MapReduceResult:
    """Run the shuffle comparison at the active scale.

    ``workers`` fans seeded runs over a process pool (``None``: the
    ``REPRO_WORKERS`` environment variable, then serial) with results
    identical to serial execution; ``on_error`` (default:
    ``REPRO_ON_ERROR``, then ``"raise"``) selects the resilience policy.
    """
    sc = current_scale(scale)
    if on_error is None:
        on_error = on_error_from_env()
    # Shuffle sizing follows the scale's Figure 8 budget.  Partitions must
    # be long enough that congestion-avoidance dynamics (not slow-start
    # quantization) set the reducer skew: half the per-reducer share at
    # fast scale, the full share at paper scale, with a buffer deep enough
    # for the larger paper-scale incast.
    n = 4 if sc.name == "fast" else 8
    divisor = n * n * 2 if sc.name == "fast" else n * n
    per_partition = max(128 * 1024, sc.fig8_total_bytes // divisor)
    buffer_pkts = 32 if sc.name == "fast" else 64
    cfg_window = ShuffleConfig(
        n_mappers=n, n_reducers=n, bytes_per_partition=per_partition,
        sender_cls=NewRenoSender,
        downlink_rate_bps=sc.fig8_capacity_bps, buffer_pkts=buffer_pkts,
    )
    cfg_rate = ShuffleConfig(
        n_mappers=n, n_reducers=n, bytes_per_partition=per_partition,
        sender_cls=PacedSender,
        downlink_rate_bps=sc.fig8_capacity_bps, buffer_pkts=buffer_pkts,
    )
    seeds = [seed * 100 + i for i in range(n_seeds)]
    failures: list = []
    return MapReduceResult(
        window=_run_class(
            NewRenoSender, seeds, cfg_window,
            workers=workers, on_error=on_error, failures=failures,
        ),
        rate=_run_class(
            PacedSender, seeds, cfg_rate,
            workers=workers, on_error=on_error, failures=failures,
        ),
        config=cfg_window,
        failures=failures,
    )
