"""MapReduce shuffle predictability (paper future work + §5 lesson).

The paper's §5 advises: in a tightly controlled environment, "a rate-based
implementation has an advantage in that it makes TCP more fair, and leads
to better predictability of throughput for concurrent flows."  Its future
work proposes testing this on "a complete graph topology in MapReduce".

This driver runs the same M x R shuffle under window-based (NewReno) and
rate-based (paced) senders across several seeds and compares the
*distributions* of shuffle makespan: the rate-based shuffle should show
visibly lower run-to-run variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.mapreduce import MapReduceShuffle, ShuffleConfig
from repro.core.report import format_table
from repro.experiments.common import Scale, current_scale
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.tcp.newreno import NewRenoSender
from repro.tcp.pacing import PacedSender

__all__ = ["ShuffleClassStats", "MapReduceResult", "run_mapreduce"]


@dataclass
class ShuffleClassStats:
    """Makespan statistics of one sender class across seeds."""

    label: str
    latencies: np.ndarray  # normalized makespans
    spreads: np.ndarray  # straggler spreads (seconds)

    @property
    def mean(self) -> float:
        """Mean normalized makespan across seeds."""
        return float(self.latencies.mean())

    @property
    def std(self) -> float:
        """Standard deviation of the normalized makespan across seeds."""
        return float(self.latencies.std())

    @property
    def worst(self) -> float:
        """Worst (largest) normalized makespan observed."""
        return float(self.latencies.max())

    @property
    def mean_spread(self) -> float:
        """Mean straggler spread: slowest minus fastest reducer completion
        within a shuffle — the §5 fairness/predictability metric."""
        return float(self.spreads.mean())


@dataclass
class MapReduceResult:
    """Window-based vs rate-based shuffle statistics."""
    window: ShuffleClassStats
    rate: ShuffleClassStats
    config: ShuffleConfig

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        rows = [
            [c.label, round(c.mean, 3), round(c.std, 4), round(c.worst, 3),
             round(float(c.spreads.mean()), 4)]
            for c in (self.window, self.rate)
        ]
        head = format_table(
            ["sender class", "mean latency", "std", "worst", "straggler spread(s)"],
            rows,
            title=(
                f"MapReduce shuffle ({self.config.n_mappers}x"
                f"{self.config.n_reducers}, "
                f"{self.config.bytes_per_partition / 2**20:.2g} MB/partition) — "
                "normalized makespan across seeds"
            ),
        )
        ratio = (
            self.window.mean_spread / self.rate.mean_spread
            if self.rate.mean_spread > 0
            else float("inf")
        )
        return head + (
            f"\nstraggler spread (window/rate ratio): {ratio:.1f}x "
            "(paper §5: rate-based is fairer across concurrent flows)"
        )


def _run_class(sender_cls, seeds, cfg: ShuffleConfig) -> ShuffleClassStats:
    lats, spreads = [], []
    for seed in seeds:
        sim = Simulator()
        shuffle = MapReduceShuffle(sim, cfg, streams=RngStreams(seed))
        res = shuffle.run(horizon=600.0)
        lats.append(res.normalized_latency)
        spreads.append(res.straggler_spread)
    return ShuffleClassStats(
        label=sender_cls.variant,
        latencies=np.asarray(lats),
        spreads=np.asarray(spreads),
    )


def run_mapreduce(
    seed: int = 1,
    scale: Optional[Scale] = None,
    n_seeds: int = 5,
) -> MapReduceResult:
    """Run the shuffle comparison at the active scale."""
    sc = current_scale(scale)
    # Shuffle sizing follows the scale's Figure 8 budget.  Partitions must
    # be long enough that congestion-avoidance dynamics (not slow-start
    # quantization) set the reducer skew: half the per-reducer share at
    # fast scale, the full share at paper scale, with a buffer deep enough
    # for the larger paper-scale incast.
    n = 4 if sc.name == "fast" else 8
    divisor = n * n * 2 if sc.name == "fast" else n * n
    per_partition = max(128 * 1024, sc.fig8_total_bytes // divisor)
    buffer_pkts = 32 if sc.name == "fast" else 64
    cfg_window = ShuffleConfig(
        n_mappers=n, n_reducers=n, bytes_per_partition=per_partition,
        sender_cls=NewRenoSender,
        downlink_rate_bps=sc.fig8_capacity_bps, buffer_pkts=buffer_pkts,
    )
    cfg_rate = ShuffleConfig(
        n_mappers=n, n_reducers=n, bytes_per_partition=per_partition,
        sender_cls=PacedSender,
        downlink_rate_bps=sc.fig8_capacity_bps, buffer_pkts=buffer_pkts,
    )
    seeds = [seed * 100 + i for i in range(n_seeds)]
    return MapReduceResult(
        window=_run_class(NewRenoSender, seeds, cfg_window),
        rate=_run_class(PacedSender, seeds, cfg_rate),
        config=cfg_window,
    )
