"""CBR probe runs and the paper's two-packet-size validation.

Methodology reproduced from §3.1: for each experiment, two 5-minute CBR
runs probe the same path — one with 48-byte packets, one with 400-byte
packets — and the measurement is kept only if the two traces exhibit
similar loss patterns (showing the probe load itself is not the cause of
the losses).  Loss timestamps come from the deterministic CBR send
schedule; intervals are normalized by the path RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.intervals import intervals_from_trace
from repro.internet.pathmodel import PathLossModel
from repro.internet.paths import PathRtt

__all__ = ["ProbeRun", "ProbeConfig", "run_probe", "validate_pair"]

#: The paper's two probe packet sizes (bytes).
PROBE_SIZES = (48, 400)


@dataclass
class ProbeConfig:
    """Probe-flow parameters.

    ``interval`` is the CBR inter-packet gap.  The paper does not state the
    probe rate; we default to 1 ms (384 kbps at 48 B, 3.2 Mbps at 400 B),
    fine enough to resolve sub-RTT clustering on long paths while keeping
    the load negligible relative to 2006 backbone capacities — the
    assumption the 48 B/400 B validation pair then tests.
    """

    interval: float = 0.001
    duration: float = 300.0  # the paper's 5-minute runs
    jitter: float = 0.05  # OS send-timing noise (fraction of interval)

    def __post_init__(self):
        if self.interval <= 0 or self.duration <= 0:
            raise ValueError("interval and duration must be positive")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")


@dataclass
class ProbeRun:
    """Result of one CBR probe run over one path."""

    path: PathRtt
    packet_size: int
    n_sent: int
    loss_times: np.ndarray  # seconds, send times of lost probes
    rtt: float  # path RTT used for normalization

    @property
    def n_lost(self) -> int:
        """Number of probes lost in this run."""
        return len(self.loss_times)

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost."""
        return self.n_lost / self.n_sent if self.n_sent else float("nan")

    def intervals_rtt(self) -> np.ndarray:
        """RTT-normalized inter-loss intervals."""
        return intervals_from_trace(self.loss_times, self.rtt)


def run_probe(
    path: PathRtt,
    model: PathLossModel,
    rng: np.random.Generator,
    config: Optional[ProbeConfig] = None,
    packet_size: int = 400,
    episodes: Optional[tuple[np.ndarray, np.ndarray]] = None,
    mask_hook: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
) -> ProbeRun:
    """Execute one CBR probe run against a path's loss model.

    ``mask_hook(times, lost) -> lost`` post-processes the loss mask before
    loss timestamps are extracted — the seam fault plans use to fold path
    outages and loss spikes into a run (:mod:`repro.faults`).
    """
    cfg = config or ProbeConfig()
    n = int(cfg.duration / cfg.interval)
    times = np.arange(n) * cfg.interval
    if cfg.jitter > 0:
        times = times + cfg.interval * cfg.jitter * (rng.random(n) - 0.5)
        times = np.maximum.accumulate(np.maximum(times, 0.0))  # keep ordered
    lost = model.lost_mask(times, rng, episodes=episodes)
    if mask_hook is not None:
        lost = mask_hook(times, lost)
    return ProbeRun(
        path=path,
        packet_size=packet_size,
        n_sent=n,
        loss_times=times[lost],
        rtt=path.base_rtt,
    )


def validate_pair(
    small: ProbeRun, large: ProbeRun, rel_tolerance: float = 0.5, min_losses: int = 10
) -> bool:
    """The paper's acceptance check: the 48 B and 400 B traces must
    "exhibit similar loss patterns".

    Accepts when both runs saw at least ``min_losses`` losses and their
    loss rates agree within ``rel_tolerance`` (relative to the mean).  If
    the larger probe lost dramatically more, the probe load itself was
    shaping the path and the measurement is discarded.

    The pair must actually be ordered (small, large): passing the 400 B
    run first is a harness bug, not a measurement to validate, and raises
    ``ValueError``.  (Equal sizes are tolerated — two same-size runs are a
    legitimate, if unusual, similarity check.)
    """
    if small.packet_size > large.packet_size:
        raise ValueError(
            f"validate_pair expects (small, large) probe runs, got sizes "
            f"({small.packet_size}, {large.packet_size})"
        )
    if small.n_lost < min_losses or large.n_lost < min_losses:
        return False
    a, b = small.loss_rate, large.loss_rate
    mean = 0.5 * (a + b)
    if mean == 0:
        return False
    return abs(a - b) / mean <= rel_tolerance
