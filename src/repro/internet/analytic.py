"""Analytic CBR probe fast path for the campaign inner loop.

:func:`~repro.internet.probe.run_probe` is already vectorized, but the
campaign pays for far more than the mask math: per path it constructs
three ``SeedSequence``/``Generator`` stacks, a ``PathRtt``, a
``PathLossModel``, two fresh jitter/uniform arrays, two ``ProbeRun``
objects, and extracts loss timestamps even for the ~3/4 of paths the
48 B/400 B validation will reject.  This module collapses all of that
into a fused kernel built on the observation the ISSUE borrows from
Lautenschlaeger's deterministic model: a CBR probe's send schedule is
*arithmetic*, so everything downstream of it can be computed
arithmetically too, and deferred until someone actually needs it.

Bit-exactness is the contract — the fast path must be indistinguishable
from the event-free reference (``run_probe``) and, transitively, from
the event-driven :class:`~repro.internet.simpath.LossyLink` simulation
(see ``tests/internet/test_analytic.py``).  Every transformation below
preserves the exact float and RNG-stream semantics of the code it
replaces:

* stream states come from :class:`~repro.sim.rng.FastStreams`
  (bit-identical to ``RngStreams`` by construction, pinned by fuzz
  tests), batch-derived per chunk of paths;
* scalar ``rng.uniform(lo, hi)`` draws become ``lo + (hi-lo) *
  rng.random()`` — the exact expression the Generator computes
  internally, fuzz-pinned bit-identical;
* the jittered send grid ``base + c*(r-0.5)`` is built *in place* in the
  jitter-draw buffer (ufunc-for-ufunc the same roundings), and the
  ``maximum.accumulate`` re-sort is skipped when ``jitter < 1``
  guarantees monotonicity (only index 0 can clamp to zero);
* the episode mask is applied per episode window via ``searchsorted``
  slices — the same mask as ``lost_mask``'s last-start-wins indexing,
  including overlapping and duplicate episode starts;
* zero-size RNG requests (``uniform``/``exponential`` with ``size=0``)
  consume no generator state, so the episode-free common case skips them
  — and skips building the send grid entirely, because a probe run with
  no episodes needs only ``u < random_loss_prob``.

Loss *timestamps* are only materialized for paths that pass validation
(the shard reducer needs nothing else); the campaign worker, which
returns full :class:`~repro.internet.probe.ProbeRun` records, asks for
them explicitly.

Set ``REPRO_ANALYTIC_PROBE=0`` to route everything through the legacy
per-path object path; fault-injected runs (mask hooks, skew) always do.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

from repro.internet.paths import _BASE_RTT
from repro.internet.probe import PROBE_SIZES, ProbeConfig, ProbeRun, validate_pair
from repro.sim.rng import FastStreams

__all__ = [
    "ProbeKernel",
    "analytic_probe_enabled",
    "run_experiment_fast",
    "run_shard_fast",
]

#: Stream-state batch size (paths per chunk): big enough to amortize the
#: vectorized SeedSequence mixing, small enough that per-shard memory
#: stays constant (the supervisor's tracemalloc invariant).
_CHUNK = 512

_EMPTY = np.empty(0, dtype=np.float64)

# sample_path_loss_model's calibrated defaults and validate_pair's
# acceptance thresholds, inlined for the hot loop (pinned against the
# functions' signatures in tests/internet/test_analytic.py so they
# cannot drift silently).
_EPISODE_RATE_MEAN = 0.3
_DROP_P_LO, _DROP_P_RANGE = 0.6, 0.95 - 0.6
_RAND_P_LOG_LO = np.log(3e-5)
_RAND_P_LOG_RANGE = np.log(4e-4) - np.log(3e-5)
_DURATION_RTT_FRACTION = 0.025
_DURATION_FLOOR = 2.5e-3
_MIN_LOSSES = 10
_REL_TOLERANCE = 0.5

_TWO_PI = 2.0 * np.pi

# (region, region) -> base RTT, both orders: the tuple lookup replaces
# synthesize_path's per-path frozenset allocation.
_BASE_RTT_PAIR = {}
for _fs, _v in _BASE_RTT.items():
    _a, _b = tuple(_fs) if len(_fs) == 2 else (next(iter(_fs)),) * 2
    _BASE_RTT_PAIR[(_a, _b)] = _v
    _BASE_RTT_PAIR[(_b, _a)] = _v


def analytic_probe_enabled() -> bool:
    """The ``REPRO_ANALYTIC_PROBE`` knob (default on)."""
    return os.environ.get("REPRO_ANALYTIC_PROBE", "1") != "0"


class _Counts:
    """Loss-count view of a probe run, shaped for ``validate_pair``.

    The acceptance rule reads only sizes and counts, so the fast path can
    run it without materializing loss timestamps.
    """

    __slots__ = ("packet_size", "n_sent", "n_lost")

    def __init__(self, packet_size: int, n_sent: int, n_lost: int):
        self.packet_size = packet_size
        self.n_sent = n_sent
        self.n_lost = n_lost

    @property
    def loss_rate(self) -> float:
        return self.n_lost / self.n_sent if self.n_sent else float("nan")


class ProbeKernel:
    """Fused 48 B/400 B probe-pair evaluation against one path's weather.

    Holds preallocated per-run buffers (jitter + loss-uniform draws in
    one block per run, masks) sized for one :class:`ProbeConfig`, so a
    shard's whole path loop allocates nothing per path on the common
    no-loss-extracted route.  Single-threaded by design — one kernel per
    worker.
    """

    def __init__(self, config: Optional[ProbeConfig] = None):
        cfg = config or ProbeConfig()
        self.cfg = cfg
        self.n = n = int(cfg.duration / cfg.interval)
        self.interval = cfg.interval
        self.jitter = cfg.jitter
        #: jitter amplitude: times = base + c * (r - 0.5)
        self._c = cfg.interval * cfg.jitter
        #: the unjittered arithmetic send grid
        self.base = np.arange(n) * cfg.interval
        # With jitter < 1 the jittered grid is strictly increasing (gap
        # >= interval*(1-jitter) minus float noise ~ eps*duration), so
        # run_probe's maximum.accumulate is the identity except that
        # index 0 may clamp to zero.  The margin check keeps the skip
        # honest for extreme configs; callers fall back to run_probe
        # when it fails.
        self.monotone = cfg.jitter == 0.0 or (
            cfg.interval * (1.0 - cfg.jitter) > cfg.duration * 4e-16
        )
        # One 2n block per run: the jitter draws land in [:n], the loss
        # uniforms in [n:], exactly the stream order of run_probe's two
        # separate requests.
        self._block = [np.empty(2 * n), np.empty(2 * n)]
        self._r = [b[:n] for b in self._block]
        self._u = [b[n:] for b in self._block]
        self._lost = [np.empty(n, dtype=bool), np.empty(n, dtype=bool)]
        self._times: list[Optional[np.ndarray]] = [None, None]
        self.counts = [0, 0]

    # ------------------------------------------------------------------
    def _run_one(self, slot: int, rng: np.random.Generator,
                 starts: np.ndarray, durations: np.ndarray,
                 drop_p: float, rand_p: float) -> int:
        u = self._u[slot]
        lost = self._lost[slot]
        n_ep = len(starts)
        if n_ep == 0:
            # No weather: the mask is one compare, and the send grid is
            # never needed unless this path validates.
            if self.jitter > 0.0:
                rng.random(out=self._block[slot])
            else:
                rng.random(out=u)
            np.less(u, rand_p, out=lost)
            self._times[slot] = None
        else:
            if self.jitter > 0.0:
                rng.random(out=self._block[slot])
            else:
                rng.random(out=u)
            times = self._build_times(slot)
            np.less(u, rand_p, out=lost)
            ss = times.searchsorted
            for j in range(n_ep):
                s = starts[j]
                e = s + durations[j]
                if j + 1 < n_ep and starts[j + 1] < e:
                    # lost_mask indexes by *last* start <= t, so an
                    # episode's effective window is clipped by its
                    # successor's start.
                    e = starts[j + 1]
                a = ss(s)
                b = ss(e)
                if b > a:
                    np.less(u[a:b], drop_p, out=lost[a:b])
        count = int(np.count_nonzero(lost))
        self.counts[slot] = count
        return count

    def _build_times(self, slot: int) -> np.ndarray:
        """Realize the (jittered) send grid for ``slot``, in place."""
        if self.jitter == 0.0:
            times = self.base
        else:
            times = self._r[slot]  # holds the raw jitter draws
            np.subtract(times, 0.5, out=times)
            np.multiply(times, self._c, out=times)
            np.add(times, self.base, out=times)
            if self.n and times[0] < 0.0:
                times[0] = 0.0
        self._times[slot] = times
        return times

    def run_pair(self, rng: np.random.Generator,
                 episodes: tuple[np.ndarray, np.ndarray],
                 drop_p: float, rand_p: float) -> tuple[int, int]:
        """Evaluate both probe runs (48 B then 400 B) of one experiment.

        Consumes ``rng`` exactly as two back-to-back ``run_probe`` calls
        would; returns the two loss counts.
        """
        starts, durations = episodes
        return (
            self._run_one(0, rng, starts, durations, drop_p, rand_p),
            self._run_one(1, rng, starts, durations, drop_p, rand_p),
        )

    def validate(self) -> bool:
        """The paper's 48 B/400 B acceptance rule on the latest pair."""
        return validate_pair(
            _Counts(PROBE_SIZES[0], self.n, self.counts[0]),
            _Counts(PROBE_SIZES[1], self.n, self.counts[1]),
        )

    def loss_times(self, slot: int) -> np.ndarray:
        """Send timestamps of the probes lost in run ``slot`` (0=48 B)."""
        times = self._times[slot]
        if times is None:
            times = self._build_times(slot)
        return times[self._lost[slot]]


def sample_model_params(rng: np.random.Generator, base_rtt: float) -> tuple[float, float, float, float]:
    """``sample_path_loss_model``'s draws, without the object: returns
    ``(episode_rate, episode_mean_duration, episode_drop_prob,
    random_loss_prob)`` consuming ``rng`` identically."""
    rate = float(_EPISODE_RATE_MEAN * rng.lognormal(mean=0.0, sigma=0.8))
    drop_p = _DROP_P_LO + _DROP_P_RANGE * rng.random()
    rand_p = float(np.exp(_RAND_P_LOG_LO + _RAND_P_LOG_RANGE * rng.random()))
    mean_dur = max(_DURATION_FLOOR, _DURATION_RTT_FRACTION * base_rtt)
    return rate, mean_dur, drop_p, rand_p


def sample_episodes_fast(rng: np.random.Generator, rate: float,
                         mean_duration: float, horizon: float) -> tuple[np.ndarray, np.ndarray]:
    """``PathLossModel.sample_episodes`` minus the zero-size draws.

    ``Generator.uniform``/``exponential`` with ``size=0`` consume no
    state, so the episode-free case can skip them (and the sort)
    entirely while staying on the same stream positions.
    """
    n = int(rng.poisson(rate * horizon))
    if n == 0:
        return _EMPTY, _EMPTY
    starts = rng.uniform(0.0, horizon, size=n)
    if n > 1:
        starts = np.sort(starts)
    durations = rng.exponential(mean_duration, size=n)
    return starts, durations


def _rtt_at(base_rtt: float, amplitude: float, phase: float, t: float) -> float:
    """``PathRtt.rtt_at`` on bare floats (same numpy scalar roundings)."""
    swing = 1.0 + amplitude * np.sin(_TWO_PI * t / 86_400.0 + phase)
    return base_rtt * float(swing)


# Per-worker caches: the supervisor runs many shards of the same
# campaign per process, and the bench runs several back to back — the
# mesh, the kernel buffers, and the stream deriver are all reusable.
# One entry each (replaced on a key change): bounded memory by design.
_MESH_CACHE: dict = {}
_KERNEL_CACHE: dict = {}
_STREAMS_CACHE: dict = {}


def _cached(cache: dict, key, build):
    hit = cache.get(key)
    if hit is None:
        cache.clear()
        hit = cache[key] = build()
    return hit


def run_experiment_fast(seed: int, cfg: ProbeConfig, path, index: int,
                        started_at: float):
    """Fault-free campaign experiment on the fused kernel.

    The analytic twin of ``campaign._experiment_worker``'s measurement
    half: same ``loss/<src>/<dst>`` and ``exp/<index>`` streams, same
    draws, same floats — but one reseeded generator, preallocated
    buffers, and no intermediate model object.  Unlike the shard path
    it always materializes both runs' loss timestamps, because the
    campaign record keeps them for invalid pairs too.

    Returns ``(small, large, valid)`` with real :class:`ProbeRun`
    objects, or ``None`` when the config defeats the kernel's
    monotone-jitter shortcut (callers fall back to the object path).
    """
    kernel = _cached(
        _KERNEL_CACHE, (cfg.interval, cfg.duration, cfg.jitter),
        lambda: ProbeKernel(cfg),
    )
    if not kernel.monotone:  # pragma: no cover - extreme-jitter configs
        return None
    fs = _cached(_STREAMS_CACHE, seed, lambda: FastStreams(seed))

    rng = fs.stream(f"loss/{path.src.hostname}/{path.dst.hostname}")
    rate, mean_dur, drop_p, rand_p = sample_model_params(rng, path.base_rtt)
    rng = fs.stream(f"exp/{index}")
    episodes = sample_episodes_fast(rng, rate, mean_dur, cfg.duration * 1.01)
    kernel.run_pair(rng, episodes, drop_p, rand_p)
    rtt_now = path.rtt_at(started_at)
    small = ProbeRun(
        path=path, packet_size=PROBE_SIZES[0], n_sent=kernel.n,
        loss_times=kernel.loss_times(0), rtt=rtt_now,
    )
    large = ProbeRun(
        path=path, packet_size=PROBE_SIZES[1], n_sent=kernel.n,
        loss_times=kernel.loss_times(1), rtt=rtt_now,
    )
    return small, large, validate_pair(small, large)


def run_shard_fast(spec, probe_config: Optional[ProbeConfig] = None,
                   heartbeat: Optional[Callable[[int], None]] = None):
    """Fault-free ``run_shard``, fused: one kernel, chunk-batched stream
    derivation, loss timestamps only for validated paths.

    Bit-identical to the legacy loop (same streams, same draws, same
    floats), it just never builds the per-path ``RngStreams``/``PathRtt``
    /``PathLossModel``/``ProbeRun`` object stack.
    """
    from repro.internet.shards import (
        CAMPAIGN_SPAN_SECONDS, GapHistogram, ShardResult, SyntheticMesh,
    )
    from repro.core.intervals import intervals_from_trace

    cfg = probe_config or ProbeConfig()
    kernel = _cached(
        _KERNEL_CACHE, (cfg.interval, cfg.duration, cfg.jitter),
        lambda: ProbeKernel(cfg),
    )
    if not kernel.monotone:  # pragma: no cover - extreme-jitter configs
        from repro.internet.shards import run_shard
        return run_shard(spec, probe_config=cfg, heartbeat=heartbeat)

    mesh = _cached(
        _MESH_CACHE, (spec.n_sites, spec.seed),
        lambda: SyntheticMesh(spec.n_sites, seed=spec.seed),
    )
    sites = mesh.sites
    hostnames = [s.hostname for s in sites]
    regions = [s.region for s in sites]
    min_rtt = mesh.min_rtt
    n_paths_total = mesh.n_paths
    n_dst = len(sites) - 1
    horizon = cfg.duration * 1.01
    fs = _cached(_STREAMS_CACHE, spec.seed, lambda: FastStreams(spec.seed))
    hist = GapHistogram()
    fold = hist.fold
    n_valid = 0
    n_rejected = 0
    n = kernel.n
    run_one = kernel._run_one
    use = fs.use128

    done = 0
    for chunk_start in range(spec.start, spec.stop, _CHUNK):
        chunk = range(chunk_start, min(chunk_start + _CHUNK, spec.stop))
        pairs = []
        names = []
        for k in chunk:
            i, r = divmod(k, n_dst)  # SyntheticMesh.pair_of, inlined
            j = r if r < i else r + 1
            pairs.append((i, j))
            src, dst = hostnames[i], hostnames[j]
            names.append(f"rtt/{src}/{dst}")
            names.append(f"loss/{src}/{dst}")
            names.append(f"shard-exp/{k}")
        words = fs.states128_for(names)

        for ci, k in enumerate(chunk):
            i, j = pairs[ci]

            # synthesize_path's draws (rtt/<src>/<dst> stream)
            rng = use(words, 3 * ci)
            base = _BASE_RTT_PAIR[(regions[i], regions[j])]
            jit = float(rng.lognormal(mean=0.0, sigma=0.35))
            base_rtt = max(min_rtt, base * jit)
            amplitude = 0.15 * rng.random()
            phase = _TWO_PI * rng.random()

            # sample_path_loss_model's draws (loss/<src>/<dst> stream)
            rng = use(words, 3 * ci + 1)
            rate, mean_dur, drop_p, rand_p = sample_model_params(rng, base_rtt)

            # the experiment stream: episodes, then both probe runs
            rng = use(words, 3 * ci + 2)
            starts, durations = sample_episodes_fast(rng, rate, mean_dur, horizon)
            c_small = run_one(0, rng, starts, durations, drop_p, rand_p)

            # validate_pair, inlined (thresholds pinned by tests).  When
            # the 48 B run already fails the min-losses bar the pair is
            # rejected whatever the 400 B run counts, and since the
            # shard-exp stream is single-use, its draws can be skipped
            # outright — the common case at short probe durations.
            if c_small >= _MIN_LOSSES:
                c_large = run_one(1, rng, starts, durations, drop_p, rand_p)
                if c_large >= _MIN_LOSSES:
                    a = c_small / n
                    b = c_large / n
                    mean = 0.5 * (a + b)
                    valid = mean != 0 and abs(a - b) / mean <= _REL_TOLERANCE
                else:
                    valid = False
            else:
                valid = False
            if valid:
                n_valid += 1
                started_at = CAMPAIGN_SPAN_SECONDS * ((k + 0.5) / n_paths_total)
                rtt_now = _rtt_at(base_rtt, amplitude, phase, started_at)
                fold(intervals_from_trace(kernel.loss_times(0), rtt_now))
                fold(intervals_from_trace(kernel.loss_times(1), rtt_now))
            else:
                n_rejected += 1
            done += 1
            if heartbeat is not None:
                heartbeat(done)

    return ShardResult(
        spec=spec,
        histogram=hist,
        n_experiments=spec.n_paths,
        n_valid=n_valid,
        n_rejected=n_rejected,
        injected={},
    )
