"""PlanetLab-equivalent Internet measurement substrate (paper §3.1, Figure 4).

We cannot probe the 2006 Internet; this package substitutes a synthetic
mesh that follows the paper's methodology exactly — 26 sites (Table 1,
:mod:`repro.internet.sites`), 650 directed paths with seeded RTTs and
diurnal variation (:mod:`repro.internet.paths`), per-path two-timescale
bursty loss models (:mod:`repro.internet.pathmodel`), 48 B / 400 B CBR
probe pairs with the similarity validation rule
(:mod:`repro.internet.probe`), and random-pair campaign orchestration
(:mod:`repro.internet.campaign`).
"""

from repro.internet.campaign import Campaign, CampaignResult, Experiment
from repro.internet.pathmodel import PathLossModel, sample_path_loss_model
from repro.internet.paths import PathRtt, RttMatrix, build_rtt_matrix
from repro.internet.probe import (
    PROBE_SIZES,
    ProbeConfig,
    ProbeRun,
    run_probe,
    validate_pair,
)
from repro.internet.simpath import LossyLink, build_sim_path
from repro.internet.sites import SITES, Region, Site, n_directed_paths, sites, sites_by_region

__all__ = [
    "Campaign",
    "CampaignResult",
    "Experiment",
    "LossyLink",
    "PROBE_SIZES",
    "PathLossModel",
    "PathRtt",
    "ProbeConfig",
    "ProbeRun",
    "Region",
    "RttMatrix",
    "SITES",
    "Site",
    "build_rtt_matrix",
    "build_sim_path",
    "n_directed_paths",
    "run_probe",
    "sample_path_loss_model",
    "sites",
    "sites_by_region",
    "validate_pair",
]
