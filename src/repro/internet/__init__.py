"""PlanetLab-equivalent Internet measurement substrate (paper §3.1, Figure 4).

We cannot probe the 2006 Internet; this package substitutes a synthetic
mesh that follows the paper's methodology exactly — 26 sites (Table 1,
:mod:`repro.internet.sites`), 650 directed paths with seeded RTTs and
diurnal variation (:mod:`repro.internet.paths`), per-path two-timescale
bursty loss models (:mod:`repro.internet.pathmodel`), 48 B / 400 B CBR
probe pairs with the similarity validation rule
(:mod:`repro.internet.probe`), and random-pair campaign orchestration
(:mod:`repro.internet.campaign`).

Beyond the paper's scale, :mod:`repro.internet.shards` partitions the
O(sites²) path matrix of an arbitrarily large synthetic mesh into
deterministic shard jobs reduced by a constant-memory streaming
histogram, and :mod:`repro.internet.supervisor` runs those shards under
a crash-tolerant supervising parent (heartbeats, retry with backoff,
poison-shard quarantine, byte-identical resume).
"""

from repro.internet.campaign import Campaign, CampaignResult, Experiment
from repro.internet.pathmodel import PathLossModel, sample_path_loss_model
from repro.internet.paths import PathRtt, RttMatrix, build_rtt_matrix, synthesize_path
from repro.internet.shards import (
    GapHistogram,
    ShardResult,
    ShardSpec,
    SyntheticMesh,
    plan_shards,
    reduce_shards,
    run_shard,
)
from repro.internet.supervisor import (
    CampaignSupervisor,
    ShardedCampaignResult,
    SupervisorConfig,
    run_sharded_campaign,
)
from repro.internet.probe import (
    PROBE_SIZES,
    ProbeConfig,
    ProbeRun,
    run_probe,
    validate_pair,
)
from repro.internet.simpath import LossyLink, build_sim_path
from repro.internet.sites import (
    SITES,
    Region,
    Site,
    n_directed_paths,
    sites,
    sites_by_region,
    synthetic_sites,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignSupervisor",
    "Experiment",
    "GapHistogram",
    "LossyLink",
    "PROBE_SIZES",
    "PathLossModel",
    "PathRtt",
    "ProbeConfig",
    "ProbeRun",
    "Region",
    "RttMatrix",
    "SITES",
    "ShardResult",
    "ShardSpec",
    "ShardedCampaignResult",
    "Site",
    "SupervisorConfig",
    "SyntheticMesh",
    "build_rtt_matrix",
    "build_sim_path",
    "n_directed_paths",
    "plan_shards",
    "reduce_shards",
    "run_probe",
    "run_shard",
    "run_sharded_campaign",
    "sample_path_loss_model",
    "sites",
    "sites_by_region",
    "synthesize_path",
    "synthetic_sites",
    "validate_pair",
]
