"""PlanetLab measurement sites (paper Table 1).

The paper's Internet measurements span 26 PlanetLab sites: 6 in
California, 11 elsewhere in the United States, 3 in Canada, and the rest
in Asia, Europe, and South America — 650 directed paths in the complete
graph.  The registry below reproduces Table 1 verbatim and adds a coarse
geographic region used by the synthetic RTT model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Region",
    "Site",
    "SITES",
    "sites",
    "n_directed_paths",
    "sites_by_region",
    "synthetic_sites",
]


class Region(enum.Enum):
    """Coarse geography for RTT synthesis."""

    CALIFORNIA = "california"
    US_WEST = "us-west"
    US_CENTRAL = "us-central"
    US_EAST = "us-east"
    CANADA = "canada"
    EUROPE = "europe"
    MIDDLE_EAST = "middle-east"
    ASIA = "asia"
    SOUTH_AMERICA = "south-america"


@dataclass(frozen=True)
class Site:
    """One PlanetLab node."""

    hostname: str
    location: str
    region: Region


#: Table 1, in paper order.
SITES: tuple[Site, ...] = (
    Site("planetlab2.cs.ucla.edu", "Los Angeles, CA", Region.CALIFORNIA),
    Site("planetlab2.postel.org", "Marina Del Rey, CA", Region.CALIFORNIA),
    Site("planet2.cs.ucsb.edu", "Santa Barbara, CA", Region.CALIFORNIA),
    Site("planetlab11.millennium.berkeley.edu", "Berkeley, CA", Region.CALIFORNIA),
    Site("planetlab1.nycm.internet2.planet-lab.org", "Marina del Rey, CA", Region.CALIFORNIA),
    Site("planetlab2.kscy.internet2.planet-lab.org", "Marina del Rey, CA", Region.CALIFORNIA),
    Site("planetlab3.cs.uoregon.edu", "Eugene, OR", Region.US_WEST),
    Site("planetlab1.cs.ubc.ca", "Vancouver, Canada", Region.CANADA),
    Site("kupl1.ittc.ku.edu", "Lawrence, KS", Region.US_CENTRAL),
    Site("planetlab2.cs.uiuc.edu", "Urbana, IL", Region.US_CENTRAL),
    Site("planetlab2.tamu.edu", "College Station, TX", Region.US_CENTRAL),
    Site("planet.cc.gt.atl.ga.us", "Atlanta, GA", Region.US_EAST),
    Site("planetlab2.uc.edu", "Cincinnati, Ohio", Region.US_EAST),
    Site("planetlab-2.eecs.cwru.edu", "Cleveland, OH", Region.US_EAST),
    Site("planetlab1.cs.duke.edu", "Durham, NC", Region.US_EAST),
    Site("planetlab-10.cs.princeton.edu", "Princeton, NJ", Region.US_EAST),
    Site("planetlab1.cs.cornell.edu", "Ithaca, NY", Region.US_EAST),
    Site("planetlab2.isi.jhu.edu", "Baltimore, MD", Region.US_EAST),
    Site("crt3.planetlab.umontreal.ca", "Montreal, Canada", Region.CANADA),
    Site("planet2.toronto.canet4.nodes.planet-lab.org", "Toronto, Canada", Region.CANADA),
    Site("planet1.cs.huji.ac.il", "Jerusalem, Israel", Region.MIDDLE_EAST),
    Site("thu1.6planetlab.edu.cn", "Beijing, China", Region.ASIA),
    Site("lzu1.6planetlab.edu.cn", "Lanzhou, China", Region.ASIA),
    Site("planetlab2.iis.sinica.edu.tw", "Taipei, China", Region.ASIA),
    Site("planetlab1.cesnet.cz", "Czech", Region.EUROPE),
    Site("planetlab1.larc.usp.br", "Brazil", Region.SOUTH_AMERICA),
)


def sites() -> tuple[Site, ...]:
    """All 26 sites, paper order."""
    return SITES


def n_directed_paths() -> int:
    """Directed edges in the complete site graph: 26 * 25 = 650."""
    n = len(SITES)
    return n * (n - 1)


def sites_by_region(region: Region) -> list[Site]:
    """All sites located in the given region."""
    return [s for s in SITES if s.region == region]


#: Region mix for synthetic sites beyond Table 1, in paper proportion
#: (California-heavy US, then international) — cycled deterministically.
_SYNTH_REGION_CYCLE: tuple[Region, ...] = (
    Region.CALIFORNIA,
    Region.US_EAST,
    Region.EUROPE,
    Region.US_CENTRAL,
    Region.ASIA,
    Region.US_EAST,
    Region.CANADA,
    Region.US_WEST,
    Region.CALIFORNIA,
    Region.SOUTH_AMERICA,
    Region.US_EAST,
    Region.MIDDLE_EAST,
    Region.US_CENTRAL,
)


def synthetic_sites(n: int) -> tuple[Site, ...]:
    """A deterministic registry of ``n`` measurement sites.

    The first 26 are Table 1 verbatim; the rest are synthetic hosts
    (``synth-0026.us-east.repro.net``, ...) with regions assigned from a
    fixed cycle so every region keeps growing in roughly the paper's mix.
    Purely positional — no RNG — so site ``k`` is identical regardless of
    how many sites the campaign asks for, and a shard worker can rebuild
    the registry from ``n`` alone.  This is what lets the 26-site paper
    mesh scale to the ~1M directed paths the ROADMAP asks for
    (``n=1000`` -> 999 000 paths) without a hand-written registry.
    """
    if n < 1:
        raise ValueError(f"need at least one site, got {n}")
    if n <= len(SITES):
        return SITES[:n]
    extra = []
    for k in range(len(SITES), n):
        region = _SYNTH_REGION_CYCLE[k % len(_SYNTH_REGION_CYCLE)]
        extra.append(
            Site(
                hostname=f"synth-{k:04d}.{region.value}.repro.net",
                location=f"Synthetic site {k}",
                region=region,
            )
        )
    return SITES + tuple(extra)
