"""Synthetic path RTT model for the PlanetLab substitute.

The paper reports path RTTs "from 2ms to more than 300ms, depending on the
time of the day."  We synthesize a deterministic (seeded) RTT matrix from
coarse region geography — base latencies per region pair plus per-path
jitter — and a diurnal multiplier, so every path's RTT is plausible,
reproducible, and time-varying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.internet.sites import SITES, Region, Site
from repro.sim.rng import RngStreams

__all__ = ["PathRtt", "RttMatrix", "build_rtt_matrix", "synthesize_path"]

# One-way "distance class" per region pair: base RTT in seconds for a path
# between regions.  Symmetric; same-region pairs use the diagonal.
_BASE_RTT: dict[frozenset, float] = {}


def _set_base(a: Region, b: Region, ms: float) -> None:
    _BASE_RTT[frozenset((a, b))] = ms / 1e3


# Intra-region.
_set_base(Region.CALIFORNIA, Region.CALIFORNIA, 6)
_set_base(Region.US_WEST, Region.US_WEST, 8)
_set_base(Region.US_CENTRAL, Region.US_CENTRAL, 15)
_set_base(Region.US_EAST, Region.US_EAST, 12)
_set_base(Region.CANADA, Region.CANADA, 20)
_set_base(Region.EUROPE, Region.EUROPE, 15)
_set_base(Region.MIDDLE_EAST, Region.MIDDLE_EAST, 10)
_set_base(Region.ASIA, Region.ASIA, 40)
_set_base(Region.SOUTH_AMERICA, Region.SOUTH_AMERICA, 15)
# Continental US and neighbours.
_set_base(Region.CALIFORNIA, Region.US_WEST, 20)
_set_base(Region.CALIFORNIA, Region.US_CENTRAL, 45)
_set_base(Region.CALIFORNIA, Region.US_EAST, 75)
_set_base(Region.US_WEST, Region.US_CENTRAL, 40)
_set_base(Region.US_WEST, Region.US_EAST, 70)
_set_base(Region.US_CENTRAL, Region.US_EAST, 35)
_set_base(Region.CANADA, Region.CALIFORNIA, 60)
_set_base(Region.CANADA, Region.US_WEST, 35)
_set_base(Region.CANADA, Region.US_CENTRAL, 40)
_set_base(Region.CANADA, Region.US_EAST, 25)
# Transatlantic / transpacific / long-haul.
_set_base(Region.EUROPE, Region.US_EAST, 100)
_set_base(Region.EUROPE, Region.US_CENTRAL, 120)
_set_base(Region.EUROPE, Region.US_WEST, 150)
_set_base(Region.EUROPE, Region.CALIFORNIA, 160)
_set_base(Region.EUROPE, Region.CANADA, 105)
_set_base(Region.MIDDLE_EAST, Region.EUROPE, 70)
_set_base(Region.MIDDLE_EAST, Region.US_EAST, 140)
_set_base(Region.MIDDLE_EAST, Region.US_CENTRAL, 160)
_set_base(Region.MIDDLE_EAST, Region.US_WEST, 180)
_set_base(Region.MIDDLE_EAST, Region.CALIFORNIA, 190)
_set_base(Region.MIDDLE_EAST, Region.CANADA, 145)
_set_base(Region.MIDDLE_EAST, Region.ASIA, 180)
_set_base(Region.MIDDLE_EAST, Region.SOUTH_AMERICA, 240)
_set_base(Region.ASIA, Region.CALIFORNIA, 150)
_set_base(Region.ASIA, Region.US_WEST, 160)
_set_base(Region.ASIA, Region.US_CENTRAL, 190)
_set_base(Region.ASIA, Region.US_EAST, 220)
_set_base(Region.ASIA, Region.CANADA, 180)
_set_base(Region.ASIA, Region.EUROPE, 250)
_set_base(Region.ASIA, Region.SOUTH_AMERICA, 300)
_set_base(Region.SOUTH_AMERICA, Region.US_EAST, 130)
_set_base(Region.SOUTH_AMERICA, Region.US_CENTRAL, 150)
_set_base(Region.SOUTH_AMERICA, Region.US_WEST, 170)
_set_base(Region.SOUTH_AMERICA, Region.CALIFORNIA, 175)
_set_base(Region.SOUTH_AMERICA, Region.CANADA, 140)
_set_base(Region.SOUTH_AMERICA, Region.EUROPE, 200)


@dataclass(frozen=True)
class PathRtt:
    """RTT model of one directed path: base value + diurnal swing."""

    src: Site
    dst: Site
    base_rtt: float  # seconds
    diurnal_amplitude: float  # fraction of base (0..)
    diurnal_phase: float  # radians

    def rtt_at(self, t_seconds: float) -> float:
        """RTT at absolute time ``t_seconds`` (diurnal period 24 h)."""
        swing = 1.0 + self.diurnal_amplitude * np.sin(
            2.0 * np.pi * t_seconds / 86_400.0 + self.diurnal_phase
        )
        return self.base_rtt * float(swing)


def synthesize_path(
    streams: RngStreams, src: Site, dst: Site, min_rtt: float = 0.002
) -> PathRtt:
    """Derive one directed path's RTT model from its endpoint names.

    Every draw comes from the per-path stream ``rtt/<src>/<dst>``, so a
    path's model depends only on ``(seed, src, dst)`` — a sharded campaign
    can rebuild any single path without materializing the whole matrix,
    and :class:`RttMatrix` gets the exact same values eagerly.
    """
    rng = streams.stream(f"rtt/{src.hostname}/{dst.hostname}")
    base = _BASE_RTT[frozenset((src.region, dst.region))]
    # Per-path lognormal jitter around the region base: local
    # pairs can be a couple of ms, long-haul can exceed 300 ms.
    jitter = float(rng.lognormal(mean=0.0, sigma=0.35))
    rtt = max(min_rtt, base * jitter)
    return PathRtt(
        src=src,
        dst=dst,
        base_rtt=rtt,
        diurnal_amplitude=float(rng.uniform(0.0, 0.15)),
        diurnal_phase=float(rng.uniform(0.0, 2.0 * np.pi)),
    )


class RttMatrix:
    """All 650 directed paths with deterministic, seeded RTTs."""

    def __init__(self, streams: Optional[RngStreams] = None, min_rtt: float = 0.002):
        streams = streams or RngStreams(2006)
        self.min_rtt = float(min_rtt)
        self._paths: dict[tuple[str, str], PathRtt] = {}
        for src in SITES:
            for dst in SITES:
                if src is dst:
                    continue
                self._paths[(src.hostname, dst.hostname)] = synthesize_path(
                    streams, src, dst, min_rtt=self.min_rtt
                )

    def path(self, src: Site | str, dst: Site | str) -> PathRtt:
        """Look up one directed path by endpoint sites or hostnames."""
        s = src.hostname if isinstance(src, Site) else src
        d = dst.hostname if isinstance(dst, Site) else dst
        try:
            return self._paths[(s, d)]
        except KeyError:
            raise KeyError(f"no path {s} -> {d}") from None

    def all_paths(self) -> list[PathRtt]:
        """Every directed path in the matrix."""
        return list(self._paths.values())

    def __len__(self) -> int:
        return len(self._paths)

    def rtt_range(self) -> tuple[float, float]:
        """(min, max) base RTT across the matrix."""
        vals = [p.base_rtt for p in self._paths.values()]
        return min(vals), max(vals)


def build_rtt_matrix(seed: int = 2006) -> RttMatrix:
    """Convenience: seeded 650-path matrix."""
    return RttMatrix(RngStreams(seed))
