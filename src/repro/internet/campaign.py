"""Measurement campaign orchestration (paper §3.1, Internet leg).

"From October 2006 to December 2006, we periodically initiate constant bit
rate (CBR) flows between two randomly picked sites": the campaign picks
random directed site pairs, runs the 48 B / 400 B probe pair against the
path's loss model (same congestion episodes for both runs), applies the
validation rule, and pools RTT-normalized loss intervals across validated
experiments — the dataset behind Figure 4.

The campaign is built for the *lossy reality* of such a measurement
process.  Each experiment is a self-contained job whose randomness is
re-derived from ``(seed, path name, index)``, so:

* experiments fan out over worker processes
  (:func:`repro.experiments.parallel.parallel_map`) with results
  bit-identical to a serial run;
* failures (real or injected by a :class:`repro.faults.FaultPlan`) are
  retried, or recorded as :class:`ExperimentFailure` and *skipped* — the
  surviving cells still form a valid, explicitly degraded dataset;
* completed experiments stream into a JSON-lines
  :class:`~repro.faults.Checkpoint`, so an interrupted campaign resumes
  exactly where it stopped and finishes bit-identical to an uninterrupted
  run with the same seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.faults.checkpoint import Checkpoint
from repro.faults.plan import FaultPlan
from repro.faults.resilient import Result, RetryPolicy
from repro.internet.analytic import analytic_probe_enabled, run_experiment_fast
from repro.internet.pathmodel import PathLossModel, sample_path_loss_model
from repro.internet.paths import PathRtt, RttMatrix
from repro.internet.probe import PROBE_SIZES, ProbeConfig, ProbeRun, run_probe, validate_pair
from repro.internet.sites import SITES
from repro.sim.rng import RngStreams

__all__ = ["Experiment", "ExperimentFailure", "CampaignResult", "Campaign"]


@dataclass
class Experiment:
    """One validated (or rejected) path measurement."""

    path: PathRtt
    small: ProbeRun
    large: ProbeRun
    valid: bool
    #: Campaign-clock start time in seconds (paper: experiments spread
    #: periodically over October-December 2006).  The path's diurnal RTT at
    #: this time is what the runs were normalized with.
    started_at: float = 0.0

    def intervals_rtt(self) -> np.ndarray:
        """Pooled RTT-normalized intervals of both runs (validated use)."""
        return np.concatenate((self.small.intervals_rtt(), self.large.intervals_rtt()))


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment that never produced data (crashed/timed out/skipped)."""

    index: int
    error: str
    attempts: int = 1


@dataclass
class CampaignResult:
    """Aggregated campaign output.

    ``experiments`` holds every cell that produced data; cells that failed
    permanently are accounted in ``failures`` — graceful degradation, not
    silent truncation.  ``meta`` carries provenance (fault plan, retries,
    resume counts) and is deliberately excluded from :meth:`fingerprint`.
    """

    experiments: list[Experiment] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def n_valid(self) -> int:
        """Experiments that passed the 48B/400B validation."""
        return sum(1 for e in self.experiments if e.valid)

    @property
    def n_rejected(self) -> int:
        """Experiments discarded by the validation rule."""
        return len(self.experiments) - self.n_valid

    @property
    def degraded(self) -> bool:
        """True when any experiment failed and was excluded."""
        return bool(self.failures)

    def all_intervals_rtt(self) -> np.ndarray:
        """RTT-normalized loss intervals pooled over validated experiments
        (the Figure 4 dataset)."""
        parts = [e.intervals_rtt() for e in self.experiments if e.valid]
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    def paths_measured(self) -> set[tuple[str, str]]:
        """Distinct (src, dst) hostname pairs with validated data."""
        return {
            (e.path.src.hostname, e.path.dst.hostname)
            for e in self.experiments
            if e.valid
        }

    def mean_loss_rate(self) -> float:
        """Mean per-packet loss rate over validated experiments."""
        rates = [
            0.5 * (e.small.loss_rate + e.large.loss_rate)
            for e in self.experiments
            if e.valid
        ]
        return float(np.mean(rates)) if rates else float("nan")

    def fingerprint(self) -> str:
        """SHA-256 over the measurement content (experiments + failures).

        Provenance ``meta`` is excluded on purpose: a resumed run carries
        different bookkeeping but must fingerprint identically to an
        uninterrupted run with the same seed.
        """
        payload = {
            "experiments": [_experiment_to_record(e, i)
                            for i, e in enumerate(self.experiments)],
            "failures": [
                {"index": f.index, "error": f.error, "attempts": f.attempts}
                for f in self.failures
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Experiment <-> checkpoint-record serialization.  Records are plain JSON
# (floats round-trip exactly via repr), so a resumed campaign rebuilds
# experiments bit-identical to the run that wrote them.

def _probe_run_to_record(run: ProbeRun) -> dict:
    return {
        "packet_size": int(run.packet_size),
        "n_sent": int(run.n_sent),
        "rtt": float(run.rtt),
        "loss_times": np.asarray(run.loss_times, dtype=np.float64).tolist(),
    }


def _experiment_to_record(e: Experiment, index: int) -> dict:
    return {
        "index": int(index),
        "src": e.path.src.hostname,
        "dst": e.path.dst.hostname,
        "started_at": float(e.started_at),
        "valid": bool(e.valid),
        "runs": [_probe_run_to_record(e.small), _probe_run_to_record(e.large)],
    }


def _experiment_from_record(record: dict, matrix: RttMatrix) -> Experiment:
    path = matrix.path(record["src"], record["dst"])
    runs = [
        ProbeRun(
            path=path,
            packet_size=int(r["packet_size"]),
            n_sent=int(r["n_sent"]),
            loss_times=np.asarray(r["loss_times"], dtype=np.float64),
            rtt=float(r["rtt"]),
        )
        for r in record["runs"]
    ]
    return Experiment(
        path=path, small=runs[0], large=runs[1],
        valid=bool(record["valid"]), started_at=float(record["started_at"]),
    )


def _experiment_worker(job: tuple, attempt: int = 1) -> dict:
    """One campaign experiment as a self-contained, picklable job.

    Every random draw re-derives from the campaign seed and the job's own
    names (``loss/<src>/<dst>``, ``exp/<index>``), so the worker produces
    the exact record a serial run would — regardless of process
    scheduling, retries, or resumption.
    """
    seed, cfg, path, index, started_at, plan = job
    if plan is not None:
        plan.crash_check(index, attempt)
    elif analytic_probe_enabled():
        fast = run_experiment_fast(seed, cfg, path, index, started_at)
        if fast is not None:
            small, large, valid = fast
            exp = Experiment(
                path=path, small=small, large=large,
                valid=valid, started_at=started_at,
            )
            return _experiment_to_record(exp, index)
    streams = RngStreams(seed)
    model = sample_path_loss_model(path, streams)
    rng = streams.stream(f"exp/{index}")
    horizon = cfg.duration * 1.01
    episodes = model.sample_episodes(horizon, rng)
    rtt_now = path.rtt_at(started_at)
    injected_before = dict(plan.injected) if plan is not None else {}
    mask_hook = None
    if plan is not None and (plan.flaps or plan.spikes):
        def mask_hook(times, lost, _index=index, _t0=started_at):
            return plan.apply_probe_faults(times, lost, _t0, _index)
    small = run_probe(
        path, model, rng, cfg, packet_size=PROBE_SIZES[0],
        episodes=episodes, mask_hook=mask_hook,
    )
    large = run_probe(
        path, model, rng, cfg, packet_size=PROBE_SIZES[1],
        episodes=episodes, mask_hook=mask_hook,
    )
    small.rtt = rtt_now
    large.rtt = rtt_now
    if plan is not None and plan.skew is not None:
        small.loss_times = plan.skew_times(small.loss_times)
        large.loss_times = plan.skew_times(large.loss_times)
    exp = Experiment(
        path=path, small=small, large=large,
        valid=validate_pair(small, large), started_at=started_at,
    )
    record = _experiment_to_record(exp, index)
    if plan is not None:
        record["injected"] = {
            k: v - injected_before.get(k, 0)
            for k, v in plan.injected.items()
            if v - injected_before.get(k, 0) > 0
        }
    return record


class Campaign:
    """Random-pair CBR measurement campaign over the 26-site mesh."""

    def __init__(
        self,
        seed: int = 2006,
        probe_config: Optional[ProbeConfig] = None,
        rtt_matrix: Optional[RttMatrix] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.streams = RngStreams(seed)
        self.matrix = rtt_matrix if rtt_matrix is not None else RttMatrix(self.streams)
        self.probe_config = probe_config or ProbeConfig()
        self.fault_plan = fault_plan
        self._models: dict[tuple[str, str], PathLossModel] = {}

    @property
    def seed(self) -> int:
        """The campaign seed (every stream derives from it)."""
        return self.streams.seed

    def model_for(self, path: PathRtt) -> PathLossModel:
        """The (cached) loss model of a path."""
        key = (path.src.hostname, path.dst.hostname)
        m = self._models.get(key)
        if m is None:
            m = sample_path_loss_model(path, self.streams)
            self._models[key] = m
        return m

    def pick_path(self, rng: np.random.Generator) -> PathRtt:
        """Two distinct random sites -> the directed path between them."""
        i, j = rng.choice(len(SITES), size=2, replace=False)
        return self.matrix.path(SITES[i], SITES[j])

    def run_experiment(
        self, path: PathRtt, index: int, started_at: float = 0.0
    ) -> Experiment:
        """The paper's unit of measurement: a 48 B run and a 400 B run over
        the same path under the same congestion-episode weather.

        ``started_at`` places the experiment on the campaign clock; the
        runs are normalized by the path's diurnal RTT at that time
        ("depending on the time of the day", §3.1).
        """
        job = (
            self.seed, self.probe_config, path, index, started_at,
            self.fault_plan,
        )
        return _experiment_from_record(_experiment_worker(job), self.matrix)

    #: Campaign span: October-December 2006 is ~92 days.
    CAMPAIGN_SPAN_SECONDS = 92 * 86_400.0

    def run(
        self,
        n_experiments: int,
        workers: Optional[int] = None,
        on_error: str = "raise",
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        tracer=None,
    ) -> CampaignResult:
        """Run ``n_experiments`` random-pair measurements, spread uniformly
        over the campaign's three-month clock.

        ``workers`` fans experiments over a process pool (``None``: the
        ``REPRO_WORKERS`` environment variable, then serial) with results
        bit-identical to serial execution.  ``on_error`` / ``retry`` /
        ``timeout`` are the resilience policy
        (:func:`repro.experiments.parallel.parallel_map`): with ``"skip"``
        or ``"retry"``, permanently failed experiments land in
        ``result.failures`` instead of aborting the campaign.
        ``checkpoint`` names a JSON-lines file: completed experiments are
        durably logged as they finish, and a rerun pointing at the same
        file skips them, resuming exactly where the interrupted run
        stopped.

        ``tracer`` (a :class:`repro.obs.SpanTracer`, parent-side) records
        one span per experiment at the fan-in point and a ``fault.<kind>``
        event for every injection the workers realized — injections travel
        back in the result records (worker processes cannot reach the
        tracer), and injected probe crashes are inferred from the armed
        plan plus each item's attempt count.
        """
        if n_experiments <= 0:
            raise ValueError(f"need a positive experiment count, got {n_experiments}")
        from repro.experiments.parallel import parallel_map

        picker = self.streams.stream("pair-picker")
        when = self.streams.stream("schedule")
        starts = np.sort(
            when.uniform(0.0, self.CAMPAIGN_SPAN_SECONDS, n_experiments)
        )
        jobs = [
            (
                self.seed, self.probe_config, self.pick_path(picker), i,
                float(starts[i]), self.fault_plan,
            )
            for i in range(n_experiments)
        ]

        records: dict[int, dict] = {}
        ckpt: Optional[Checkpoint] = None
        if checkpoint is not None:
            ckpt = Checkpoint(
                checkpoint,
                meta={
                    "kind": "campaign",
                    "seed": self.seed,
                    "n": n_experiments,
                    "duration": self.probe_config.duration,
                },
            )
            records = ckpt.load()
        resumed = len(records)
        todo = [jobs[i] for i in range(n_experiments) if i not in records]

        retried: dict[int, int] = {}

        def note(res: Result) -> None:
            if tracer is not None and self.fault_plan is not None:
                idx = int(todo[res.index][3])
                crash = self.fault_plan.crashes.get(idx)
                if crash is not None:
                    # Crashed attempts never return a record; reconstruct
                    # them from the armed plan and the attempt count (a
                    # surviving item burned attempts-1 crashes, a dead one
                    # all of its attempts, capped at what was armed).
                    n = min(crash.crashes, res.attempts - (1 if res.ok else 0))
                    if n > 0:
                        tracer.event("fault.probe_crash", count=n, index=idx)
            if not res.ok:
                return
            exp_index = int(res.value["index"])
            if tracer is not None:
                for kind, count in sorted(res.value.get("injected", {}).items()):
                    tracer.event(f"fault.{kind}", count=int(count), index=exp_index)
            if res.attempts > 1:
                retried[exp_index] = res.attempts
            records[exp_index] = res.value
            if ckpt is not None:
                ckpt.append(exp_index, res.value)

        try:
            out = parallel_map(
                _experiment_worker, todo, workers=workers,
                on_error=on_error, retry=retry, timeout=timeout,
                pass_attempt=True, on_result=note,
                tracer=tracer, span_name="campaign.experiment",
            )
        finally:
            if ckpt is not None:
                ckpt.close()

        failures: list[ExperimentFailure] = []
        if on_error != "raise":
            for res in out:
                if isinstance(res, Result) and not res.ok:
                    failures.append(
                        ExperimentFailure(
                            index=int(todo[res.index][3]),
                            error=res.error_text,
                            attempts=res.attempts,
                        )
                    )
        failures.sort(key=lambda f: f.index)

        result = CampaignResult(failures=failures)
        injected: dict[str, int] = {}
        for i in range(n_experiments):
            rec = records.get(i)
            if rec is None:
                continue
            result.experiments.append(_experiment_from_record(rec, self.matrix))
            for kind, count in rec.get("injected", {}).items():
                injected[kind] = injected.get(kind, 0) + int(count)
        result.meta = {
            "seed": self.seed,
            "n_experiments": n_experiments,
            "on_error": on_error,
            "resumed": resumed,
            "retried": retried,
            "failed": [f.index for f in failures],
            "injected": injected,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.describe()
            ),
        }
        return result
