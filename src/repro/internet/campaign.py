"""Measurement campaign orchestration (paper §3.1, Internet leg).

"From October 2006 to December 2006, we periodically initiate constant bit
rate (CBR) flows between two randomly picked sites": the campaign picks
random directed site pairs, runs the 48 B / 400 B probe pair against the
path's loss model (same congestion episodes for both runs), applies the
validation rule, and pools RTT-normalized loss intervals across validated
experiments — the dataset behind Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.internet.pathmodel import PathLossModel, sample_path_loss_model
from repro.internet.paths import PathRtt, RttMatrix
from repro.internet.probe import PROBE_SIZES, ProbeConfig, ProbeRun, run_probe, validate_pair
from repro.internet.sites import SITES
from repro.sim.rng import RngStreams

__all__ = ["Experiment", "CampaignResult", "Campaign"]


@dataclass
class Experiment:
    """One validated (or rejected) path measurement."""

    path: PathRtt
    small: ProbeRun
    large: ProbeRun
    valid: bool
    #: Campaign-clock start time in seconds (paper: experiments spread
    #: periodically over October-December 2006).  The path's diurnal RTT at
    #: this time is what the runs were normalized with.
    started_at: float = 0.0

    def intervals_rtt(self) -> np.ndarray:
        """Pooled RTT-normalized intervals of both runs (validated use)."""
        return np.concatenate((self.small.intervals_rtt(), self.large.intervals_rtt()))


@dataclass
class CampaignResult:
    """Aggregated campaign output."""

    experiments: list[Experiment] = field(default_factory=list)

    @property
    def n_valid(self) -> int:
        """Experiments that passed the 48B/400B validation."""
        return sum(1 for e in self.experiments if e.valid)

    @property
    def n_rejected(self) -> int:
        """Experiments discarded by the validation rule."""
        return len(self.experiments) - self.n_valid

    def all_intervals_rtt(self) -> np.ndarray:
        """RTT-normalized loss intervals pooled over validated experiments
        (the Figure 4 dataset)."""
        parts = [e.intervals_rtt() for e in self.experiments if e.valid]
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    def paths_measured(self) -> set[tuple[str, str]]:
        """Distinct (src, dst) hostname pairs with validated data."""
        return {
            (e.path.src.hostname, e.path.dst.hostname)
            for e in self.experiments
            if e.valid
        }

    def mean_loss_rate(self) -> float:
        """Mean per-packet loss rate over validated experiments."""
        rates = [
            0.5 * (e.small.loss_rate + e.large.loss_rate)
            for e in self.experiments
            if e.valid
        ]
        return float(np.mean(rates)) if rates else float("nan")


class Campaign:
    """Random-pair CBR measurement campaign over the 26-site mesh."""

    def __init__(
        self,
        seed: int = 2006,
        probe_config: Optional[ProbeConfig] = None,
        rtt_matrix: Optional[RttMatrix] = None,
    ):
        self.streams = RngStreams(seed)
        self.matrix = rtt_matrix if rtt_matrix is not None else RttMatrix(self.streams)
        self.probe_config = probe_config or ProbeConfig()
        self._models: dict[tuple[str, str], PathLossModel] = {}

    def model_for(self, path: PathRtt) -> PathLossModel:
        """The (cached) loss model of a path."""
        key = (path.src.hostname, path.dst.hostname)
        m = self._models.get(key)
        if m is None:
            m = sample_path_loss_model(path, self.streams)
            self._models[key] = m
        return m

    def pick_path(self, rng: np.random.Generator) -> PathRtt:
        """Two distinct random sites -> the directed path between them."""
        i, j = rng.choice(len(SITES), size=2, replace=False)
        return self.matrix.path(SITES[i], SITES[j])

    def run_experiment(
        self, path: PathRtt, index: int, started_at: float = 0.0
    ) -> Experiment:
        """The paper's unit of measurement: a 48 B run and a 400 B run over
        the same path under the same congestion-episode weather.

        ``started_at`` places the experiment on the campaign clock; the
        runs are normalized by the path's diurnal RTT at that time
        ("depending on the time of the day", §3.1).
        """
        model = self.model_for(path)
        rng = self.streams.stream(f"exp/{index}")
        horizon = self.probe_config.duration * 1.01
        episodes = model.sample_episodes(horizon, rng)
        rtt_now = path.rtt_at(started_at)
        small = run_probe(
            path, model, rng, self.probe_config, packet_size=PROBE_SIZES[0],
            episodes=episodes,
        )
        large = run_probe(
            path, model, rng, self.probe_config, packet_size=PROBE_SIZES[1],
            episodes=episodes,
        )
        small.rtt = rtt_now
        large.rtt = rtt_now
        return Experiment(
            path=path, small=small, large=large,
            valid=validate_pair(small, large), started_at=started_at,
        )

    #: Campaign span: October-December 2006 is ~92 days.
    CAMPAIGN_SPAN_SECONDS = 92 * 86_400.0

    def run(self, n_experiments: int) -> CampaignResult:
        """Run ``n_experiments`` random-pair measurements, spread uniformly
        over the campaign's three-month clock."""
        if n_experiments <= 0:
            raise ValueError(f"need a positive experiment count, got {n_experiments}")
        picker = self.streams.stream("pair-picker")
        when = self.streams.stream("schedule")
        result = CampaignResult()
        starts = np.sort(when.uniform(0.0, self.CAMPAIGN_SPAN_SECONDS, n_experiments))
        for i in range(n_experiments):
            path = self.pick_path(picker)
            result.experiments.append(
                self.run_experiment(path, i, started_at=float(starts[i]))
            )
        return result
