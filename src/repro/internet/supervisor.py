"""Crash-tolerant supervision of sharded campaigns.

:mod:`repro.internet.shards` makes every shard a pure, re-runnable
function of ``(seed, path range)``; this module runs those shards under a
supervising parent that treats worker death as a normal input:

* **Heartbeats** — each worker writes a tiny progress file
  (``hb-<shard>.json``, atomic replace) as it walks its paths.  The
  parent judges liveness on its *own* monotonic clock: a worker whose
  progress has not advanced within ``hang_timeout`` is wedged and gets
  SIGKILLed, whatever its clock claims.  A heartbeat whose wall-clock
  stamp disagrees with the parent's by more than ``skew_tolerance`` is
  flagged (``worker.clock_skew`` span event) but never trusted for
  liveness decisions.
* **Retry with backoff** — a dead or reaped worker's shard is
  rescheduled under the :class:`~repro.faults.RetryPolicy` (deterministic
  jitter, so two supervisors back off identically).  Shards that keep
  failing are **quarantined** as poison: the campaign finishes DEGRADED
  with an explicit manifest of the lost path ranges instead of hanging
  forever or dying.
* **Durable, resumable state** — completed shards land as atomic,
  fingerprinted JSON records (``shard-<id>.json`` via
  :func:`~repro.obs.metrics.atomic_write_text`) and are logged in a
  JSON-lines :class:`~repro.faults.Checkpoint` ledger.  A killed
  campaign re-run with ``resume=True`` verifies each record against its
  ledger fingerprint, re-runs anything torn or missing, and produces a
  result **byte-identical** to an uninterrupted run with the same seed.

``workers=0`` runs shards in-process (serial) through the same retry /
quarantine / ledger machinery — bit-identical results, no processes —
which is what most tests use; process-level fault injection
(:class:`~repro.faults.WorkerKill` / :class:`~repro.faults.WorkerHang`)
is only realized by real worker processes.
"""

from __future__ import annotations

import json
import signal
import sys
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.faults.checkpoint import Checkpoint
from repro.faults.plan import FaultPlan, InjectedFault
from repro.faults.resilient import RetryPolicy
from repro.internet.probe import ProbeConfig
from repro.internet.shards import (
    GapHistogram,
    ShardResult,
    ShardSpec,
    plan_shards,
    reduce_shards,
    run_shard,
)
from repro.obs.bus import open_bus, read_json_tolerant
from repro.obs.metrics import atomic_write_text

__all__ = [
    "SupervisorConfig",
    "ShardedCampaignResult",
    "CampaignSupervisor",
    "run_sharded_campaign",
    "SHARD_LEDGER",
]

#: Ledger file name inside the campaign state directory.
SHARD_LEDGER = "shards.jsonl"

#: Worker exit code for an *expected* failure (injected fault, probe
#: error) — distinguishes "the experiment failed" from interpreter death.
_EXIT_SHARD_ERROR = 3


def _shard_path(state_dir: Path, shard_id: int) -> Path:
    return state_dir / f"shard-{shard_id:05d}.json"


def _heartbeat_path(state_dir: Path, shard_id: int) -> Path:
    return state_dir / f"hb-{shard_id:05d}.json"


def _error_path(state_dir: Path, shard_id: int) -> Path:
    return state_dir / f"err-{shard_id:05d}.json"


def _write_json_fast(path: Path, obj: dict) -> None:
    """Atomic-replace JSON write without fsync — heartbeats are advisory
    liveness signals, not durable state, so they skip the fsync cost."""
    tmp = path.with_name(f".{path.name}.tmp")
    tmp.write_text(json.dumps(obj, separators=(",", ":")))
    tmp.replace(path)


def _shard_worker_main(
    spec_record: dict,
    state_dir: str,
    probe_config: Optional[ProbeConfig],
    fault_plan: Optional[FaultPlan],
    attempt: int,
    heartbeat_interval: float,
) -> None:
    """Entry point of one shard worker process.

    Heartbeats progress to ``hb-<id>.json`` (throttled to
    ``heartbeat_interval``), runs the shard with process-level faults
    armed, and lands the result atomically in ``shard-<id>.json`` with
    its fingerprint embedded.  Expected failures write ``err-<id>.json``
    and exit ``3``; a SIGKILL (real or injected) leaves nothing, which is
    exactly the point — the parent must cope.
    """
    spec = ShardSpec.from_record(spec_record)
    sdir = Path(state_dir)
    hb_path = _heartbeat_path(sdir, spec.shard_id)
    skew = fault_plan.skew if fault_plan is not None else None
    last_write = [float("-inf")]

    def heartbeat(done: int) -> None:
        now = time.monotonic()
        if done > 0 and now - last_write[0] < heartbeat_interval:
            return
        last_write[0] = now
        wall = time.time()
        if skew is not None:
            wall += skew.offset  # a skewed worker stamps a skewed clock
        _write_json_fast(
            hb_path,
            {"shard_id": spec.shard_id, "done": done, "attempt": attempt,
             "wall": wall},
        )

    heartbeat(0)
    try:
        result = run_shard(
            spec,
            probe_config=probe_config,
            fault_plan=fault_plan,
            heartbeat=heartbeat,
            attempt=attempt,
            allow_process_faults=True,
        )
    except (InjectedFault, Exception) as exc:  # noqa: BLE001 - relayed to parent
        atomic_write_text(
            _error_path(sdir, spec.shard_id),
            json.dumps({
                "shard_id": spec.shard_id,
                "attempt": attempt,
                "error": f"{type(exc).__name__}: {exc}",
            }, sort_keys=True),
        )
        sys.exit(_EXIT_SHARD_ERROR)
    record = result.to_record()
    record["fingerprint"] = result.fingerprint()
    atomic_write_text(
        _shard_path(sdir, spec.shard_id), json.dumps(record, sort_keys=True)
    )


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs.

    ``workers=0`` executes shards in-process (serial, deterministic, no
    process faults); ``workers>=1`` fans out over that many concurrent
    fork-context worker processes.  ``hang_timeout`` is measured on the
    parent's monotonic clock since the last observed progress *advance*
    (never from worker-reported timestamps).  ``skew_tolerance`` bounds
    how far a heartbeat's wall clock may drift from the parent's before
    the worker is flagged as clock-skewed.
    """

    workers: int = 2
    hang_timeout: float = 30.0
    heartbeat_interval: float = 0.05
    poll_interval: float = 0.02
    skew_tolerance: float = 300.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(retries=2, base=0.02, max_delay=0.5)
    )

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.hang_timeout <= 0 or self.poll_interval <= 0:
            raise ValueError("hang_timeout and poll_interval must be positive")
        if self.heartbeat_interval < 0 or self.skew_tolerance <= 0:
            raise ValueError("heartbeat_interval/skew_tolerance out of range")


@dataclass
class ShardedCampaignResult:
    """Aggregated output of a supervised sharded campaign.

    ``histogram`` is the streaming Figure 4 reducer merged over every
    completed shard; ``fates`` maps shard id to its outcome record
    (``status``, ``attempts``, ``error``) — the shard-fate table the
    report renders.  ``quarantined`` lists the poison shards' specs: the
    explicit manifest of what a DEGRADED campaign lost.
    :meth:`fingerprint` covers measurement content and the quarantine
    manifest, never attempts/timing/errors, so a killed-and-resumed
    campaign fingerprints identically to an uninterrupted one.
    """

    histogram: GapHistogram
    n_experiments: int
    n_valid: int
    n_rejected: int
    fates: dict[int, dict] = field(default_factory=dict)
    quarantined: list[ShardSpec] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when any shard was quarantined (its paths are missing)."""
        return bool(self.quarantined)

    @property
    def status(self) -> str:
        return "DEGRADED" if self.degraded else "COMPLETE"

    def lost_paths(self) -> int:
        """Directed paths lost to quarantined shards."""
        return sum(s.n_paths for s in self.quarantined)

    def manifest(self) -> dict:
        """JSON-able account of what the campaign measured and lost."""
        return {
            "status": self.status,
            "n_experiments": self.n_experiments,
            "n_valid": self.n_valid,
            "n_rejected": self.n_rejected,
            "n_shards_done": sum(
                1 for f in self.fates.values() if f.get("status") == "done"
            ),
            "n_shards_quarantined": len(self.quarantined),
            "lost_paths": self.lost_paths(),
            "quarantined": [
                {**s.to_record(),
                 "error": self.fates.get(s.shard_id, {}).get("error", "")}
                for s in sorted(self.quarantined, key=lambda s: s.shard_id)
            ],
        }

    def to_interval_pdf(self):
        """The campaign's Figure 4 distribution."""
        return self.histogram.to_interval_pdf()

    def fingerprint(self) -> str:
        """SHA-256 over measurement content + quarantine manifest."""
        import hashlib

        payload = {
            "histogram": self.histogram.to_record(),
            "n_experiments": self.n_experiments,
            "n_valid": self.n_valid,
            "n_rejected": self.n_rejected,
            "quarantined": [
                s.to_record()
                for s in sorted(self.quarantined, key=lambda s: s.shard_id)
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """Human-readable campaign summary (the DEGRADED manifest)."""
        lines = [
            f"sharded campaign: {self.status}",
            f"  paths probed      : {self.n_experiments}",
            f"  validated pairs   : {self.n_valid}",
            f"  rejected pairs    : {self.n_rejected}",
            f"  shards done       : "
            f"{sum(1 for f in self.fates.values() if f.get('status') == 'done')}",
            f"  shards quarantined: {len(self.quarantined)}",
        ]
        if self.histogram.n:
            lines += [
                f"  loss gaps pooled  : {self.histogram.n}",
                f"  mean gap          : {self.histogram.mean_interval:.4f} RTT",
                f"  gaps < 0.01 RTT   : {self.histogram.fraction_within(0.01):.1%}",
                f"  gaps < 1 RTT      : {self.histogram.fraction_within(1.0):.1%}",
            ]
        for s in sorted(self.quarantined, key=lambda s: s.shard_id):
            err = self.fates.get(s.shard_id, {}).get("error", "")
            lines.append(
                f"  POISON shard {s.shard_id}: paths [{s.start}, {s.stop}) lost"
                + (f" ({err})" if err else "")
            )
        lines.append(f"  fingerprint       : {self.fingerprint()}")
        return "\n".join(lines)


class _WorkerState:
    """Parent-side view of one running shard worker."""

    __slots__ = ("process", "spec", "attempt", "last_done", "last_advance",
                 "skew_flagged", "reaped_for_hang")

    def __init__(self, process, spec: ShardSpec, attempt: int):
        self.process = process
        self.spec = spec
        self.attempt = attempt
        self.last_done = -1
        self.last_advance = time.monotonic()
        self.skew_flagged = False
        self.reaped_for_hang = False


class CampaignSupervisor:
    """Runs a sharded campaign to completion through kills and stalls.

    The supervisor owns a state directory: the shard ledger
    (``shards.jsonl``), one fingerprinted result file per completed
    shard, and transient heartbeat files.  ``run(resume=True)`` picks up
    any prior state in that directory; ``resume=False`` demands a fresh
    directory (mixing two campaigns' state is an error, not a merge).
    """

    def __init__(
        self,
        n_sites: int,
        n_shards: int,
        state_dir: Union[str, Path],
        seed: int = 2006,
        n_paths: Optional[int] = None,
        probe_config: Optional[ProbeConfig] = None,
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self.specs = plan_shards(n_sites, n_shards, seed=seed, n_paths=n_paths)
        self.n_sites = int(n_sites)
        self.n_shards = int(n_shards)
        self.seed = int(seed)
        self.total_paths = self.specs[-1].stop
        self.state_dir = Path(state_dir)
        self.probe_config = probe_config or ProbeConfig()
        self.config = config or SupervisorConfig()
        self.fault_plan = fault_plan
        self.tracer = tracer
        self.bus = None  # opened per run(); lazy, so no files until an emit
        self.torn_heartbeats = 0

    # -- tracing ---------------------------------------------------------
    def _event(self, name: str, **attrs) -> None:
        """One supervision event, mirrored to the span tracer (when
        tracing is armed) and the state-dir bus (while a run is live)."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)
        if self.bus is not None:
            self.bus.emit(name, **attrs)

    # -- durable state ---------------------------------------------------
    def _ledger(self) -> Checkpoint:
        return Checkpoint(
            self.state_dir / SHARD_LEDGER,
            meta={
                "kind": "sharded-campaign",
                "seed": self.seed,
                "n_sites": self.n_sites,
                "n_paths": self.total_paths,
                "n_shards": self.n_shards,
                "duration": self.probe_config.duration,
            },
        )

    def _load_shard_file(self, spec: ShardSpec, want_fp: str) -> Optional[ShardResult]:
        """Re-read a completed shard's record, verifying identity and
        fingerprint; any tear/mismatch means "re-run it", never "trust it"."""
        path = _shard_path(self.state_dir, spec.shard_id)
        try:
            record = json.loads(path.read_text())
            stored_fp = record.pop("fingerprint", None)
            result = ShardResult.from_record(record)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if result.spec != spec:
            return None
        fp = result.fingerprint()
        if fp != want_fp or (stored_fp is not None and stored_fp != fp):
            return None
        return result

    def _read_heartbeat(self, shard_id: int) -> Optional[dict]:
        # Heartbeat writes are atomic-replace but unfsynced: a tear is an
        # expected input, so it is skipped and *counted*, never raised.
        hb, torn = read_json_tolerant(_heartbeat_path(self.state_dir, shard_id))
        self.torn_heartbeats += torn
        return hb

    def _read_error(self, shard_id: int) -> str:
        try:
            return str(
                json.loads(_error_path(self.state_dir, shard_id).read_text())
                .get("error", "")
            )
        except (OSError, ValueError):
            return ""

    # -- the run ---------------------------------------------------------
    def run(self, resume: bool = False) -> ShardedCampaignResult:
        """Drive every shard to done-or-quarantined and reduce.

        With ``resume=True``, shards whose ledger entry and result file
        agree are loaded instead of re-run (quarantine decisions are
        durable too); anything torn or missing is re-executed — the
        reduced output is byte-identical either way.
        """
        ledger_path = self.state_dir / SHARD_LEDGER
        if not resume and ledger_path.exists():
            raise ValueError(
                f"{self.state_dir} already holds campaign state; "
                f"pass resume=True or use a fresh directory"
            )
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.bus = open_bus(self.state_dir, source="supervisor")

        ledger = self._ledger()
        prior = ledger.load() if resume else {}

        results: dict[int, ShardResult] = {}
        fates: dict[int, dict] = {}
        quarantined: dict[int, ShardSpec] = {}
        pending: list[ShardSpec] = []
        resumed = 0

        for spec in self.specs:
            rec = prior.get(spec.shard_id)
            if rec and rec.get("status") == "done":
                loaded = self._load_shard_file(spec, rec.get("fingerprint", ""))
                if loaded is not None:
                    results[spec.shard_id] = loaded
                    fates[spec.shard_id] = dict(rec)
                    resumed += 1
                    continue
                warnings.warn(
                    f"shard {spec.shard_id}: result file torn or mismatched "
                    f"on resume; re-running",
                    stacklevel=2,
                )
                self._event("shard.resume_mismatch", shard=spec.shard_id)
            elif rec and rec.get("status") == "quarantined":
                quarantined[spec.shard_id] = spec
                fates[spec.shard_id] = dict(rec)
                resumed += 1
                continue
            pending.append(spec)

        self._event(
            "campaign.start",
            seed=self.seed, n_sites=self.n_sites, n_paths=self.total_paths,
            n_shards=self.n_shards, workers=self.config.workers,
            resumed=resumed, pending=len(pending),
        )
        try:
            if self.config.workers == 0:
                self._run_serial(pending, ledger, results, fates, quarantined)
            else:
                self._run_processes(pending, ledger, results, fates, quarantined)
        finally:
            ledger.close()

        merged, counters = reduce_shards(list(results.values()))
        injected: dict[str, int] = {}
        for res in results.values():
            for kind, count in res.injected.items():
                injected[kind] = injected.get(kind, 0) + int(count)
        result = ShardedCampaignResult(
            histogram=merged,
            n_experiments=counters["n_experiments"],
            n_valid=counters["n_valid"],
            n_rejected=counters["n_rejected"],
            fates=fates,
            quarantined=sorted(quarantined.values(), key=lambda s: s.shard_id),
            meta={
                "seed": self.seed,
                "n_sites": self.n_sites,
                "n_paths": self.total_paths,
                "n_shards": self.n_shards,
                "workers": self.config.workers,
                "resumed": resumed,
                "retried": {
                    sid: f["attempts"] for sid, f in sorted(fates.items())
                    if f.get("attempts", 1) > 1
                },
                "injected": injected,
                "fault_plan": (
                    None if self.fault_plan is None
                    else self.fault_plan.describe()
                ),
            },
        )
        self._event(
            "campaign.reduced",
            status=result.status,
            shards_done=len(results),
            shards_quarantined=len(quarantined),
            lost_paths=result.lost_paths(),
            torn_heartbeats=self.torn_heartbeats,
        )
        if self.bus is not None:
            self.bus.close()
            self.bus = None
        return result

    # -- outcome bookkeeping (shared by both executors) ------------------
    def _shard_done(
        self, spec: ShardSpec, result: ShardResult, attempt: int,
        ledger: Checkpoint, results: dict, fates: dict,
    ) -> None:
        fp = result.fingerprint()
        fate = {"status": "done", "attempts": attempt, "fingerprint": fp}
        # Persist the fingerprinted record before the ledger references
        # it — workers already wrote it (identical bytes), but the serial
        # executor and the ledger's durability rule both rely on this.
        record = result.to_record()
        record["fingerprint"] = fp
        atomic_write_text(
            _shard_path(self.state_dir, spec.shard_id),
            json.dumps(record, sort_keys=True),
        )
        ledger.append(spec.shard_id, fate)
        results[spec.shard_id] = result
        fates[spec.shard_id] = fate
        self._event(
            "shard.done", shard=spec.shard_id, attempts=attempt,
            paths=spec.n_paths, valid=result.n_valid,
        )

    def _shard_failed(
        self, spec: ShardSpec, attempt: int, error: str,
        ledger: Checkpoint, fates: dict, quarantined: dict,
    ) -> Optional[float]:
        """Returns the backoff delay before the next attempt, or ``None``
        when the shard is out of retries and has been quarantined."""
        retry = self.config.retry
        if attempt <= retry.retries:
            delay = retry.delay(attempt, key=f"shard/{spec.shard_id}")
            self._event(
                "shard.retry", shard=spec.shard_id, attempt=attempt,
                delay=round(delay, 4), error=error,
            )
            return delay
        fate = {"status": "quarantined", "attempts": attempt, "error": error}
        ledger.append(spec.shard_id, fate)
        fates[spec.shard_id] = fate
        quarantined[spec.shard_id] = spec
        self._event(
            "shard.quarantined", shard=spec.shard_id, attempts=attempt,
            paths=spec.n_paths, error=error,
        )
        return None

    # -- serial executor -------------------------------------------------
    def _run_serial(
        self, pending: list[ShardSpec], ledger: Checkpoint,
        results: dict, fates: dict, quarantined: dict,
    ) -> None:
        """In-process execution: same retry/quarantine/ledger semantics,
        no heartbeats or process faults (a self-SIGKILL in-process would
        take the campaign down, so ``allow_process_faults`` stays off)."""
        for spec in pending:
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = run_shard(
                        spec,
                        probe_config=self.probe_config,
                        fault_plan=self.fault_plan,
                        attempt=attempt,
                        allow_process_faults=False,
                    )
                except Exception as exc:  # noqa: BLE001 - failure is data
                    error = f"{type(exc).__name__}: {exc}"
                    delay = self._shard_failed(
                        spec, attempt, error, ledger, fates, quarantined
                    )
                    if delay is None:
                        break
                    time.sleep(delay)
                    continue
                self._shard_done(spec, result, attempt, ledger, results, fates)
                break

    # -- process executor ------------------------------------------------
    def _spawn(self, ctx, spec: ShardSpec, attempt: int) -> _WorkerState:
        # Stale heartbeats/errors from a previous attempt must not feed
        # this one's liveness or error reporting.
        for path in (_heartbeat_path(self.state_dir, spec.shard_id),
                     _error_path(self.state_dir, spec.shard_id)):
            try:
                path.unlink()
            except OSError:
                pass
        proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                spec.to_record(), str(self.state_dir), self.probe_config,
                self.fault_plan, attempt, self.config.heartbeat_interval,
            ),
            daemon=True,
        )
        proc.start()
        self._event(
            "worker.spawn", shard=spec.shard_id, attempt=attempt, pid=proc.pid
        )
        return _WorkerState(proc, spec, attempt)

    def _poll_worker(self, state: _WorkerState) -> None:
        """Fold the latest heartbeat into parent-side liveness state."""
        hb = self._read_heartbeat(state.spec.shard_id)
        if hb is None or int(hb.get("attempt", -1)) != state.attempt:
            return
        done = int(hb.get("done", -1))
        if done > state.last_done:
            state.last_done = done
            state.last_advance = time.monotonic()
            # Progress is bus-only (throttled by the heartbeat interval):
            # span traces record decisions, the bus records liveness too.
            if self.bus is not None:
                self.bus.emit(
                    "shard.progress", shard=state.spec.shard_id,
                    done=done, attempt=state.attempt,
                )
        skew = abs(float(hb.get("wall", 0.0)) - time.time())
        if skew > self.config.skew_tolerance and not state.skew_flagged:
            state.skew_flagged = True
            self._event(
                "worker.clock_skew", shard=state.spec.shard_id,
                skew_seconds=round(skew, 3),
            )

    def _run_processes(
        self, pending: list[ShardSpec], ledger: Checkpoint,
        results: dict, fates: dict, quarantined: dict,
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        queue: deque[tuple[ShardSpec, int]] = deque(
            (spec, 1) for spec in pending
        )
        cooling: list[tuple[float, ShardSpec, int]] = []
        running: dict[int, _WorkerState] = {}

        try:
            while queue or cooling or running:
                now = time.monotonic()
                for ready_at, spec, attempt in list(cooling):
                    if now >= ready_at:
                        cooling.remove((ready_at, spec, attempt))
                        queue.append((spec, attempt))
                while queue and len(running) < self.config.workers:
                    spec, attempt = queue.popleft()
                    running[spec.shard_id] = self._spawn(ctx, spec, attempt)

                for sid, state in list(running.items()):
                    self._poll_worker(state)
                    proc = state.process
                    if proc.is_alive():
                        stalled = (
                            time.monotonic() - state.last_advance
                            > self.config.hang_timeout
                        )
                        if stalled:
                            # Wedged: no observed progress on the parent's
                            # clock.  SIGKILL — a hung worker can't be
                            # trusted to honor anything gentler.
                            state.reaped_for_hang = True
                            self._event(
                                "worker.hang", shard=sid,
                                attempt=state.attempt,
                                last_done=max(state.last_done, 0),
                            )
                            proc.kill()
                            proc.join()
                        else:
                            continue
                    else:
                        proc.join()
                    del running[sid]
                    self._finish_worker(
                        state, ledger, results, fates, quarantined, cooling
                    )

                if running or cooling:
                    time.sleep(self.config.poll_interval)
        finally:
            for state in running.values():
                state.process.kill()
                state.process.join()

    def _finish_worker(
        self, state: _WorkerState, ledger: Checkpoint,
        results: dict, fates: dict, quarantined: dict, cooling: list,
    ) -> None:
        spec, attempt = state.spec, state.attempt
        exitcode = state.process.exitcode
        result = None
        if exitcode == 0:
            # Trust nothing about the exit code: the result only counts if
            # the fingerprinted record actually landed and verifies.
            record = None
            path = _shard_path(self.state_dir, spec.shard_id)
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = None
            if record is not None:
                want_fp = record.get("fingerprint", "")
                result = self._load_shard_file(spec, want_fp)
        if result is not None:
            self._shard_done(spec, result, attempt, ledger, results, fates)
            return

        if state.reaped_for_hang:
            error = "WorkerHang: no heartbeat progress, reaped by supervisor"
        elif exitcode is not None and exitcode < 0:
            error = f"WorkerDied: signal {signal.Signals(-exitcode).name}"
            if -exitcode == signal.SIGKILL:
                self._event(
                    "worker.sigkill", shard=spec.shard_id, attempt=attempt
                )
        elif exitcode == _EXIT_SHARD_ERROR:
            error = self._read_error(spec.shard_id) or "shard error"
        elif exitcode == 0:
            error = "WorkerDied: exited clean but left no valid result"
        else:
            error = f"WorkerDied: exit code {exitcode}"

        delay = self._shard_failed(
            spec, attempt, error, ledger, fates, quarantined
        )
        if delay is not None:
            cooling.append((time.monotonic() + delay, spec, attempt + 1))


def run_sharded_campaign(
    n_sites: int,
    n_shards: int,
    state_dir: Union[str, Path],
    seed: int = 2006,
    n_paths: Optional[int] = None,
    probe_config: Optional[ProbeConfig] = None,
    workers: int = 0,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    tracer=None,
    config: Optional[SupervisorConfig] = None,
) -> ShardedCampaignResult:
    """One-call sharded campaign (the CLI's ``campaign`` command core)."""
    if config is None:
        config = SupervisorConfig(workers=workers)
    supervisor = CampaignSupervisor(
        n_sites=n_sites,
        n_shards=n_shards,
        state_dir=state_dir,
        seed=seed,
        n_paths=n_paths,
        probe_config=probe_config,
        config=config,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    return supervisor.run(resume=resume)
