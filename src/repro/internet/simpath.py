"""Internet paths inside the event simulator.

:mod:`repro.internet.probe` applies a :class:`PathLossModel` analytically
(fast, used by the Figure 4 campaign).  This module provides the
*simulator-integrated* equivalent: a :class:`LossyLink` whose drops follow
the same congestion-episode weather, so a synthetic Internet path can
carry live protocol traffic — TCP over a measured-like WAN, probes with
real queueing, mixtures of both.

The two faces of the model are consistent by construction: the episode
schedule is drawn once (per link) from the same generator family.
"""

from __future__ import annotations

import numpy as np

from repro.internet.pathmodel import PathLossModel
from repro.internet.paths import PathRtt
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Host, Node
from repro.sim.packet import Packet
from repro.sim.trace import DropTrace

__all__ = ["LossyLink", "build_sim_path"]


class LossyLink(Link):
    """Link that drops packets per a :class:`PathLossModel`'s weather.

    Episodes are pre-sampled over ``horizon`` seconds and the schedule is
    extended lazily, one horizon at a time, whenever traffic reaches the
    covered range — a packet offered at t=601 s sees real weather, not
    the silent episode-free void a fixed pre-sample would leave past its
    end.  A packet offered while inside an episode window is dropped with
    the model's episode drop probability, otherwise with its thin random
    loss probability.  Surviving packets go through normal link service
    (rate + delay).
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Node,
        rate_bps: float,
        delay: float,
        model: PathLossModel,
        rng: np.random.Generator,
        horizon: float = 600.0,
        **kw,
    ):
        super().__init__(sim, dst, rate_bps, delay, **kw)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.model = model
        self.rng = rng
        self.horizon = float(horizon)
        self._starts, self._durations = model.sample_episodes(horizon, rng)
        self._covered = self.horizon
        self.model_drops = 0

    def _extend_weather(self, until: float) -> None:
        """Sample further ``horizon``-sized slabs of episode weather so
        the schedule covers at least ``until``."""
        while self._covered <= until:
            starts, durations = self.model.sample_episodes(self.horizon, self.rng)
            self._starts = np.concatenate([self._starts, starts + self._covered])
            self._durations = np.concatenate([self._durations, durations])
            self._covered += self.horizon

    def _in_episode(self, now: float) -> bool:
        if len(self._starts) == 0:
            return False
        idx = int(np.searchsorted(self._starts, now, side="right")) - 1
        if idx < 0:
            return False
        return now < self._starts[idx] + self._durations[idx]

    def send(self, pkt: Packet):
        """Offer a packet to this component for forwarding."""
        now = self.sim.now
        if now >= self._covered:
            self._extend_weather(now)
        p = (
            self.model.episode_drop_prob
            if self._in_episode(now)
            else self.model.random_loss_prob
        )
        if p > 0.0 and self.rng.random() < p:
            self.model_drops += 1
            if self.drop_trace is not None:
                self.drop_trace.record(pkt, now, marked=False)
            self.sim.free_packet(pkt)
            return None
        return super().send(pkt)


def build_sim_path(
    sim: Simulator,
    path: PathRtt,
    model: PathLossModel,
    rng: np.random.Generator,
    access_rate_bps: float = 100e6,
    horizon: float = 600.0,
) -> tuple[Host, Host, DropTrace]:
    """Wire two hosts over a lossy forward / clean reverse WAN path.

    Returns ``(src_host, dst_host, forward_drop_trace)``.  Propagation is
    split evenly between the directions so the host-to-host RTT equals
    ``path.base_rtt``.
    """
    src = Host(sim, name=f"src.{path.src.hostname.split('.')[0]}")
    dst = Host(sim, name=f"dst.{path.dst.hostname.split('.')[0]}")
    one_way = path.base_rtt / 2.0
    trace = DropTrace(f"{path.src.hostname}->{path.dst.hostname}")
    fwd = LossyLink(
        sim, dst, access_rate_bps, one_way, model, rng,
        horizon=horizon, drop_trace=trace, name="wan-fwd",
    )
    rev = Link(sim, src, access_rate_bps, one_way, name="wan-rev")
    src.uplink = fwd
    dst.uplink = rev
    return src, dst, trace
