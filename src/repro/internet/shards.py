"""Deterministic sharding of the path matrix + streaming reduction.

The ROADMAP's planetary-scale campaign (thousands of sites, ~1M directed
paths) cannot hold per-path traces in memory or re-run from scratch after
a crash.  This module provides the two halves that make it feasible:

* **Shard planning** — the O(sites²) directed-path matrix is enumerated
  lexicographically and split into contiguous, self-contained
  :class:`ShardSpec` jobs.  Every random draw inside a shard re-derives
  from ``(seed, path name, path index)``, so a shard's result depends
  only on the campaign seed and its own path range: shards can run in
  any order, on any worker, any number of times, and produce identical
  bytes — and the *same* campaign sharded 1 way or 64 ways reduces to
  the same result.

* **Streaming reduction** — each worker folds its experiments into a
  :class:`GapHistogram`: per-path RTT-normalized loss-gap counts on the
  paper's fixed Figure 4 bin grid (0.02 RTT over [0, 2]), plus exact
  integer counters for the headline "< 0.01 RTT" / "< 1 RTT" fractions
  and an *exact rational* interval sum.  Merging is associative to the
  bit: counts are integers and the running sum is a
  :class:`fractions.Fraction`, so any merge order or tree shape yields
  byte-identical Figure 4 CDFs.  Peak reducer memory is a fixed-size
  bin array — independent of path count.

:mod:`repro.internet.supervisor` runs these shards under a crash-tolerant
parent; this module stays process-free and deterministic.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

import numpy as np

from repro.core.pdf import DEFAULT_BIN, DEFAULT_MAX, IntervalPdf
from repro.internet.analytic import analytic_probe_enabled, run_shard_fast
from repro.internet.pathmodel import sample_path_loss_model
from repro.internet.paths import PathRtt, synthesize_path
from repro.internet.probe import PROBE_SIZES, ProbeConfig, run_probe, validate_pair
from repro.internet.sites import Site, synthetic_sites
from repro.sim.rng import RngStreams

__all__ = [
    "SyntheticMesh",
    "GapHistogram",
    "ShardSpec",
    "ShardResult",
    "plan_shards",
    "run_shard",
    "reduce_shards",
]

#: Campaign clock span the experiments are spread over (the paper's
#: October–December 2006, mirrored from ``Campaign.CAMPAIGN_SPAN_SECONDS``
#: without importing the legacy campaign module).
CAMPAIGN_SPAN_SECONDS = 92 * 86_400.0


class SyntheticMesh:
    """Lazy directed-path provider over ``n_sites`` synthetic sites.

    Holds O(sites) state (the site registry) and derives any of the
    ``n·(n-1)`` directed paths on demand via
    :func:`~repro.internet.paths.synthesize_path` — for 26 sites the
    paths are bit-identical to the eager :class:`~repro.internet.paths.RttMatrix`
    with the same seed.  Path index ``k`` enumerates pairs
    lexicographically: source ``k // (n-1)``, destination skipping the
    diagonal.
    """

    def __init__(self, n_sites: int, seed: int = 2006, min_rtt: float = 0.002):
        if n_sites < 2:
            raise ValueError(f"a mesh needs at least 2 sites, got {n_sites}")
        self.seed = int(seed)
        self.min_rtt = float(min_rtt)
        self.sites: tuple[Site, ...] = synthetic_sites(n_sites)

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    @property
    def n_paths(self) -> int:
        """Directed edges in the complete site graph."""
        n = len(self.sites)
        return n * (n - 1)

    def pair_of(self, index: int) -> tuple[int, int]:
        """Path index -> (source site index, destination site index)."""
        n = len(self.sites)
        if not (0 <= index < self.n_paths):
            raise IndexError(f"path index {index} out of range [0, {self.n_paths})")
        i, r = divmod(index, n - 1)
        j = r if r < i else r + 1
        return i, j

    def path_by_index(self, index: int) -> PathRtt:
        """Derive directed path ``index`` (no matrix is materialized).

        A throwaway stream family per call: stream values depend only on
        ``(seed, stream name)``, and a fresh family keeps the mesh's
        memory constant no matter how many paths a shard walks.
        """
        i, j = self.pair_of(index)
        return synthesize_path(
            RngStreams(self.seed), self.sites[i], self.sites[j],
            min_rtt=self.min_rtt,
        )


class GapHistogram:
    """Constant-memory, exactly-associative reducer of loss-gap intervals.

    State is a fixed ``int64`` bin-count array on the Figure 4 grid, the
    total interval count ``n`` (including beyond-grid overflow, matching
    :func:`repro.core.pdf.interval_pdf`), strict-below counters for the
    paper's 0.01 RTT / 1 RTT headline fractions, and the interval sum as
    an exact :class:`~fractions.Fraction`.  Because every field is an
    integer or an exact rational, ``merge`` is associative and
    commutative *to the bit*: any fold/merge order over the same leaves
    yields identical state, which is what makes killed-and-resumed
    campaigns byte-identical to uninterrupted ones.
    """

    #: Strict-below thresholds tracked exactly (the paper's headlines).
    BELOW_THRESHOLDS = (0.01, 1.0)

    def __init__(self, bin_size: float = DEFAULT_BIN, max_rtt: float = DEFAULT_MAX):
        if bin_size <= 0 or max_rtt <= 0:
            raise ValueError("bin_size and max_rtt must be positive")
        nbins = int(round(max_rtt / bin_size))
        self.bin_size = float(bin_size)
        self.nbins = nbins
        self.counts = np.zeros(nbins, dtype=np.int64)
        self.n = 0
        self.n_below = [0] * len(self.BELOW_THRESHOLDS)
        self._exact_sum = Fraction(0)

    # -- folding / merging ----------------------------------------------
    @property
    def edges(self) -> np.ndarray:
        """Bin edges, constructed exactly like :func:`interval_pdf`."""
        return np.linspace(0.0, self.nbins * self.bin_size, self.nbins + 1)

    def fold(self, intervals_rtt: np.ndarray) -> "GapHistogram":
        """Fold one leaf (a probe run's RTT-normalized intervals) in.

        The leaf's contribution to the exact sum is ``math.fsum`` of the
        array — the correctly-rounded true sum, so the leaf value depends
        only on the multiset of intervals, never on array layout.
        """
        x = np.asarray(intervals_rtt, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"intervals must be 1-D, got shape {x.shape}")
        if len(x) == 0:
            return self
        if np.any(x < 0):
            raise ValueError("negative intervals")
        counts, _ = np.histogram(x, bins=self.edges)
        self.counts += counts
        self.n += len(x)
        for i, thr in enumerate(self.BELOW_THRESHOLDS):
            self.n_below[i] += int(np.count_nonzero(x < thr))
        self._exact_sum += Fraction(math.fsum(x.tolist()))
        return self

    def merge(self, other: "GapHistogram") -> "GapHistogram":
        """Absorb another histogram (must share the bin grid)."""
        if (other.bin_size, other.nbins) != (self.bin_size, self.nbins):
            raise ValueError(
                f"bin grids differ: ({self.bin_size}, {self.nbins}) vs "
                f"({other.bin_size}, {other.nbins})"
            )
        self.counts += other.counts
        self.n += other.n
        for i in range(len(self.n_below)):
            self.n_below[i] += other.n_below[i]
        self._exact_sum += other._exact_sum
        return self

    # -- statistics ------------------------------------------------------
    @property
    def mean_interval(self) -> float:
        """Exactly-rounded mean interval (RTT units); nan when empty."""
        if self.n == 0:
            return float("nan")
        return float(self._exact_sum / self.n)

    def fraction_within(self, threshold_rtt: float) -> float:
        """Fraction of intervals strictly below a tracked threshold.

        Matches :func:`repro.core.burstiness.fraction_within` on the raw
        pooled intervals (strict ``<``), but from O(1) counters — only
        the thresholds in :attr:`BELOW_THRESHOLDS` are available.
        """
        try:
            i = self.BELOW_THRESHOLDS.index(threshold_rtt)
        except ValueError:
            raise ValueError(
                f"threshold {threshold_rtt} not tracked; available: "
                f"{self.BELOW_THRESHOLDS}"
            ) from None
        if self.n == 0:
            return float("nan")
        return self.n_below[i] / self.n

    def to_interval_pdf(self) -> IntervalPdf:
        """The Figure 4 :class:`IntervalPdf` — density computed from the
        integer counts exactly as the serial pooled-intervals path does,
        so the arrays are bit-identical to
        ``interval_pdf(np.concatenate(all_leaves))``."""
        if self.n > 0:
            density = self.counts / (self.n * self.bin_size)
        else:
            density = self.counts.astype(np.float64)
        return IntervalPdf(
            edges=self.edges,
            density=density,
            n=self.n,
            mean_interval=self.mean_interval,
        )

    def cdf(self) -> np.ndarray:
        """Cumulative fraction of intervals per bin edge (the Fig. 4 CDF),
        computed from integer counts — bit-identical for any merge order."""
        if self.n == 0:
            return np.zeros(self.nbins, dtype=np.float64)
        return np.cumsum(self.counts) / self.n

    # -- serialization ---------------------------------------------------
    def to_record(self) -> dict:
        """JSON-able state; the exact sum round-trips as numerator and
        denominator strings (arbitrary-precision, lossless)."""
        return {
            "bin_size": self.bin_size,
            "nbins": self.nbins,
            "counts": self.counts.tolist(),
            "n": self.n,
            "n_below": list(self.n_below),
            "sum_num": str(self._exact_sum.numerator),
            "sum_den": str(self._exact_sum.denominator),
        }

    @classmethod
    def from_record(cls, record: dict) -> "GapHistogram":
        h = cls(bin_size=float(record["bin_size"]),
                max_rtt=float(record["bin_size"]) * int(record["nbins"]))
        counts = np.asarray(record["counts"], dtype=np.int64)
        if len(counts) != h.nbins:
            raise ValueError(
                f"count array has {len(counts)} bins, grid has {h.nbins}"
            )
        h.counts = counts
        h.n = int(record["n"])
        h.n_below = [int(v) for v in record["n_below"]]
        h._exact_sum = Fraction(int(record["sum_num"]), int(record["sum_den"]))
        return h

    def state_nbytes(self) -> int:
        """Approximate state footprint in bytes — constant in the number
        of folds (the memory-independence invariant the tests enforce)."""
        exact_bits = (self._exact_sum.numerator.bit_length()
                      + self._exact_sum.denominator.bit_length())
        return int(self.counts.nbytes) + 8 * (2 + len(self.n_below)) + exact_bits // 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GapHistogram n={self.n} bins={self.nbins}x{self.bin_size} "
            f"mean={self.mean_interval:.4g}>"
        )


@dataclass(frozen=True)
class ShardSpec:
    """One self-contained shard job: path indices ``[start, stop)`` of the
    ``(seed, n_sites)`` mesh.  Everything a worker needs travels in the
    spec; randomness re-derives from the seed and each path's own names,
    so the spec is the complete description of the work."""

    shard_id: int
    start: int
    stop: int
    seed: int
    n_sites: int
    n_shards: int

    def __post_init__(self):
        if self.shard_id < 0 or self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"bad shard range: id={self.shard_id} [{self.start}, {self.stop})"
            )

    @property
    def n_paths(self) -> int:
        return self.stop - self.start

    def to_record(self) -> dict:
        return {
            "shard_id": self.shard_id, "start": self.start, "stop": self.stop,
            "seed": self.seed, "n_sites": self.n_sites, "n_shards": self.n_shards,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ShardSpec":
        return cls(**{k: int(record[k]) for k in (
            "shard_id", "start", "stop", "seed", "n_sites", "n_shards")})


def plan_shards(
    n_sites: int,
    n_shards: int,
    seed: int = 2006,
    n_paths: Optional[int] = None,
) -> list[ShardSpec]:
    """Deterministically partition the directed-path matrix into shards.

    ``n_paths`` caps the campaign to the first ``n_paths`` path indices
    (default: the full ``n·(n-1)`` matrix).  Shards are contiguous and
    balanced: the first ``total % n_shards`` shards carry one extra path.
    Pure arithmetic — the same inputs always produce the same plan, which
    is what lets a resumed supervisor re-derive the plan instead of
    trusting state on disk.
    """
    mesh = SyntheticMesh(n_sites, seed=seed)
    total = mesh.n_paths if n_paths is None else int(n_paths)
    if not (1 <= total <= mesh.n_paths):
        raise ValueError(
            f"n_paths must be in [1, {mesh.n_paths}] for {n_sites} sites, "
            f"got {total}"
        )
    if not (1 <= n_shards <= total):
        raise ValueError(
            f"n_shards must be in [1, {total}] for {total} paths, got {n_shards}"
        )
    q, r = divmod(total, n_shards)
    specs = []
    start = 0
    for sid in range(n_shards):
        size = q + (1 if sid < r else 0)
        specs.append(ShardSpec(
            shard_id=sid, start=start, stop=start + size,
            seed=int(seed), n_sites=int(n_sites), n_shards=int(n_shards),
        ))
        start += size
    assert start == total
    return specs


@dataclass
class ShardResult:
    """One completed shard: streaming histogram plus exact counters.

    ``injected`` counts faults the worker realized (relayed parent-side
    like the legacy campaign's records).  ``fingerprint`` covers the
    measurement content only — never attempts or timing — so a retried
    or resumed shard fingerprints identically to a first-try run.
    """

    spec: ShardSpec
    histogram: GapHistogram
    n_experiments: int
    n_valid: int
    n_rejected: int
    injected: dict

    def to_record(self) -> dict:
        return {
            "spec": self.spec.to_record(),
            "histogram": self.histogram.to_record(),
            "n_experiments": self.n_experiments,
            "n_valid": self.n_valid,
            "n_rejected": self.n_rejected,
            "injected": {k: int(v) for k, v in sorted(self.injected.items())},
        }

    @classmethod
    def from_record(cls, record: dict) -> "ShardResult":
        return cls(
            spec=ShardSpec.from_record(record["spec"]),
            histogram=GapHistogram.from_record(record["histogram"]),
            n_experiments=int(record["n_experiments"]),
            n_valid=int(record["n_valid"]),
            n_rejected=int(record["n_rejected"]),
            injected=dict(record.get("injected", {})),
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical result record (content, not provenance)."""
        payload = self.to_record()
        payload.pop("injected")  # injections are provenance, not measurement
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_shard(
    spec: ShardSpec,
    probe_config: Optional[ProbeConfig] = None,
    fault_plan=None,
    heartbeat: Optional[Callable[[int], None]] = None,
    attempt: int = 1,
    allow_process_faults: bool = False,
) -> ShardResult:
    """Execute one shard: probe every path in ``[start, stop)`` and fold
    the validated loss gaps into a streaming :class:`GapHistogram`.

    Per-path randomness derives from ``(seed, path hostnames, path
    index)`` — never from the shard boundaries — so re-sharding the same
    campaign, retrying a shard, or resuming after a kill all reproduce
    identical results.  ``heartbeat(done_paths)`` is called after every
    path (the supervisor's liveness signal).  ``fault_plan`` folds the
    campaign-leg faults in (outages, spikes, skew, probe crashes) and —
    only when ``allow_process_faults`` is set by a process-isolated
    worker — the worker-level SIGKILL/hang faults.
    """
    if fault_plan is None:
        if analytic_probe_enabled():
            # The fused analytic kernel: bit-identical (same streams,
            # same draws, same floats — see tests/internet/test_analytic.py),
            # ~5x the paths/sec.  Fault-injected shards need the per-path
            # mask/skew seams below, so they stay on the object path.
            return run_shard_fast(spec, probe_config=probe_config,
                                  heartbeat=heartbeat)
    cfg = probe_config or ProbeConfig()
    mesh = SyntheticMesh(spec.n_sites, seed=spec.seed)
    hist = GapHistogram()
    n_valid = 0
    n_rejected = 0
    injected_before = dict(fault_plan.injected) if fault_plan is not None else {}
    horizon = cfg.duration * 1.01
    n_paths_total = mesh.n_paths

    for done, k in enumerate(range(spec.start, spec.stop)):
        if fault_plan is not None:
            if allow_process_faults:
                fault_plan.shard_fault_check(spec.shard_id, done, attempt)
            fault_plan.crash_check(k, attempt)
        path = mesh.path_by_index(k)
        streams = RngStreams(spec.seed)
        model = sample_path_loss_model(path, streams)
        rng = streams.stream(f"shard-exp/{k}")
        started_at = CAMPAIGN_SPAN_SECONDS * ((k + 0.5) / n_paths_total)
        episodes = model.sample_episodes(horizon, rng)
        mask_hook = None
        if fault_plan is not None and (fault_plan.flaps or fault_plan.spikes):
            def mask_hook(times, lost, _k=k, _t0=started_at):
                return fault_plan.apply_probe_faults(times, lost, _t0, _k)
        small = run_probe(
            path, model, rng, cfg, packet_size=PROBE_SIZES[0],
            episodes=episodes, mask_hook=mask_hook,
        )
        large = run_probe(
            path, model, rng, cfg, packet_size=PROBE_SIZES[1],
            episodes=episodes, mask_hook=mask_hook,
        )
        rtt_now = path.rtt_at(started_at)
        small.rtt = rtt_now
        large.rtt = rtt_now
        if fault_plan is not None and fault_plan.skew is not None:
            small.loss_times = fault_plan.skew_times(small.loss_times)
            large.loss_times = fault_plan.skew_times(large.loss_times)
        if validate_pair(small, large):
            n_valid += 1
            hist.fold(small.intervals_rtt())
            hist.fold(large.intervals_rtt())
        else:
            n_rejected += 1
        if heartbeat is not None:
            heartbeat(done + 1)

    injected = {}
    if fault_plan is not None:
        injected = {
            k: v - injected_before.get(k, 0)
            for k, v in fault_plan.injected.items()
            if v - injected_before.get(k, 0) > 0
        }
    return ShardResult(
        spec=spec,
        histogram=hist,
        n_experiments=spec.n_paths,
        n_valid=n_valid,
        n_rejected=n_rejected,
        injected=injected,
    )


def reduce_shards(results: list[ShardResult]) -> tuple[GapHistogram, dict]:
    """Merge completed shards (canonically in shard-id order, though any
    order yields the same bits) into the campaign histogram + counters."""
    merged = GapHistogram()
    counters = {"n_experiments": 0, "n_valid": 0, "n_rejected": 0}
    for res in sorted(results, key=lambda r: r.spec.shard_id):
        merged.merge(res.histogram)
        counters["n_experiments"] += res.n_experiments
        counters["n_valid"] += res.n_valid
        counters["n_rejected"] += res.n_rejected
    return merged, counters
