"""Per-path bursty loss processes (the Internet-substitute's core).

We cannot probe the 2006 Internet, so each directed path gets a two-
timescale stochastic loss model whose structure mirrors the paper's §3.3
diagnosis of where burstiness comes from:

* **Congestion episodes** — a Poisson process of drop windows.  At a
  DropTail bottleneck, drops persist from buffer overflow until senders
  back off, "usually half an RTT later", so episode durations are
  exponential with mean ``~0.5 RTT`` of the path.  Probes falling inside a
  window are dropped with high probability — producing runs of
  consecutive probe losses (sub-RTT intervals).
* **Thin random loss** — an independent per-packet loss probability
  (link noise, route flaps), producing Poisson-like isolated losses.

Heterogeneity across the 650 paths (episode rate, drop probability,
random-loss rate, RTT) is what spreads Figure 4's PDF relative to the
single-bottleneck Figures 2–3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.internet.paths import PathRtt
from repro.sim.rng import RngStreams

__all__ = ["PathLossModel", "sample_path_loss_model"]


@dataclass
class PathLossModel:
    """Stochastic loss model of one directed path."""

    rtt: float  # seconds (normalization constant for analysis)
    episode_rate: float  # congestion episodes per second
    episode_mean_duration: float  # seconds
    episode_drop_prob: float  # per-packet drop probability inside a window
    random_loss_prob: float  # per-packet independent loss probability

    def __post_init__(self):
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt}")
        if self.episode_rate < 0:
            raise ValueError(f"episode_rate must be non-negative")
        if self.episode_mean_duration <= 0:
            raise ValueError("episode_mean_duration must be positive")
        if not (0.0 <= self.episode_drop_prob <= 1.0):
            raise ValueError("episode_drop_prob must be in [0, 1]")
        if not (0.0 <= self.random_loss_prob <= 1.0):
            raise ValueError("random_loss_prob must be in [0, 1]")

    # ------------------------------------------------------------------
    def sample_episodes(
        self, horizon: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Episode (start, duration) arrays over ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        n = rng.poisson(self.episode_rate * horizon)
        starts = np.sort(rng.uniform(0.0, horizon, size=n))
        durations = rng.exponential(self.episode_mean_duration, size=n)
        return starts, durations

    def lost_mask(
        self,
        probe_times: np.ndarray,
        rng: np.random.Generator,
        episodes: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Boolean mask: which probes are lost.

        ``episodes`` can be passed explicitly so that two back-to-back
        probe runs (the paper's 48 B / 400 B validation pair) see the same
        network weather.
        """
        t = np.asarray(probe_times, dtype=np.float64)
        if len(t) == 0:
            return np.zeros(0, dtype=bool)
        if episodes is None:
            episodes = self.sample_episodes(float(t[-1]) + 1e-9, rng)
        starts, durations = episodes

        inside = np.zeros(len(t), dtype=bool)
        if len(starts):
            idx = np.searchsorted(starts, t, side="right") - 1
            valid = idx >= 0
            inside[valid] = t[valid] < starts[idx[valid]] + durations[idx[valid]]

        u = rng.random(len(t))
        lost = np.where(inside, u < self.episode_drop_prob, u < self.random_loss_prob)
        return lost

    # -- analytic expectations (used by tests) ----------------------------
    @property
    def episode_duty_cycle(self) -> float:
        """Long-run fraction of time inside a drop window (small-rate
        approximation; valid when windows rarely overlap)."""
        return min(1.0, self.episode_rate * self.episode_mean_duration)

    @property
    def expected_loss_rate(self) -> float:
        """Approximate stationary per-packet loss probability."""
        duty = self.episode_duty_cycle
        return duty * self.episode_drop_prob + (1.0 - duty) * self.random_loss_prob


def sample_path_loss_model(
    path: PathRtt,
    streams: RngStreams,
    episode_rate_mean: float = 0.3,
    drop_prob_range: tuple[float, float] = (0.6, 0.95),
    random_loss_range: tuple[float, float] = (3e-5, 4e-4),
    duration_rtt_fraction: float = 0.025,
    duration_floor: float = 2.5e-3,
) -> PathLossModel:
    """Draw one path's heterogeneous loss parameters (deterministic per
    path name and seed).

    Episode durations scale with the path RTT — the overflow slice of the
    DropTail cycle in §3.3 — with a floor so short paths still see
    multi-packet bursts; episode rates are lognormal around
    ``episode_rate_mean``; drop/random-loss probabilities are drawn per
    path.  The defaults were calibrated so a campaign with the default
    :class:`~repro.internet.probe.ProbeConfig` reproduces Figure 4's
    composition (~40% of intervals below 0.01 RTT, ~60% below 1 RTT).
    """
    rng = streams.stream(f"loss/{path.src.hostname}/{path.dst.hostname}")
    rate = float(episode_rate_mean * rng.lognormal(mean=0.0, sigma=0.8))
    lo, hi = drop_prob_range
    drop_p = float(rng.uniform(lo, hi))
    rlo, rhi = random_loss_range
    # Log-uniform: loss floors span orders of magnitude across real paths.
    rand_p = float(np.exp(rng.uniform(np.log(rlo), np.log(rhi))))
    return PathLossModel(
        rtt=path.base_rtt,
        episode_rate=rate,
        episode_mean_duration=max(duration_floor, duration_rtt_fraction * path.base_rtt),
        episode_drop_prob=drop_p,
        random_loss_prob=rand_p,
    )
