"""Sharded-campaign smoke test (the ``make campaign-smoke`` target).

Runs a ~50-site sharded campaign end to end, SIGKILLs the live
supervisor (taking its worker processes with it) partway through, then
resumes from the on-disk shard ledger and asserts the recovered
campaign is *byte-identical* to the uninterrupted reference — all under
an explicit wall-clock budget::

    PYTHONPATH=src python -m repro.internet.smoke

Legs exercised:

1. **Clean reference** — the campaign completes with every shard done
   and real gap content in the streaming reducer.
2. **Kill + resume** — a second campaign over a fresh state directory is
   SIGKILLed mid-run (after some shards have landed, before all have);
   the resume replays done shards from their fingerprinted records and
   re-runs only the rest, converging to the reference fingerprint.
3. **Budget** — the whole smoke (both campaigns + the kill dance) fits
   the wall-clock budget; the shard throughput is printed for the bench
   trajectory to cross-check.

Exits nonzero (an ``AssertionError``) on any failure.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.faults.resilient import RetryPolicy
from repro.internet.probe import ProbeConfig
from repro.internet.supervisor import SupervisorConfig, run_sharded_campaign

#: Smoke-run sizing: ~50 sites as the ISSUE's planetary-scale stand-in,
#: capped to a path budget that keeps the lane comfortably inside CI.
SEED = 2006
SITES = 50
SHARDS = 16
PATHS = 1200
PROBE = ProbeConfig(duration=30.0)
WALL_BUDGET_S = 120.0


def _config() -> SupervisorConfig:
    return SupervisorConfig(
        workers=2,
        hang_timeout=5.0,
        retry=RetryPolicy(retries=2, base=0.01, max_delay=0.1),
    )


def _run(state_dir: Path, resume: bool = False):
    return run_sharded_campaign(
        n_sites=SITES,
        n_shards=SHARDS,
        state_dir=state_dir,
        seed=SEED,
        n_paths=PATHS,
        probe_config=PROBE,
        resume=resume,
        config=_config(),
    )


def _child_main(state_dir: str) -> None:
    """Victim supervisor: runs the campaign until killed from outside."""
    try:
        _run(Path(state_dir))
    except Exception:  # pragma: no cover - the parent only SIGKILLs
        os._exit(1)


def check_clean_reference(tmp: Path) -> str:
    """Leg 1: uninterrupted campaign -> complete, with gap content."""
    res = _run(tmp / "clean")
    assert res.status == "COMPLETE", res.summary()
    assert res.n_experiments == PATHS, res.summary()
    assert not res.quarantined
    assert res.histogram.n > 0, "campaign produced no loss-gap content"
    return res.fingerprint()


def check_kill_and_resume(tmp: Path, reference: str) -> int:
    """Leg 2: SIGKILL the supervisor mid-run, resume, compare bytes."""
    state = tmp / "killed"
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_child_main, args=(str(state),), daemon=False)
    child.start()
    # Kill once some — but not all — shards are durably in the ledger
    # (the supervisor only trusts ledger records on resume, so polling
    # loose shard files would race the parent's append).
    ledger = state / "shards.jsonl"
    deadline = time.monotonic() + WALL_BUDGET_S

    def ledger_records() -> int:
        try:
            return max(0, ledger.read_text().count("\n") - 1)  # minus meta
        except OSError:
            return 0

    while time.monotonic() < deadline and child.is_alive():
        if ledger_records() >= 2:
            break
        time.sleep(0.01)
    assert child.is_alive(), "campaign finished before the kill landed"
    os.kill(child.pid, signal.SIGKILL)
    child.join(timeout=30.0)
    assert child.exitcode == -signal.SIGKILL

    resumed = _run(state, resume=True)
    assert resumed.status == "COMPLETE", resumed.summary()
    n_resumed = resumed.meta["resumed"]
    assert 1 <= n_resumed < SHARDS, (
        f"kill landed outside the useful window: resumed {n_resumed}/{SHARDS}"
    )
    assert resumed.fingerprint() == reference, (
        "resumed campaign is not bit-identical to the clean reference"
    )
    return n_resumed


def main() -> int:
    """Run every leg; print a one-line verdict per leg."""
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        fp = check_clean_reference(tmp)
        print(f"[campaign] clean {SITES}-site/{PATHS}-path reference ok "
              f"(fingerprint {fp[:12]}...)")
        n_resumed = check_kill_and_resume(tmp, fp)
        print(f"[campaign] SIGKILL+resume bit-identical ok "
              f"({n_resumed}/{SHARDS} shards replayed from disk)")
    elapsed = time.monotonic() - t0
    assert elapsed < WALL_BUDGET_S, (
        f"smoke took {elapsed:.1f}s, budget is {WALL_BUDGET_S:.0f}s"
    )
    # Two campaigns minus the replayed shards actually probed paths.
    probed = PATHS + PATHS * (SHARDS - n_resumed) // SHARDS
    print(f"[campaign] all legs passed in {elapsed:.1f}s "
          f"({probed / elapsed:,.0f} paths/sec through the supervisor)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by `make campaign-smoke`
    sys.exit(main())
