"""Short-flow churn: slow start as a loss-burst generator (paper §3.3).

"Slow start of short flows is another source of packet loss burstiness,
which is even harder to be eliminated.  A TCP flow starts with a very
small rate ... and doubles its data rate if no loss is observed.  This
process can quickly fill up the bottleneck buffer in a few round trips
and produce a large number of continuous packet losses in the router."

This workload models exactly that: flows arrive as a Poisson process,
each transfers a modest payload (mostly spent in slow start) and leaves.
The bottleneck's drop trace then shows burst clusters stamped by
slow-start overshoot even when no long-lived flow exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import Dumbbell
from repro.tcp.base import TcpSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["ChurnConfig", "FlowChurn"]


@dataclass
class ChurnConfig:
    """Short-flow arrival process."""

    arrival_rate: float = 10.0  # flows per second (Poisson)
    mean_flow_packets: float = 60.0  # lognormal mean size
    sigma_flow_packets: float = 1.0  # lognormal sigma (log-space)
    min_flow_packets: int = 4
    rtt_range: tuple[float, float] = (0.002, 0.200)
    sender_cls: Type[TcpSender] = NewRenoSender
    flow_id_base: int = 50_000

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.mean_flow_packets < self.min_flow_packets:
            raise ValueError("mean flow size below the minimum")


class FlowChurn:
    """Drives Poisson short-flow arrivals onto a dumbbell.

    Host pairs are pre-created (round-robin reuse across arrivals keeps
    the topology bounded); each arrival starts a fresh transfer with a
    slow-start phase that dominates its life.
    """

    def __init__(
        self,
        sim: Simulator,
        dumbbell: Dumbbell,
        streams: RngStreams,
        config: Optional[ChurnConfig] = None,
        n_host_pairs: int = 32,
    ):
        if n_host_pairs <= 0:
            raise ValueError("need at least one host pair")
        self.sim = sim
        self.db = dumbbell
        self.config = config or ChurnConfig()
        self.streams = streams
        rtt_rng = streams.stream("churn-rtts")
        lo, hi = self.config.rtt_range
        self.pairs = [
            dumbbell.add_pair(rtt=float(rtt_rng.uniform(lo, hi)), name=f"churn{i}")
            for i in range(n_host_pairs)
        ]
        self._arrival_rng = streams.stream("churn-arrivals")
        self._size_rng = streams.stream("churn-sizes")
        self._next_fid = self.config.flow_id_base
        self.flows_started = 0
        self.flows_completed = 0
        self._stopped = False

    def start(self, at: float = 0.0) -> None:
        """Begin operating at absolute simulation time ``at``."""
        self.sim.schedule_at(at + self._next_gap(), self._arrive)

    def stop(self) -> None:
        """Stop operating and cancel any pending timers."""
        self._stopped = True

    def _next_gap(self) -> float:
        return float(self._arrival_rng.exponential(1.0 / self.config.arrival_rate))

    def _draw_size(self) -> int:
        cfg = self.config
        # Lognormal with the requested linear-space mean.
        mu = np.log(cfg.mean_flow_packets) - cfg.sigma_flow_packets**2 / 2.0
        size = int(self._size_rng.lognormal(mu, cfg.sigma_flow_packets))
        return max(cfg.min_flow_packets, size)

    def _arrive(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        pair = self.pairs[self.flows_started % len(self.pairs)]
        fid = self._next_fid
        self._next_fid += 1
        size = self._draw_size()

        def finished(_t, _pair=pair, _fid=fid):
            """Callback bookkeeping for one completed flow."""
            self.flows_completed += 1
            _pair.left.detach(_fid)
            _pair.right.detach(_fid)

        snd = cfg.sender_cls(
            self.sim, pair.left, fid, pair.right.node_id,
            total_packets=size, on_complete=finished,
        )
        TcpSink(self.sim, pair.right, fid, pair.left.node_id)
        snd.start(self.sim.now)
        self.flows_started += 1
        self.sim.schedule(self._next_gap(), self._arrive)
