"""GridFTP/GFS-style parallel chunked transfers (paper §4.2, Figure 8).

A fixed payload is split into equal chunks, one per flow; all flows start
together over the shared dumbbell, and the transfer completes when the
*slowest* flow finishes — which is why a few flows entering congestion
avoidance prematurely (after losing slow-start packets the other flows
never saw) dominates the completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Type

import numpy as np

from repro.apps.latency import lower_bound
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.tcp.base import TcpSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sink import TcpSink

__all__ = ["ParallelTransferConfig", "ParallelTransferResult", "ParallelTransfer"]


@dataclass
class ParallelTransferConfig:
    """Workload definition.

    Defaults mirror the paper: 64 MB split evenly, TCP NewReno flows.
    """

    total_bytes: int = 64 * 2**20
    n_flows: int = 8
    packet_size: int = 1000
    sender_cls: Type[TcpSender] = NewRenoSender
    sender_kwargs: dict = field(default_factory=dict)
    flow_id_base: int = 1000

    def __post_init__(self):
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if self.n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")

    @property
    def packets_per_flow(self) -> int:
        """Equal chunking in whole packets (the last partial packet rounds
        up, as a real chunked transfer would pad or carry a short tail)."""
        per_flow_bytes = self.total_bytes / self.n_flows
        return max(1, int(np.ceil(per_flow_bytes / self.packet_size)))


@dataclass
class ParallelTransferResult:
    """Outcome of one parallel transfer."""

    config: ParallelTransferConfig
    rtt: float
    capacity_bps: float
    completion_times: list[float]  # per-flow, seconds from start
    start_time: float
    finished: bool
    timeouts: int
    retransmissions: int

    @property
    def makespan(self) -> float:
        """Slowest flow's completion (the application's latency)."""
        if not self.finished:
            return float("inf")
        return max(self.completion_times) - self.start_time

    @property
    def bound(self) -> float:
        """Theoretic lower bound on completion time (seconds)."""
        return lower_bound(self.config.total_bytes, self.capacity_bps)

    @property
    def normalized_latency(self) -> float:
        """Makespan over the theoretic lower bound (Figure 8's Y-axis)."""
        return self.makespan / self.bound

    @property
    def flow_spread(self) -> float:
        """Slowest minus fastest flow completion: the desynchronization
        the paper attributes to bursty loss in slow start."""
        if not self.finished:
            return float("inf")
        return max(self.completion_times) - min(self.completion_times)


class ParallelTransfer:
    """Wire a parallel transfer onto an existing dumbbell and run it."""

    def __init__(
        self,
        sim: Simulator,
        dumbbell: Dumbbell,
        rtt: float,
        config: Optional[ParallelTransferConfig] = None,
    ):
        self.sim = sim
        self.db = dumbbell
        self.rtt = rtt
        self.config = config or ParallelTransferConfig()
        self.senders: list[TcpSender] = []
        self.sinks: list[TcpSink] = []
        self._completions: list[float] = []
        self._wire()

    def _wire(self) -> None:
        cfg = self.config
        per_flow = cfg.packets_per_flow
        for i in range(cfg.n_flows):
            pair = self.db.add_pair(rtt=self.rtt, name=f"pt{i}")
            fid = cfg.flow_id_base + i
            kwargs = dict(cfg.sender_kwargs)
            snd = cfg.sender_cls(
                self.sim,
                pair.left,
                fid,
                pair.right.node_id,
                total_packets=per_flow,
                packet_size=cfg.packet_size,
                on_complete=self._completions.append,
                **kwargs,
            )
            sink = TcpSink(self.sim, pair.right, fid, pair.left.node_id)
            self.senders.append(snd)
            self.sinks.append(sink)

    def run(self, start: float = 0.0, horizon: float = 600.0) -> ParallelTransferResult:
        """Start all flows at ``start`` and run until all complete (or the
        horizon passes)."""
        for snd in self.senders:
            snd.start(start)
        self.sim.run(until=start + horizon)
        finished = len(self._completions) == self.config.n_flows
        return ParallelTransferResult(
            config=self.config,
            rtt=self.rtt,
            capacity_bps=self.db.capacity_bps,
            completion_times=list(self._completions),
            start_time=start,
            finished=finished,
            timeouts=sum(s.stats.timeouts for s in self.senders),
            retransmissions=sum(s.stats.retransmissions for s in self.senders),
        )
