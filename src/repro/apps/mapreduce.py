"""MapReduce shuffle over a complete traffic graph (paper future work).

The paper closes with: "We plan to simulate more complicate scenarios such
as a complete graph topology in MapReduce [7]."  This module builds that
scenario: M mappers each send a partition to every one of R reducers over
a star network, so each reducer's downlink carries an M-to-1 incast.  The
shuffle finishes when the LAST partition lands — the same slowest-flow
amplification as the paper's Figure 8, but with R concurrent bottlenecks.

Because the downlinks drop in sub-RTT bursts, which mapper flows stall is
lottery-like; the interesting output is the shuffle's *makespan spread*
across seeds under window-based vs rate-based senders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import Star, StarConfig, StarHost, build_star
from repro.tcp.base import TcpSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.pacing import PacedSender
from repro.tcp.sink import TcpSink

__all__ = ["ShuffleConfig", "ShuffleResult", "MapReduceShuffle"]


@dataclass
class ShuffleConfig:
    """Shuffle workload definition."""

    n_mappers: int = 4
    n_reducers: int = 4
    bytes_per_partition: int = 1 * 2**20  # per mapper->reducer transfer
    packet_size: int = 1000
    sender_cls: Type[TcpSender] = NewRenoSender
    host_delay: float = 0.0005  # one-way to the switch (1ms-RTT fabric... per hop pair)
    downlink_rate_bps: float = 100e6
    buffer_pkts: int = 64

    def __post_init__(self):
        if self.n_mappers <= 0 or self.n_reducers <= 0:
            raise ValueError("need at least one mapper and one reducer")
        if self.bytes_per_partition <= 0:
            raise ValueError("bytes_per_partition must be positive")

    @property
    def packets_per_partition(self) -> int:
        """Partition size in whole packets (rounded up)."""
        return max(1, int(np.ceil(self.bytes_per_partition / self.packet_size)))

    @property
    def reducer_bound_seconds(self) -> float:
        """Time a fully-utilized downlink needs for one reducer's input."""
        total = self.n_mappers * self.bytes_per_partition
        return total * 8.0 / self.downlink_rate_bps


@dataclass
class ShuffleResult:
    """Outcome of one shuffle."""

    config: ShuffleConfig
    flow_completions: dict[tuple[int, int], float]  # (mapper, reducer) -> time
    start_time: float
    finished: bool
    drops: int

    @property
    def makespan(self) -> float:
        """Transfer duration of the slowest flow (inf if unfinished)."""
        if not self.finished:
            return float("inf")
        return max(self.flow_completions.values()) - self.start_time

    @property
    def normalized_latency(self) -> float:
        """Makespan over the per-reducer downlink bound (Figure 8's
        normalization, applied to the shuffle)."""
        return self.makespan / self.config.reducer_bound_seconds

    def reducer_completion(self, reducer: int) -> float:
        """When the given reducer received its last partition."""
        times = [
            t for (m, r), t in self.flow_completions.items() if r == reducer
        ]
        return max(times) - self.start_time if times else float("inf")

    @property
    def straggler_spread(self) -> float:
        """Slowest minus fastest reducer completion — shuffle skew."""
        if not self.finished:
            return float("inf")
        comps = [self.reducer_completion(r) for r in range(self.config.n_reducers)]
        return max(comps) - min(comps)


class MapReduceShuffle:
    """Build the complete M x R shuffle on a star and run it."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[ShuffleConfig] = None,
        streams: Optional[RngStreams] = None,
    ):
        self.sim = sim
        self.config = config or ShuffleConfig()
        self.streams = streams or RngStreams(0)
        cfg = self.config
        self.star: Star = build_star(
            sim,
            StarConfig(
                access_rate_bps=max(1e9, cfg.downlink_rate_bps),
                downlink_rate_bps=cfg.downlink_rate_bps,
                buffer_pkts=cfg.buffer_pkts,
                packet_size=cfg.packet_size,
            ),
        )
        self.mappers: list[StarHost] = [
            self.star.add_host(cfg.host_delay, name=f"map{i}")
            for i in range(cfg.n_mappers)
        ]
        self.reducers: list[StarHost] = [
            self.star.add_host(cfg.host_delay, name=f"red{j}")
            for j in range(cfg.n_reducers)
        ]
        self.senders: dict[tuple[int, int], TcpSender] = {}
        self._completions: dict[tuple[int, int], float] = {}
        self._wire()

    def _flow_id(self, mapper: int, reducer: int) -> int:
        return 10_000 + mapper * 1_000 + reducer

    def _wire(self) -> None:
        cfg = self.config
        for m, mh in enumerate(self.mappers):
            for r, rh in enumerate(self.reducers):
                fid = self._flow_id(m, r)
                rtt = self.star.rtt(mh, rh)
                kwargs = {}
                if cfg.sender_cls is PacedSender:
                    kwargs["base_rtt"] = rtt
                key = (m, r)
                snd = cfg.sender_cls(
                    self.sim,
                    mh.host,
                    fid,
                    rh.host.node_id,
                    total_packets=cfg.packets_per_partition,
                    packet_size=cfg.packet_size,
                    on_complete=lambda t, _key=key: self._completions.__setitem__(_key, t),
                    **kwargs,
                )
                TcpSink(self.sim, rh.host, fid, mh.host.node_id)
                self.senders[key] = snd

    def run(self, start: float = 0.0, horizon: float = 600.0) -> ShuffleResult:
        """Start every partition transfer (with a little launch jitter) and
        run until the shuffle completes or the horizon passes."""
        jitter = self.streams.stream("launch-jitter")
        for snd in self.senders.values():
            snd.start(start + float(jitter.uniform(0.0, 0.005)))
        n_flows = len(self.senders)
        t = start
        step = max(0.25, self.config.reducer_bound_seconds / 4.0)
        while t < start + horizon and len(self._completions) < n_flows:
            t += step
            self.sim.run(until=t)
        drops = sum(len(h.drop_trace) for h in self.reducers)
        return ShuffleResult(
            config=self.config,
            flow_completions=dict(self._completions),
            start_time=start,
            finished=len(self._completions) == n_flows,
            drops=drops,
        )
