"""Distributed-application models.

:class:`ParallelTransfer` reproduces the paper's GridFTP/GFS workload —
a payload split into equal chunks over N parallel TCP flows, latency
defined by the slowest flow — and :mod:`repro.apps.latency` provides the
theoretic lower bound used to normalize Figure 8.
"""

from repro.apps.churn import ChurnConfig, FlowChurn
from repro.apps.latency import LatencyStats, lower_bound, summarize_latencies
from repro.apps.mapreduce import MapReduceShuffle, ShuffleConfig, ShuffleResult
from repro.apps.parallel_transfer import (
    ParallelTransfer,
    ParallelTransferConfig,
    ParallelTransferResult,
)

__all__ = [
    "ChurnConfig",
    "FlowChurn",
    "LatencyStats",
    "MapReduceShuffle",
    "ParallelTransfer",
    "ParallelTransferConfig",
    "ParallelTransferResult",
    "ShuffleConfig",
    "ShuffleResult",
    "lower_bound",
    "summarize_latencies",
]
