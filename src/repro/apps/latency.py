"""Transfer-latency bounds and normalization (paper §4.2, Figure 8).

The paper normalizes parallel-transfer completion times by the theoretic
lower bound — the time a fully-utilized bottleneck needs to carry the
payload ("In the 100Mbps network, the theoretic lower bound of completion
time of a 64MB transfer is 5.39 seconds").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["lower_bound", "LatencyStats", "summarize_latencies"]


def lower_bound(total_bytes: int, capacity_bps: float, rtt: float = 0.0) -> float:
    """Theoretic lower bound on completion time.

    ``total_bytes * 8 / capacity`` plus one propagation RTT for the last
    packet's delivery and initial handshake-free start (the paper's 5.39 s
    for 64 MB at 100 Mbps corresponds to the bandwidth term of 5.37 s plus
    a small constant; pass ``rtt=0`` to get the pure bandwidth bound).
    """
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if rtt < 0:
        raise ValueError(f"rtt must be non-negative, got {rtt}")
    return total_bytes * 8.0 / capacity_bps + rtt


@dataclass
class LatencyStats:
    """Normalized-latency statistics over repetitions of one configuration."""

    n_flows: int
    rtt: float
    mean: float  # mean normalized latency (completion / lower bound)
    std: float
    min: float
    max: float
    samples: np.ndarray

    @property
    def unpredictable(self) -> bool:
        """High run-to-run variability (the paper's RTT=200ms, 4-flow cell
        has a standard deviation too large to plot)."""
        return self.std > 0.5 * self.mean


def summarize_latencies(
    n_flows: int, rtt: float, normalized: np.ndarray
) -> LatencyStats:
    """Build stats from repeated normalized-latency samples."""
    x = np.asarray(normalized, dtype=np.float64)
    if len(x) == 0:
        raise ValueError("no latency samples")
    if np.any(x < 1.0 - 1e-6):
        raise ValueError("normalized latency below the lower bound: check wiring")
    return LatencyStats(
        n_flows=n_flows,
        rtt=rtt,
        mean=float(x.mean()),
        std=float(x.std()),
        min=float(x.min()),
        max=float(x.max()),
        samples=x,
    )
