"""Dummynet-equivalent emulation substrate (paper §3.1, Figure 3).

A non-ideal bottleneck: 1 ms clock quantization on drop timestamps,
random per-packet processing noise, and the paper's four fixed RTT
classes (2, 10, 50, 200 ms).
"""

from repro.emulation.clock import QuantizedClock, quantize
from repro.emulation.dummynet import (
    RTT_CLASSES,
    DummynetConfig,
    NoisyLink,
    QuantizedDropTrace,
    build_dummynet_dumbbell,
)

__all__ = [
    "DummynetConfig",
    "NoisyLink",
    "QuantizedClock",
    "QuantizedDropTrace",
    "RTT_CLASSES",
    "build_dummynet_dumbbell",
    "quantize",
]
