"""Quantized clocks.

The paper's Dummynet router runs FreeBSD with a 1 ms system clock ("all
Dummynet records have a resolution of 1ms"), so the emulation substrate
quantizes both trace timestamps and (optionally) timer firings.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["QuantizedClock", "quantize"]


def quantize(t: float | np.ndarray, resolution: float):
    """Floor ``t`` to a multiple of ``resolution`` (vectorized)."""
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    return np.floor(np.asarray(t) / resolution) * resolution


class QuantizedClock:
    """Read-side clock wrapper with a fixed tick resolution.

    Wraps a simulator so reads return the latest tick boundary, mimicking
    an OS that timestamps events with a coarse jiffy counter.
    """

    def __init__(self, sim, resolution: float = 1e-3):
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.sim = sim
        self.resolution = float(resolution)

    @property
    def now(self) -> float:
        """Current time floored to the clock resolution."""
        return math.floor(self.sim.now / self.resolution) * self.resolution
