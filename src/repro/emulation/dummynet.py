"""Dummynet-equivalent emulation substrate.

The paper's second environment (§3.1) is a Dummynet testbed: the Figure 1
dumbbell, but (a) the traffic uses only four RTT classes — 2, 10, 50,
200 ms; (b) the router is a real FreeBSD box whose packet processing adds
noise; (c) drop timestamps have 1 ms resolution.

This module reproduces those three non-idealities on top of
:mod:`repro.sim`:

* :class:`QuantizedDropTrace` floors record timestamps to the clock tick;
* :class:`NoisyLink` adds random per-packet processing time before
  transmission (an emulation artifact, not a queueing property);
* :func:`build_dummynet_dumbbell` assembles the four-class topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.emulation.clock import quantize
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.sim.trace import DropTrace

__all__ = [
    "QuantizedDropTrace",
    "NoisyLink",
    "DummynetConfig",
    "build_dummynet_dumbbell",
    "RTT_CLASSES",
]

#: The paper's four emulated RTT classes (seconds).
RTT_CLASSES = (0.002, 0.010, 0.050, 0.200)


class QuantizedDropTrace(DropTrace):
    """Drop trace whose timestamps are floored to the clock resolution."""

    def __init__(self, resolution: float = 1e-3, name: str = "drops"):
        super().__init__(name=name)
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.resolution = float(resolution)

    def record(self, pkt: Packet, now: float, marked: bool = False) -> None:
        """Append one record at the given timestamp."""
        super().record(pkt, float(quantize(now, self.resolution)), marked=marked)


class NoisyLink(Link):
    """Link with random per-packet processing delay.

    Emulates the FreeBSD forwarding path: each packet occupies the
    transmitter for its serialization time *plus* a uniformly distributed
    processing overhead in ``[0, max_noise]`` seconds.
    """

    def __init__(self, *args, rng: np.random.Generator, max_noise: float = 200e-6, **kw):
        super().__init__(*args, **kw)
        if max_noise < 0:
            raise ValueError(f"max_noise must be non-negative, got {max_noise}")
        self.rng = rng
        self.max_noise = float(max_noise)

    def _transmit(self, pkt: Packet) -> None:
        self.busy = True
        tx_time = pkt.size * 8.0 / self.rate_bps
        if self.max_noise > 0:
            tx_time += float(self.rng.random()) * self.max_noise
        self.busy_time += tx_time
        self.sim.schedule_fast(tx_time, self._transmission_done, pkt)


@dataclass
class DummynetConfig:
    """Emulation parameters layered on :class:`repro.sim.DumbbellConfig`."""

    base: DumbbellConfig = field(default_factory=DumbbellConfig)
    clock_resolution: float = 1e-3
    processing_noise: float = 200e-6  # max per-packet overhead, seconds
    rtt_classes: tuple[float, ...] = RTT_CLASSES

    def __post_init__(self):
        if self.clock_resolution <= 0:
            raise ValueError("clock_resolution must be positive")
        if not self.rtt_classes:
            raise ValueError("need at least one RTT class")
        if any(r <= 0 for r in self.rtt_classes):
            raise ValueError("RTT classes must be positive")


def build_dummynet_dumbbell(
    sim: Simulator,
    config: Optional[DummynetConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dumbbell:
    """Build a dumbbell whose bottleneck behaves like a Dummynet pipe.

    The returned :class:`repro.sim.topology.Dumbbell` has a
    :class:`NoisyLink` forward bottleneck and a 1 ms-quantized drop trace;
    attach host pairs with ``add_pair(rtt)`` using the config's RTT classes
    (``config.rtt_classes[i % len]`` is the conventional assignment).
    """
    cfg = config or DummynetConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    db = Dumbbell(sim, cfg.base)

    qtrace = QuantizedDropTrace(cfg.clock_resolution, name="dummynet")
    noisy = NoisyLink(
        sim,
        db.right_router,
        cfg.base.bottleneck_rate_bps,
        cfg.base.bottleneck_delay,
        rng=rng,
        max_noise=cfg.processing_noise,
        queue=db.forward_queue,
        name="dummynet-pipe",
        drop_trace=qtrace,
    )
    db.bottleneck_fwd = noisy
    db.drop_trace = qtrace

    # add_pair routes via db.bottleneck_fwd, so pairs added after this swap
    # use the noisy pipe automatically.
    return db
