"""Inter-loss intervals: the paper's primary observable.

Given the timestamps of consecutive packet losses (from a router drop trace
or reconstructed from a CBR probe), the analysis object is the sequence of
*loss intervals* — gaps between consecutive losses — normalized by the
path RTT (§3.1: "we normalize the loss interval by the RTT of the path").

Everything here is NumPy-vectorized; traces with millions of drops analyze
in milliseconds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["loss_intervals", "normalize_by_rtt", "intervals_from_trace"]


def loss_intervals(times: np.ndarray) -> np.ndarray:
    """Gaps (seconds) between consecutive loss timestamps.

    ``times`` must be non-decreasing (trace order).  Zero gaps are legal —
    simultaneous drops of back-to-back packets are precisely the burstiness
    being measured — but negative gaps indicate a corrupted trace and raise.
    """
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError(f"times must be 1-D, got shape {t.shape}")
    if len(t) < 2:
        return np.empty(0, dtype=np.float64)
    gaps = np.diff(t)
    if np.any(gaps < 0):
        raise ValueError("loss timestamps are not sorted (negative interval)")
    return gaps


def normalize_by_rtt(intervals: np.ndarray, rtt: float) -> np.ndarray:
    """Express intervals in RTT units."""
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    return np.asarray(intervals, dtype=np.float64) / rtt


def intervals_from_trace(times: np.ndarray, rtt: float) -> np.ndarray:
    """Convenience: loss timestamps -> RTT-normalized intervals."""
    return normalize_by_rtt(loss_intervals(times), rtt)
