"""Gilbert–Elliott two-state Markov loss model.

The paper's future work calls for "more rigorous model[s]" of the loss
trace; the Gilbert model is the standard one for bursty packet loss.  The
chain alternates a GOOD state (losses with probability ``h_good``, usually
0) and a BAD state (losses with probability ``h_bad``, usually near 1);
``p`` is the GOOD→BAD transition probability per packet, ``r`` the
BAD→GOOD probability.  Mean burst length is ``1/r``; stationary loss rate
is ``pi_bad * h_bad + pi_good * h_good`` with ``pi_bad = p / (p + r)``.

Fitting uses maximum likelihood on the observed loss/delivery transition
counts of a binary per-packet loss sequence (the classic Gilbert fit with
``h_bad = 1``, ``h_good = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GilbertModel",
    "fit_gilbert",
    "loss_run_lengths",
    "conditional_loss_probability",
]


def conditional_loss_probability(loss_seq: np.ndarray) -> tuple[float, float]:
    """Borella-style burstiness statistic: ``(P(loss | previous lost),
    P(loss))`` from a binary per-packet loss sequence.

    For independent (Bernoulli) loss the two are equal; for bursty loss
    the conditional probability is much larger — the single-number form
    of the correlation the Gilbert model captures.  Returns NaN components
    where undefined (no packets / no losses to condition on).
    """
    x = np.asarray(loss_seq).astype(bool)
    if x.ndim != 1:
        raise ValueError(f"sequence must be 1-D, got shape {x.shape}")
    if len(x) == 0:
        return float("nan"), float("nan")
    p = float(np.mean(x))
    if len(x) < 2 or not np.any(x[:-1]):
        return float("nan"), p
    cond = float(np.mean(x[1:][x[:-1]]))
    return cond, p


@dataclass
class GilbertModel:
    """Two-state loss model parameters."""

    p: float  # GOOD -> BAD per packet
    r: float  # BAD -> GOOD per packet
    h_bad: float = 1.0  # loss probability in BAD
    h_good: float = 0.0  # loss probability in GOOD

    def __post_init__(self):
        for name in ("p", "r", "h_bad", "h_good"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.p == 0.0 and self.r == 0.0:
            raise ValueError("degenerate chain: p and r cannot both be 0")

    # -- analytic properties ------------------------------------------------
    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of packets sent in the BAD state."""
        return self.p / (self.p + self.r)

    @property
    def loss_rate(self) -> float:
        """Stationary per-packet loss probability."""
        pi_b = self.stationary_bad
        return pi_b * self.h_bad + (1.0 - pi_b) * self.h_good

    @property
    def mean_burst_length(self) -> float:
        """Expected BAD-state sojourn in packets (mean loss-burst length
        when ``h_bad`` = 1)."""
        if self.r == 0:
            return float("inf")
        return 1.0 / self.r

    # -- synthesis -------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate a binary loss sequence of length ``n`` (1 = lost).

        The chain starts in its stationary distribution.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        # Vectorized simulation: draw all uniforms, then scan the state.
        u_state = rng.random(n)
        u_loss = rng.random(n)
        losses = np.empty(n, dtype=np.int8)
        bad = bool(rng.random() < self.stationary_bad)
        p, r, hb, hg = self.p, self.r, self.h_bad, self.h_good
        for i in range(n):
            losses[i] = 1 if u_loss[i] < (hb if bad else hg) else 0
            if bad:
                if u_state[i] < r:
                    bad = False
            else:
                if u_state[i] < p:
                    bad = True
        return losses


def loss_run_lengths(loss_seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lengths of consecutive-loss runs and consecutive-delivery runs."""
    x = np.asarray(loss_seq).astype(bool)
    if x.ndim != 1:
        raise ValueError(f"sequence must be 1-D, got shape {x.shape}")
    if len(x) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # Run-length encode.
    change = np.flatnonzero(np.diff(x.astype(np.int8))) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(x)]))
    lengths = ends - starts
    values = x[starts]
    return lengths[values], lengths[~values]


def fit_gilbert(loss_seq: np.ndarray) -> GilbertModel:
    """Maximum-likelihood Gilbert fit (``h_bad=1, h_good=0``) from a binary
    per-packet loss sequence.

    ``p`` = P(next lost | delivered) and ``r`` = P(next delivered | lost),
    estimated from transition counts.
    """
    x = np.asarray(loss_seq).astype(bool)
    if len(x) < 2:
        raise ValueError(f"need at least 2 packets, got {len(x)}")
    prev, nxt = x[:-1], x[1:]
    n_good = int(np.sum(~prev))
    n_bad = int(np.sum(prev))
    g2b = int(np.sum(~prev & nxt))
    b2g = int(np.sum(prev & ~nxt))
    if n_good == 0:
        p = 1.0  # never observed GOOD: treat as always transitioning
    else:
        p = g2b / n_good
    if n_bad == 0:
        r = 1.0  # no losses at all: BAD unreachable; r is arbitrary
    else:
        r = b2g / n_bad
    # Degenerate all-delivered / all-lost traces still produce a valid model.
    p = min(max(p, 0.0), 1.0)
    r = min(max(r, 0.0), 1.0)
    if p == 0.0 and r == 0.0:
        r = 1.0
    return GilbertModel(p=p, r=r)
