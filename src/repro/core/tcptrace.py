"""TCP-trace-based loss reconstruction — the methodology the paper rejects.

Paxson's classic loss measurements (§2) reconstruct loss events from TCP
traces: every retransmission is taken as evidence of a loss, timed at (or
one RTT before) the retransmission.  The paper's critique: "since TCP
traffic itself is very bursty in sub-RTT timescale, the measurement
results from TCP traces are not able to differentiate the burstiness of
TCP packets from the burstiness of packet loss".  Its future work asks to
"compare our results with the results obtained from TCP trace analysis to
understand the extent of difference due to measurement methodology."

This module implements the TCP-trace estimator so the repository can make
that comparison quantitatively (see
:mod:`repro.experiments.methodology`): reconstruct loss times from sender
retransmission records, and diff the burstiness statistics against the
router's ground-truth drop trace and against CBR-probe measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.burstiness import BurstinessSummary, burstiness_summary

__all__ = [
    "reconstruct_losses_from_retransmissions",
    "MethodologyComparison",
    "compare_methodologies",
]


def reconstruct_losses_from_retransmissions(
    retx_times_per_flow: dict[int, np.ndarray],
    rtt_per_flow: dict[int, float],
    back_shift_rtt: float = 1.0,
) -> np.ndarray:
    """Paxson-style loss-time estimates from sender retransmissions.

    Each retransmission at time ``t`` of a flow with RTT ``R`` is mapped to
    an estimated loss at ``t - back_shift_rtt * R`` (the drop preceded the
    detection by roughly the dupACK round trip).  Estimates from all flows
    are merged and sorted — exactly what a trace-based study can see, and
    *only* what it can see: losses of packets that some instrumented TCP
    flow happened to send.
    """
    if back_shift_rtt < 0:
        raise ValueError(f"back_shift must be non-negative, got {back_shift_rtt}")
    parts = []
    for fid, times in retx_times_per_flow.items():
        t = np.asarray(times, dtype=np.float64)
        if len(t) == 0:
            continue
        r = rtt_per_flow.get(fid)
        if r is None or r <= 0:
            raise ValueError(f"flow {fid} missing a positive RTT")
        parts.append(np.maximum(t - back_shift_rtt * r, 0.0))
    if not parts:
        return np.empty(0)
    return np.sort(np.concatenate(parts))


@dataclass
class MethodologyComparison:
    """Burstiness of the same loss process through three instruments."""

    ground_truth: BurstinessSummary  # router drop trace
    tcp_trace: BurstinessSummary  # reconstructed from retransmissions
    cbr_probe: BurstinessSummary  # measured by a CBR probe flow

    def frac_001_errors(self) -> tuple[float, float]:
        """Absolute error of each methodology's sub-0.01-RTT mass against
        the router ground truth: (tcp_trace_error, cbr_error)."""
        gt = self.ground_truth.frac_within_001
        return (
            abs(self.tcp_trace.frac_within_001 - gt),
            abs(self.cbr_probe.frac_within_001 - gt),
        )

    def event_count_errors(self) -> tuple[float, float]:
        """Relative error of each methodology's *congestion-event count*
        (1-RTT burst clusters) against the ground truth.

        This is where the instruments genuinely differ: a CBR probe
        undersamples packets but samples *time* evenly, so it sees almost
        every congestion event exactly once; TCP-trace reconstruction
        smears each event across the flows' multi-RTT recoveries, merging
        and double-counting events.
        """
        gt = max(1, self.ground_truth.n_bursts)
        return (
            abs(self.tcp_trace.n_bursts - gt) / gt,
            abs(self.cbr_probe.n_bursts - gt) / gt,
        )

    def to_text(self) -> str:
        """Render the paper-shaped text block for this result."""
        from repro.core.report import format_table

        rows = []
        for label, s in (
            ("router (truth)", self.ground_truth),
            ("tcp-trace", self.tcp_trace),
            ("cbr-probe", self.cbr_probe),
        ):
            rows.append([
                label, s.n_losses, round(s.frac_within_001, 3),
                round(s.frac_within_1, 3), round(s.cv, 1),
                s.n_bursts, round(s.mean_burst_size, 1),
            ])
        e_tcp, e_cbr = self.frac_001_errors()
        ev_tcp, ev_cbr = self.event_count_errors()
        head = format_table(
            ["instrument", "losses", "<0.01 RTT", "<1 RTT", "CV", "events", "burst"],
            rows,
            title="Measurement methodology — same loss process, three instruments",
        )
        return head + (
            f"\nsub-0.01-RTT mass error vs truth: tcp-trace {e_tcp:.3f}, "
            f"cbr-probe {e_cbr:.3f}"
            f"\ncongestion-event count error:     tcp-trace {ev_tcp:.2f}, "
            f"cbr-probe {ev_cbr:.2f}"
        )


def compare_methodologies(
    router_drop_times: np.ndarray,
    tcp_estimated_times: np.ndarray,
    cbr_loss_times: np.ndarray,
    rtt: float,
) -> MethodologyComparison:
    """Summarize all three instruments with a common RTT normalization."""
    return MethodologyComparison(
        ground_truth=burstiness_summary(np.asarray(router_drop_times), rtt),
        tcp_trace=burstiness_summary(np.asarray(tcp_estimated_times), rtt),
        cbr_probe=burstiness_summary(np.asarray(cbr_loss_times), rtt),
    )
