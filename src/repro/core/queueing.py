"""Analytic M/M/1/K references for simulator validation.

The paper's argument leans on a simulated DropTail queue behaving like a
real finite FIFO.  This module provides the closed-form M/M/1/K results —
blocking probability, queue-length distribution, mean occupancy — used by
the validation tests to check the simulator's loss rate against theory
when driven with Poisson arrivals and (approximately) exponential service.

For ``rho = lambda/mu`` and buffer ``K`` (packets, including the one in
service):

    P[n]     = rho^n (1 - rho) / (1 - rho^(K+1))          (rho != 1)
    P_block  = P[K]
    E[N]     = sum n P[n]
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mm1k_distribution",
    "mm1k_blocking_probability",
    "mm1k_mean_occupancy",
    "mm1_utilization",
]


def mm1k_distribution(rho: float, k: int) -> np.ndarray:
    """Stationary occupancy distribution P[0..K] of an M/M/1/K queue."""
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    if k < 1:
        raise ValueError(f"K must be >= 1, got {k}")
    n = np.arange(k + 1)
    if abs(rho - 1.0) < 1e-12:
        return np.full(k + 1, 1.0 / (k + 1))
    p = rho**n * (1.0 - rho) / (1.0 - rho ** (k + 1))
    return p


def mm1k_blocking_probability(rho: float, k: int) -> float:
    """Probability an arrival finds the buffer full (loss rate)."""
    return float(mm1k_distribution(rho, k)[-1])


def mm1k_mean_occupancy(rho: float, k: int) -> float:
    """Expected number of packets in the system."""
    p = mm1k_distribution(rho, k)
    return float(np.dot(np.arange(k + 1), p))


def mm1_utilization(rho: float, k: int) -> float:
    """Server utilization: carried load = rho * (1 - P_block)."""
    return float(min(1.0, rho * (1.0 - mm1k_blocking_probability(rho, k))))
