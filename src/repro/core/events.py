"""Loss-event clustering.

A *loss event* (congestion event) is a maximal cluster of packet losses
whose onset lies within one RTT of the event's first loss — the unit at
which congestion control reacts (one window halving per event, one TFRC
loss interval per event).  The paper's Figures 5/6 reason about which flows
*detect* each event; :mod:`repro.core.detection` quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LossEvent",
    "cluster_loss_events",
    "event_spans",
    "distinct_flows_per_event",
    "event_sizes",
    "losses_per_event",
]


@dataclass
class LossEvent:
    """A congestion event: losses starting within one RTT window."""

    start: float
    end: float
    count: int
    flow_ids: np.ndarray  # flows that lost at least one packet in the event

    @property
    def duration(self) -> float:
        """Span in seconds from first to last element."""
        return self.end - self.start

    @property
    def n_flows_hit(self) -> int:
        """Number of distinct flows that lost a packet in this event."""
        return len(self.flow_ids)


def event_spans(times: np.ndarray, rtt: float) -> np.ndarray:
    """Event boundary indices for a sorted loss-timestamp array.

    Returns an int64 array ``b`` of length ``n_events + 1`` such that event
    ``j`` covers records ``b[j]:b[j+1]``.  Each event is the maximal prefix
    within ``[t[i], t[i] + rtt]``.  All window boundaries are found with a
    single vectorized ``searchsorted(t, t + rtt)`` (one C-level pass,
    O(N log N)); the event chain is then just the orbit of ``i -> nxt[i]``
    starting at 0, an O(E) walk.  This replaced a per-event Python loop of
    ``searchsorted`` calls whose interpreter call overhead dominated for
    bursty traces (thousands of events per trace).  This is the
    index-level primitive behind :func:`cluster_loss_events`; vectorized
    analyses (e.g. the Eq. 1–2 detection counts) work directly on these
    spans without building per-event objects.
    """
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    t = np.asarray(times, dtype=np.float64)
    if len(t) == 0:
        return np.zeros(1, dtype=np.int64)
    if np.any(np.diff(t) < 0):
        raise ValueError("timestamps not sorted")
    nxt = np.searchsorted(t, t + rtt, side="right")
    bounds = [0]
    n = len(t)
    i = 0
    while i < n:
        i = int(nxt[i])
        bounds.append(i)
    return np.asarray(bounds, dtype=np.int64)


def distinct_flows_per_event(
    spans: np.ndarray,
    flow_ids: np.ndarray,
    record_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Distinct-flow count per event, vectorized.

    ``spans`` is the boundary array from :func:`event_spans`; ``flow_ids``
    gives the flow id of each record.  With ``record_mask``, only records
    where the mask is True contribute (e.g. restrict to one traffic class).
    Returns an int64 array of length ``n_events``.

    Implementation: each record gets its event index via ``np.repeat``;
    distinct (event, flow) pairs are identified by the combined key
    ``event_index * flow_range + flow_offset`` — no Python loop over
    events.  When the (events x flow-range) grid is modest the pairs are
    marked in a dense boolean grid (one O(N) scatter plus an O(grid)
    row-sum, no sort); otherwise the keys are uniquified with a
    sort-based ``np.unique`` and binned, which handles arbitrarily
    sparse flow-id spaces at O(N log N).
    """
    spans = np.asarray(spans, dtype=np.int64)
    n_events = len(spans) - 1
    fids = np.asarray(flow_ids, dtype=np.int64)
    eidx = np.repeat(np.arange(n_events, dtype=np.int64), np.diff(spans))
    if record_mask is not None:
        mask = np.asarray(record_mask, dtype=bool)
        eidx = eidx[mask]
        fids = fids[mask]
    if len(fids) == 0:
        return np.zeros(n_events, dtype=np.int64)
    fmin = int(fids.min())
    span = int(fids.max()) - fmin + 1
    key = eidx * span + (fids - fmin)
    grid = n_events * span
    if grid <= max(1 << 20, 8 * len(fids)):
        seen = np.zeros(grid, dtype=bool)
        seen[key] = True
        return seen.reshape(n_events, span).sum(axis=1, dtype=np.int64)
    events_of_pairs = np.unique(key) // span
    return np.bincount(events_of_pairs, minlength=n_events).astype(np.int64)


def cluster_loss_events(
    times: np.ndarray,
    rtt: float,
    flow_ids: np.ndarray | None = None,
) -> list[LossEvent]:
    """Group loss timestamps into events.

    A loss begins a new event when it falls more than ``rtt`` seconds after
    the *start* of the current event (TFRC's definition, which the paper's
    sub-RTT analysis follows): every event spans at most one RTT.
    """
    t = np.asarray(times, dtype=np.float64)
    if flow_ids is not None:
        fids = np.asarray(flow_ids)
        if fids.shape != t.shape:
            raise ValueError("flow_ids must match times in shape")
    else:
        fids = np.full(t.shape, -1, dtype=np.int64)
    spans = event_spans(t, rtt)
    if len(t) == 0:
        return []
    return [
        LossEvent(
            start=float(t[s]),
            end=float(t[e - 1]),
            count=int(e - s),
            flow_ids=np.unique(fids[s:e]),
        )
        for s, e in zip(spans[:-1], spans[1:])
    ]


def event_sizes(events: list[LossEvent]) -> np.ndarray:
    """Number of dropped packets per event (the paper's ``M``)."""
    return np.asarray([e.count for e in events], dtype=np.int64)


def losses_per_event(events: list[LossEvent]) -> float:
    """Mean packets dropped per congestion event.

    Near 1 for a Poisson-like loss process at low rate; large under the
    DropTail burstiness the paper measures.
    """
    if not events:
        return float("nan")
    return float(event_sizes(events).mean())
