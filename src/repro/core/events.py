"""Loss-event clustering.

A *loss event* (congestion event) is a maximal cluster of packet losses
whose onset lies within one RTT of the event's first loss — the unit at
which congestion control reacts (one window halving per event, one TFRC
loss interval per event).  The paper's Figures 5/6 reason about which flows
*detect* each event; :mod:`repro.core.detection` quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LossEvent", "cluster_loss_events", "event_sizes", "losses_per_event"]


@dataclass
class LossEvent:
    """A congestion event: losses starting within one RTT window."""

    start: float
    end: float
    count: int
    flow_ids: np.ndarray  # flows that lost at least one packet in the event

    @property
    def duration(self) -> float:
        """Span in seconds from first to last element."""
        return self.end - self.start

    @property
    def n_flows_hit(self) -> int:
        """Number of distinct flows that lost a packet in this event."""
        return len(self.flow_ids)


def cluster_loss_events(
    times: np.ndarray,
    rtt: float,
    flow_ids: np.ndarray | None = None,
) -> list[LossEvent]:
    """Group loss timestamps into events.

    A loss begins a new event when it falls more than ``rtt`` seconds after
    the *start* of the current event (TFRC's definition, which the paper's
    sub-RTT analysis follows): every event spans at most one RTT.
    """
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    t = np.asarray(times, dtype=np.float64)
    if flow_ids is not None:
        fids = np.asarray(flow_ids)
        if fids.shape != t.shape:
            raise ValueError("flow_ids must match times in shape")
    else:
        fids = np.full(t.shape, -1, dtype=np.int64)
    if len(t) == 0:
        return []
    if np.any(np.diff(t) < 0):
        raise ValueError("timestamps not sorted")

    # Each event is a maximal prefix within [t[i], t[i] + rtt]: jump to the
    # first loss beyond the window with a binary search.  O(E log N) for E
    # events — the loss-per-event factor (huge for bursty traces) is free.
    events: list[LossEvent] = []
    n = len(t)
    i = 0
    while i < n:
        end = int(np.searchsorted(t, t[i] + rtt, side="right"))
        events.append(
            LossEvent(
                start=float(t[i]),
                end=float(t[end - 1]),
                count=end - i,
                flow_ids=np.unique(fids[i:end]),
            )
        )
        i = end
    return events


def event_sizes(events: list[LossEvent]) -> np.ndarray:
    """Number of dropped packets per event (the paper's ``M``)."""
    return np.asarray([e.count for e in events], dtype=np.int64)


def losses_per_event(events: list[LossEvent]) -> float:
    """Mean packets dropped per congestion event.

    Near 1 for a Poisson-like loss process at low rate; large under the
    DropTail burstiness the paper measures.
    """
    if not events:
        return float("nan")
    return float(event_sizes(events).mean())
