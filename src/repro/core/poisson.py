"""Poisson references and statistical comparison.

The paper's argument is comparative: the measured loss process is "much
more bursty than the Poisson process with the same average arrival rate".
This module generates that reference process and provides the formal
versions of the comparison (Kolmogorov–Smirnov against the exponential,
density ratio in the smallest bin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "poisson_process",
    "exponential_ks_test",
    "first_bin_excess",
    "PoissonComparison",
    "compare_to_poisson",
]


def poisson_process(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample arrival times of a homogeneous Poisson process on [0, horizon]."""
    if rate <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    n = rng.poisson(rate * horizon)
    return np.sort(rng.uniform(0.0, horizon, size=n))


def exponential_ks_test(intervals: np.ndarray) -> tuple[float, float]:
    """KS statistic and p-value of intervals against Exp(mean=sample mean).

    Low p-values reject the Poisson hypothesis.  (With the rate estimated
    from the sample the test is approximate — fine for the paper's purpose
    of showing a *gross* departure.)
    """
    x = np.asarray(intervals, dtype=np.float64)
    if len(x) < 2:
        raise ValueError(f"need at least 2 intervals, got {len(x)}")
    m = x.mean()
    if m <= 0:
        return 1.0, 0.0
    res = stats.kstest(x, "expon", args=(0, m))
    return float(res.statistic), float(res.pvalue)


def first_bin_excess(
    intervals_rtt: np.ndarray, bin_size: float = 0.02, max_rtt: float = 2.0
) -> float:
    """Ratio of measured to Poisson density in the first PDF bin.

    This is the visual gap at x→0 in the paper's Figures 2–4, as a number:
    how many times more probable a sub-0.02-RTT loss interval is than the
    same-rate Poisson process predicts.
    """
    from repro.core.pdf import interval_pdf, poisson_reference_pdf

    p = interval_pdf(intervals_rtt, bin_size=bin_size, max_rtt=max_rtt)
    if p.n == 0:
        return float("nan")
    ref = poisson_reference_pdf(p.rate_per_rtt(), p.edges)
    if ref[0] <= 0:
        return float("inf")
    return float(p.density[0] / ref[0])


@dataclass
class PoissonComparison:
    """Result of comparing a loss process to its same-rate Poisson twin."""

    ks_statistic: float
    ks_pvalue: float
    first_bin_excess: float
    cv: float

    @property
    def rejects_poisson(self) -> bool:
        """Strong evidence the process is not Poisson."""
        return self.ks_pvalue < 0.01


def compare_to_poisson(intervals_rtt: np.ndarray) -> PoissonComparison:
    """Run the full comparison battery on RTT-normalized intervals."""
    from repro.core.burstiness import coefficient_of_variation

    x = np.asarray(intervals_rtt, dtype=np.float64)
    ks, pv = exponential_ks_test(x)
    return PoissonComparison(
        ks_statistic=ks,
        ks_pvalue=pv,
        first_bin_excess=first_bin_excess(x),
        cv=coefficient_of_variation(x),
    )
