"""Loss-interval PDFs (the paper's Figures 2–4).

The paper plots the probability density function of RTT-normalized loss
intervals with a bin size of 0.02 RTT over [0, 2] RTT, log-scale Y, next to
the PDF of a Poisson process with the same mean arrival rate (whose
interval PDF is exponential — a straight line on the log axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IntervalPdf", "interval_pdf", "poisson_reference_pdf"]

#: Paper resolution: 0.02 RTT bins over [0, 2] RTT.
DEFAULT_BIN = 0.02
DEFAULT_MAX = 2.0


@dataclass
class IntervalPdf:
    """A binned PDF of RTT-normalized loss intervals.

    ``density[i]`` is the estimated probability density over
    ``edges[i]..edges[i+1]``; ``mass[i] = density[i] * bin`` is the
    probability of that bin.  ``n`` is the total number of intervals
    (including those beyond ``edges[-1]``, which carry the residual mass).
    """

    edges: np.ndarray
    density: np.ndarray
    n: int
    mean_interval: float  # RTT units, over ALL intervals

    @property
    def centers(self) -> np.ndarray:
        """Bin midpoints (RTT units)."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def bin_width(self) -> float:
        """Width of one histogram bin (RTT units)."""
        return float(self.edges[1] - self.edges[0])

    @property
    def mass(self) -> np.ndarray:
        """Per-bin probability mass (density times bin width)."""
        return self.density * self.bin_width

    def fraction_below(self, x: float) -> float:
        """Empirical fraction of intervals strictly below ``x`` RTT.

        Computed from the binned mass (consistent with the figures): only
        bins lying entirely below ``x`` contribute, i.e. ``x`` is snapped
        *down* to the nearest bin edge (with a round-off guard so an ``x``
        meant to be an edge never loses its last bin to float error).
        Snapping up instead would overcount by up to one bin — the partial
        bin *containing* ``x`` — e.g. ``x = 0.03`` with 0.02-RTT bins
        would include intervals in ``[0.02, 0.04)``.  For sub-bin
        thresholds (the paper's "< 0.01 RTT" at 0.02-RTT bins) histogram
        at a finer ``bin_size`` or use
        :func:`repro.core.burstiness.fraction_within` on the raw
        intervals.
        """
        if self.n == 0:
            return float("nan")
        k = int(np.floor(round(x / self.bin_width, 9)))
        k = max(0, min(k, len(self.density)))
        return float(np.sum(self.mass[:k]))

    def rate_per_rtt(self) -> float:
        """Mean loss arrival rate in events per RTT (1 / mean interval)."""
        if self.mean_interval <= 0:
            return float("inf")
        return 1.0 / self.mean_interval


def interval_pdf(
    intervals_rtt: np.ndarray,
    bin_size: float = DEFAULT_BIN,
    max_rtt: float = DEFAULT_MAX,
) -> IntervalPdf:
    """Histogram RTT-normalized intervals into a PDF at paper resolution.

    Intervals beyond ``max_rtt`` fall outside the plotted range but still
    count toward ``n`` and the mean (so the Poisson reference uses the true
    rate, as in the paper).
    """
    x = np.asarray(intervals_rtt, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"intervals must be 1-D, got shape {x.shape}")
    if bin_size <= 0 or max_rtt <= 0:
        raise ValueError(f"bin_size and max_rtt must be positive")
    if np.any(x < 0):
        raise ValueError("negative intervals")
    nbins = int(round(max_rtt / bin_size))
    edges = np.linspace(0.0, nbins * bin_size, nbins + 1)
    counts, _ = np.histogram(x, bins=edges)
    n = len(x)
    density = counts / (n * bin_size) if n > 0 else counts.astype(np.float64)
    mean = float(x.mean()) if n > 0 else float("nan")
    return IntervalPdf(edges=edges, density=density, n=n, mean_interval=mean)


def poisson_reference_pdf(rate_per_rtt: float, edges: np.ndarray) -> np.ndarray:
    """Binned PDF of the Poisson process with the same mean arrival rate.

    A Poisson process's inter-arrival PDF is ``rate * exp(-rate * x)``;
    binned consistently with :func:`interval_pdf` (bin mass / bin width)
    so the two curves are directly comparable.
    """
    if rate_per_rtt <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_rtt}")
    e = np.asarray(edges, dtype=np.float64)
    # mass = exp(-r a) - exp(-r b), computed directly (not via the CDF) so
    # tail bins keep full relative precision for large rates.
    surv = np.exp(-rate_per_rtt * e)
    mass = surv[:-1] - surv[1:]
    widths = np.diff(e)
    return mass / widths
