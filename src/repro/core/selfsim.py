"""Multi-timescale burstiness: IDC curves and Hurst-exponent estimators.

The paper's future work asks for "more rigorous analysis on the burstiness
of packet loss process" beyond the PDF.  The standard instruments:

* the **index-of-dispersion-for-counts curve** IDC(T) — variance/mean of
  per-window loss counts as a function of the window size T.  A Poisson
  process is flat at 1; positively-correlated (bursty) processes grow
  with T until the correlation timescale is exhausted;
* **Hurst exponent** estimators (aggregated-variance and rescaled-range)
  for long-range dependence: H = 0.5 for Poisson, H > 0.5 for LRD traffic
  (Leland et al.'s self-similarity framework).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "idc_curve",
    "hurst_aggregated_variance",
    "hurst_rescaled_range",
    "SelfSimilarityReport",
    "self_similarity_report",
]


def _counts(times: np.ndarray, window: float, horizon: float) -> np.ndarray:
    nbins = max(1, int(horizon / window))
    c, _ = np.histogram(times, bins=nbins, range=(0.0, nbins * window))
    return c


def idc_curve(
    times: np.ndarray, windows: np.ndarray, horizon: float
) -> np.ndarray:
    """IDC(T) for each window size T (NaN where fewer than 8 windows fit)."""
    t = np.asarray(times, dtype=np.float64)
    ws = np.asarray(windows, dtype=np.float64)
    if np.any(ws <= 0) or horizon <= 0:
        raise ValueError("windows and horizon must be positive")
    out = np.full(len(ws), np.nan)
    for i, w in enumerate(ws):
        if horizon / w < 8:
            continue
        c = _counts(t, w, horizon)
        m = c.mean()
        if m > 0:
            out[i] = c.var() / m
    return out


def hurst_aggregated_variance(
    times: np.ndarray,
    horizon: float,
    base_window: float,
    n_scales: int = 6,
) -> float:
    """Hurst exponent from the aggregated-variance method.

    Counts are aggregated at windows ``base_window * 2^k``; for a
    self-similar process the variance of the *normalized* aggregated
    series scales as ``m^(2H - 2)``.  Returns NaN when the trace is too
    short to aggregate.
    """
    t = np.asarray(times, dtype=np.float64)
    if base_window <= 0 or horizon <= 0:
        raise ValueError("base_window and horizon must be positive")
    if n_scales < 2:
        raise ValueError(f"need at least 2 scales, got {n_scales}")
    log_m, log_v = [], []
    for k in range(n_scales):
        w = base_window * (2**k)
        if horizon / w < 8:
            break
        c = _counts(t, w, horizon).astype(np.float64)
        c /= w  # rate series, comparable across scales
        v = c.var()
        if v > 0:
            log_m.append(np.log(2**k))
            log_v.append(np.log(v))
    if len(log_m) < 2:
        return float("nan")
    slope = np.polyfit(log_m, log_v, 1)[0]
    return float(1.0 + slope / 2.0)


def hurst_rescaled_range(series: np.ndarray, min_chunk: int = 8) -> float:
    """Hurst exponent via the classic R/S (rescaled range) statistic.

    ``series`` is any stationary increment series (e.g. per-window loss
    counts).  Returns NaN for series too short to split.
    """
    x = np.asarray(series, dtype=np.float64)
    n = len(x)
    if min_chunk < 4:
        raise ValueError(f"min_chunk must be >= 4, got {min_chunk}")
    if n < 2 * min_chunk:
        return float("nan")
    log_n, log_rs = [], []
    size = min_chunk
    while size <= n // 2:
        m = n // size
        rs_vals = []
        for i in range(m):
            chunk = x[i * size : (i + 1) * size]
            dev = chunk - chunk.mean()
            z = np.cumsum(dev)
            r = z.max() - z.min()
            s = chunk.std()
            if s > 0:
                rs_vals.append(r / s)
        if rs_vals:
            log_n.append(np.log(size))
            log_rs.append(np.log(np.mean(rs_vals)))
        size *= 2
    if len(log_n) < 2:
        return float("nan")
    return float(np.polyfit(log_n, log_rs, 1)[0])


@dataclass
class SelfSimilarityReport:
    """Multi-timescale burstiness summary of a loss trace."""

    windows: np.ndarray
    idc: np.ndarray
    hurst_var: float
    hurst_rs: float

    @property
    def idc_growth(self) -> float:
        """IDC at the largest valid window over IDC at the smallest —
        ~1 for Poisson, large for clustered processes."""
        valid = self.idc[~np.isnan(self.idc)]
        if len(valid) < 2 or valid[0] <= 0:
            return float("nan")
        return float(valid[-1] / valid[0])

    @property
    def looks_poisson(self) -> bool:
        """True when the IDC curve stays near 1 at every scale."""
        valid = self.idc[~np.isnan(self.idc)]
        return bool(len(valid)) and bool(np.all(np.abs(valid - 1.0) < 0.5))


def self_similarity_report(
    times: np.ndarray,
    horizon: float,
    base_window: float = 0.1,
    n_scales: int = 6,
) -> SelfSimilarityReport:
    """Run the full multi-timescale battery on a loss-timestamp trace."""
    windows = base_window * (2.0 ** np.arange(n_scales))
    idc = idc_curve(times, windows, horizon)
    counts = _counts(np.asarray(times, dtype=np.float64), base_window, horizon)
    return SelfSimilarityReport(
        windows=windows,
        idc=idc,
        hurst_var=hurst_aggregated_variance(times, horizon, base_window, n_scales),
        hurst_rs=hurst_rescaled_range(counts),
    )
