"""Paper-shaped text output for figures and tables.

Benchmarks print the same rows/series the paper reports; this module holds
the shared formatting so bench output is consistent and diffable.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "format_pdf_series",
    "format_table",
    "format_series",
    "pdf_figure_text",
    "write_csv",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float) or isinstance(v, np.floating):
        if v != v:  # NaN
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_series(
    x: np.ndarray, y: np.ndarray, xlabel: str = "x", ylabel: str = "y", every: int = 1
) -> str:
    """Two-column series dump (decimated by ``every`` for long series)."""
    lines = [f"{xlabel:>12s} {ylabel:>14s}"]
    for xi, yi in zip(x[::every], y[::every]):
        lines.append(f"{xi:12.4f} {yi:14.6g}")
    return "\n".join(lines)


def format_pdf_series(
    centers: np.ndarray,
    measured: np.ndarray,
    poisson: np.ndarray,
    every: int = 5,
) -> str:
    """Figure 2/3/4-shaped dump: interval (RTT), measured PDF, Poisson PDF."""
    lines = [f"{'interval(RTT)':>14s} {'measured':>12s} {'poisson':>12s}"]
    for c, m, p in zip(centers[::every], measured[::every], poisson[::every]):
        lines.append(f"{c:14.3f} {m:12.5g} {p:12.5g}")
    return "\n".join(lines)


def write_csv(path: Union[str, Path], columns: Mapping[str, np.ndarray]) -> Path:
    """Write named, equal-length columns as a CSV (for external plotting).

    Returns the resolved path.  Example::

        write_csv("fig2.csv", {"interval_rtt": pdf.centers,
                               "measured": pdf.density,
                               "poisson": reference})
    """
    if not columns:
        raise ValueError("need at least one column")
    arrays = {k: np.asarray(v) for k, v in columns.items()}
    lengths = {len(a) for a in arrays.values()}
    if len(lengths) != 1:
        raise ValueError(f"column lengths differ: { {k: len(a) for k, a in arrays.items()} }")
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(arrays.keys())
        for row in zip(*arrays.values()):
            writer.writerow(row)
    return p


def pdf_figure_text(
    pdf,
    poisson_density: np.ndarray,
    caption: str,
    frac_001: Optional[float] = None,
    frac_1: Optional[float] = None,
) -> str:
    """Full figure block: caption, headline mass fractions, decimated series.

    Pass the exact ``frac_001`` / ``frac_1`` computed from the raw
    intervals when available; the fallback reads the binned PDF, which
    cannot resolve thresholds finer than its bin width (``fraction_below``
    counts whole bins strictly below the threshold).
    """
    f001 = pdf.fraction_below(0.01) if frac_001 is None else frac_001
    f1 = pdf.fraction_below(1.0) if frac_1 is None else frac_1
    head = (
        f"{caption}\n"
        f"  n_intervals={pdf.n}  mean_interval={pdf.mean_interval:.4g} RTT\n"
        f"  mass < 0.01 RTT: {f001 * 100:.1f}%   "
        f"mass < 1 RTT: {f1 * 100:.1f}%"
    )
    return head + "\n" + format_pdf_series(pdf.centers, pdf.density, poisson_density)
