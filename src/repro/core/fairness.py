"""Fairness and convergence metrics for flow-rate allocations.

The paper's implications are fairness statements — rate-based flows get
less than fair share (Fig. 7), some parallel flows fall behind (Fig. 8),
delay-based control restores fairness ([23]).  This module holds the
standard quantifiers used across the experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jain_index", "min_max_ratio", "time_to_fair"]


def jain_index(rates: np.ndarray) -> float:
    """Jain's fairness index: 1 = perfectly equal, 1/n = one flow hogs."""
    x = np.asarray(rates, dtype=np.float64)
    if len(x) == 0 or np.all(x == 0):
        return float("nan")
    return float(x.sum() ** 2 / (len(x) * np.dot(x, x)))


def min_max_ratio(rates: np.ndarray) -> float:
    """min/max allocation ratio: 1 = equal, 0 = someone starved."""
    x = np.asarray(rates, dtype=np.float64)
    if len(x) == 0:
        return float("nan")
    mx = x.max()
    if mx <= 0:
        return float("nan")
    return float(x.min() / mx)


def time_to_fair(
    times: np.ndarray,
    per_flow_series: np.ndarray,
    threshold: float = 0.9,
    sustain: int = 3,
) -> float:
    """First time the instantaneous Jain index reaches ``threshold`` and
    stays there for ``sustain`` consecutive samples.

    ``per_flow_series`` has shape (n_flows, n_samples): each row a flow's
    rate over time.  Returns ``inf`` if fairness is never sustained.
    """
    t = np.asarray(times, dtype=np.float64)
    series = np.asarray(per_flow_series, dtype=np.float64)
    if series.ndim != 2 or series.shape[1] != len(t):
        raise ValueError(
            f"series must be (n_flows, {len(t)}), got {series.shape}"
        )
    if not (0 < threshold <= 1):
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if sustain < 1:
        raise ValueError(f"sustain must be >= 1, got {sustain}")
    fair = np.array([jain_index(series[:, j]) >= threshold
                     for j in range(series.shape[1])])
    run = 0
    for j, ok in enumerate(fair):
        run = run + 1 if ok else 0
        if run >= sustain:
            return float(t[j - sustain + 1])
    return float("inf")
