"""Loss-detection model: the paper's Equations (1) and (2).

When the bottleneck drops ``M`` packets in one bursty loss event out of
``N`` flows' traffic:

* **Rate-based flows** (evenly spaced packets): each dropped packet most
  likely belongs to a distinct flow, so the expected number of flows
  detecting the event is ``L_rate = min(M, N)``  (Eq. 1).
* **Window-based flows** (each flow's ``K`` packets arrive as one
  contiguous clump): the burst of ``M`` drops straddles about ``M / K``
  clumps, so ``L_win = max(M / K, 1)``  (Eq. 2).

``L_rate >> L_win`` — rate-based flows over-sample the loss signal, halve
more often, and lose throughput (Figure 7).  This module also provides the
empirical counterparts measured from simulation traces and a throughput-
ratio prediction from the 1/sqrt(p) law.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "l_rate_based",
    "l_window_based",
    "detection_ratio",
    "empirical_flows_per_event",
    "predicted_throughput_ratio",
    "DetectionModel",
]


def l_rate_based(m: float, n: int) -> float:
    """Eq. (1): expected rate-based flows detecting an M-drop event."""
    if m < 0 or n < 0:
        raise ValueError(f"m and n must be non-negative, got {m}, {n}")
    return float(min(m, n))


def l_window_based(m: float, k: float) -> float:
    """Eq. (2): expected window-based flows detecting an M-drop event.

    ``k`` is the number of packets a flow sends in the loss event's RTT
    (its clump size).
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if m == 0:
        return 0.0
    return float(max(m / k, 1.0))


def detection_ratio(m: float, n: int, k: float) -> float:
    """L_rate / L_win: how many times more flows see the event when
    rate-based.  >> 1 in the bursty regime (m large, k large)."""
    lw = l_window_based(m, k)
    if lw == 0:
        return float("nan")
    return l_rate_based(m, n) / lw


@dataclass
class DetectionModel:
    """Ideal-case detection statistics for a population of events.

    ``event_sizes`` is the per-event drop count M (e.g. from
    :func:`repro.core.events.event_sizes`); ``n`` the number of flows;
    ``k`` the per-flow packets-per-RTT (cwnd in packets for window flows).
    """

    n: int
    k: float

    def expected_rate_detections(self, event_sizes: np.ndarray) -> float:
        """Mean Eq. (1) detections over the event sizes."""
        m = np.asarray(event_sizes, dtype=np.float64)
        return float(np.minimum(m, self.n).mean()) if len(m) else float("nan")

    def expected_window_detections(self, event_sizes: np.ndarray) -> float:
        """Mean Eq. (2) detections over the event sizes."""
        m = np.asarray(event_sizes, dtype=np.float64)
        if len(m) == 0:
            return float("nan")
        return float(np.maximum(m / self.k, 1.0).mean())

    def expected_ratio(self, event_sizes: np.ndarray) -> float:
        """Eq. (1)/Eq. (2) expectation ratio over the events."""
        lw = self.expected_window_detections(event_sizes)
        lr = self.expected_rate_detections(event_sizes)
        return lr / lw if lw and lw > 0 else float("nan")


def empirical_flows_per_event(events) -> float:
    """Mean number of distinct flows that actually lost a packet per event
    (requires the trace's per-drop flow ids; see
    :func:`repro.core.events.cluster_loss_events`)."""
    if not events:
        return float("nan")
    return float(np.mean([e.n_flows_hit for e in events]))


def predicted_throughput_ratio(loss_seen_ratio: float) -> float:
    """Throughput ratio (window-based / rate-based) implied by the
    1/sqrt(p) throughput law when the rate-based class perceives
    ``loss_seen_ratio`` times the loss-event rate of the window-based
    class: x_win / x_rate = sqrt(p_rate / p_win)."""
    if loss_seen_ratio <= 0:
        raise ValueError(f"ratio must be positive, got {loss_seen_ratio}")
    return float(np.sqrt(loss_seen_ratio))
