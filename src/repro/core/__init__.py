"""Core contribution: sub-RTT packet-loss burstiness analysis and models.

This package is the analytical half of the paper:

* :mod:`repro.core.intervals` / :mod:`repro.core.pdf` — RTT-normalized
  inter-loss intervals and their PDF at the paper's 0.02-RTT resolution
  (Figures 2–4), with same-rate Poisson references.
* :mod:`repro.core.burstiness` — headline mass fractions (<0.01 RTT,
  <1 RTT), CV, dispersion, autocorrelation, burst clustering.
* :mod:`repro.core.poisson` — formal Poisson comparisons (KS test,
  first-bin excess).
* :mod:`repro.core.gilbert` — Gilbert–Elliott fit/synthesis for loss
  traces (the "more rigorous model" of the paper's future work).
* :mod:`repro.core.events` — loss-event (congestion-event) clustering.
* :mod:`repro.core.detection` — Eqs. (1)/(2): per-class loss-detection
  model and throughput-ratio prediction.
"""

from repro.core.burstiness import (
    Burst,
    BurstinessSummary,
    burst_sizes,
    burstiness_summary,
    cluster_bursts,
    coefficient_of_variation,
    fraction_within,
    index_of_dispersion,
    interval_autocorrelation,
)
from repro.core.detection import (
    DetectionModel,
    detection_ratio,
    empirical_flows_per_event,
    l_rate_based,
    l_window_based,
    predicted_throughput_ratio,
)
from repro.core.events import (
    LossEvent,
    cluster_loss_events,
    distinct_flows_per_event,
    event_sizes,
    event_spans,
    losses_per_event,
)
from repro.core.gilbert import (
    GilbertModel,
    conditional_loss_probability,
    fit_gilbert,
    loss_run_lengths,
)
from repro.core.intervals import intervals_from_trace, loss_intervals, normalize_by_rtt
from repro.core.pdf import IntervalPdf, interval_pdf, poisson_reference_pdf
from repro.core.fairness import jain_index, min_max_ratio, time_to_fair
from repro.core.queueing import (
    mm1_utilization,
    mm1k_blocking_probability,
    mm1k_distribution,
    mm1k_mean_occupancy,
)
from repro.core.poisson import (
    PoissonComparison,
    compare_to_poisson,
    exponential_ks_test,
    first_bin_excess,
    poisson_process,
)
from repro.core.report import (
    format_pdf_series,
    format_series,
    format_table,
    pdf_figure_text,
    write_csv,
)
from repro.core.selfsim import (
    SelfSimilarityReport,
    hurst_aggregated_variance,
    hurst_rescaled_range,
    idc_curve,
    self_similarity_report,
)
from repro.core.tcptrace import (
    MethodologyComparison,
    compare_methodologies,
    reconstruct_losses_from_retransmissions,
)

__all__ = [
    "Burst",
    "BurstinessSummary",
    "DetectionModel",
    "GilbertModel",
    "IntervalPdf",
    "LossEvent",
    "MethodologyComparison",
    "PoissonComparison",
    "SelfSimilarityReport",
    "burst_sizes",
    "burstiness_summary",
    "cluster_bursts",
    "cluster_loss_events",
    "coefficient_of_variation",
    "compare_methodologies",
    "compare_to_poisson",
    "conditional_loss_probability",
    "detection_ratio",
    "distinct_flows_per_event",
    "empirical_flows_per_event",
    "event_sizes",
    "event_spans",
    "exponential_ks_test",
    "first_bin_excess",
    "fit_gilbert",
    "format_pdf_series",
    "format_series",
    "format_table",
    "fraction_within",
    "hurst_aggregated_variance",
    "hurst_rescaled_range",
    "idc_curve",
    "index_of_dispersion",
    "interval_autocorrelation",
    "interval_pdf",
    "intervals_from_trace",
    "jain_index",
    "l_rate_based",
    "l_window_based",
    "loss_intervals",
    "loss_run_lengths",
    "losses_per_event",
    "min_max_ratio",
    "mm1_utilization",
    "mm1k_blocking_probability",
    "mm1k_distribution",
    "mm1k_mean_occupancy",
    "normalize_by_rtt",
    "pdf_figure_text",
    "poisson_process",
    "poisson_reference_pdf",
    "predicted_throughput_ratio",
    "reconstruct_losses_from_retransmissions",
    "self_similarity_report",
    "time_to_fair",
    "write_csv",
]
