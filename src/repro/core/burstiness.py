"""Burstiness metrics for point processes of packet losses.

The paper quantifies burstiness informally ("more than 95% of the packet
losses cluster within short time periods smaller than 0.01 RTT"); this
module provides that statistic plus the standard rigor the paper's future
work calls for: coefficient of variation, index of dispersion for counts,
interval autocorrelation, and burst clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "fraction_within",
    "coefficient_of_variation",
    "index_of_dispersion",
    "interval_autocorrelation",
    "Burst",
    "cluster_bursts",
    "burst_sizes",
    "burstiness_summary",
    "BurstinessSummary",
]


def fraction_within(intervals_rtt: np.ndarray, threshold_rtt: float) -> float:
    """Fraction of loss intervals strictly smaller than ``threshold_rtt``.

    ``fraction_within(x, 0.01)`` is the paper's headline number: the share
    of losses arriving within 0.01 RTT of the previous loss.
    """
    x = np.asarray(intervals_rtt, dtype=np.float64)
    if threshold_rtt <= 0:
        raise ValueError(f"threshold must be positive, got {threshold_rtt}")
    if len(x) == 0:
        return float("nan")
    return float(np.mean(x < threshold_rtt))


def coefficient_of_variation(intervals: np.ndarray) -> float:
    """CV = std/mean of intervals.  1 for Poisson; >> 1 when bursty."""
    x = np.asarray(intervals, dtype=np.float64)
    if len(x) < 2:
        return float("nan")
    m = x.mean()
    if m == 0:
        return float("inf")
    return float(x.std() / m)


def index_of_dispersion(times: np.ndarray, window: float, horizon: float) -> float:
    """Index of dispersion for counts: var/mean of per-window loss counts.

    1 for a Poisson process at every window size; grows with window for
    positively correlated (bursty) processes.
    """
    if window <= 0 or horizon <= 0:
        raise ValueError("window and horizon must be positive")
    t = np.asarray(times, dtype=np.float64)
    nbins = max(1, int(horizon / window))
    counts, _ = np.histogram(t, bins=nbins, range=(0.0, nbins * window))
    m = counts.mean()
    if m == 0:
        return float("nan")
    return float(counts.var() / m)


def interval_autocorrelation(intervals: np.ndarray, max_lag: int = 10) -> np.ndarray:
    """Autocorrelation of the interval sequence at lags 1..max_lag.

    i.i.d. exponential intervals (Poisson) give ~0 at all lags; clustered
    losses give positive short-lag correlation.
    """
    x = np.asarray(intervals, dtype=np.float64)
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    n = len(x)
    if n < max_lag + 2:
        return np.full(max_lag, np.nan)
    xc = x - x.mean()
    denom = float(np.dot(xc, xc))
    if denom == 0:
        return np.zeros(max_lag)
    out = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        out[lag - 1] = float(np.dot(xc[:-lag], xc[lag:])) / denom
    return out


@dataclass
class Burst:
    """A maximal run of losses separated by gaps below the clustering gap."""

    start: float
    end: float
    count: int

    @property
    def duration(self) -> float:
        """Span in seconds from first to last element."""
        return self.end - self.start


def cluster_bursts(times: np.ndarray, gap: float) -> list[Burst]:
    """Group loss timestamps into bursts: a new burst starts whenever the
    gap from the previous loss is >= ``gap`` seconds.

    With ``gap`` = 1 RTT this is exactly the "loss event" granularity used
    by TFRC and by the paper's Figures 5/6 reasoning.
    """
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    t = np.asarray(times, dtype=np.float64)
    if len(t) == 0:
        return []
    if np.any(np.diff(t) < 0):
        raise ValueError("timestamps not sorted")
    # Boundaries where a new burst begins.
    breaks = np.flatnonzero(np.diff(t) >= gap) + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [len(t)]))
    return [
        Burst(start=float(t[s]), end=float(t[e - 1]), count=int(e - s))
        for s, e in zip(starts, ends)
    ]


def burst_sizes(times: np.ndarray, gap: float) -> np.ndarray:
    """Per-burst loss counts at the given clustering gap, vectorized.

    Same clustering rule as :func:`cluster_bursts` but returns only the
    int64 size array, with no per-burst objects — the form the summary
    statistics need.  Empty input yields an empty array.
    """
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    t = np.asarray(times, dtype=np.float64)
    if len(t) == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(np.diff(t) < 0):
        raise ValueError("timestamps not sorted")
    breaks = np.flatnonzero(np.diff(t) >= gap) + 1
    bounds = np.concatenate(([0], breaks, [len(t)]))
    return np.diff(bounds).astype(np.int64)


@dataclass
class BurstinessSummary:
    """One-stop statistics for a loss trace (RTT-normalized view)."""

    n_losses: int
    frac_within_001: float  # < 0.01 RTT
    frac_within_1: float  # < 1 RTT
    cv: float
    mean_interval_rtt: float
    n_bursts: int  # at 1-RTT clustering gap
    mean_burst_size: float
    max_burst_size: int

    def is_burstier_than_poisson(self) -> bool:
        """CV materially above 1 or strong sub-0.01-RTT mass."""
        return self.cv > 1.5 or self.frac_within_001 > 0.3


def burstiness_summary(times: np.ndarray, rtt: float) -> BurstinessSummary:
    """Compute the full summary for a loss-timestamp trace."""
    from repro.core.intervals import intervals_from_trace

    t = np.asarray(times, dtype=np.float64)
    x = intervals_from_trace(t, rtt)
    sizes = burst_sizes(t, gap=rtt)
    n_bursts = len(sizes)
    if n_bursts == 0:
        sizes = np.array([0])
    return BurstinessSummary(
        n_losses=len(t),
        frac_within_001=fraction_within(x, 0.01) if len(x) else float("nan"),
        frac_within_1=fraction_within(x, 1.0) if len(x) else float("nan"),
        cv=coefficient_of_variation(x),
        mean_interval_rtt=float(x.mean()) if len(x) else float("nan"),
        n_bursts=n_bursts,
        mean_burst_size=float(sizes.mean()),
        max_burst_size=int(sizes.max()),
    )
