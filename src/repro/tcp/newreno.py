"""TCP NewReno congestion control (RFC 2582, Floyd & Henderson).

NewReno fixes Reno's stall under burst losses: a *partial* ACK during fast
recovery (one that advances the cumulative point but not past ``recover``,
the highest sequence outstanding when recovery began) immediately
retransmits the next hole and keeps the sender in recovery, so a burst of
``k`` drops costs roughly ``k`` RTTs instead of a timeout.

This is the paper's canonical window-based protocol: its sub-RTT
transmission pattern is bursty (packets fill the ``w(t) - pif(t)`` gap
back-to-back), which under bursty packet loss lets it *underestimate* the
loss rate relative to rate-based flows — the asymmetry behind Figure 7.
"""

from __future__ import annotations

from repro.tcp.base import TcpSender

__all__ = ["NewRenoSender"]


class NewRenoSender(TcpSender):
    """Window-based TCP NewReno sender."""

    variant = "newreno"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Highest sequence sent when the current recovery episode began.
        self.recover = -1

    # -- new ACK -----------------------------------------------------------
    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Variant window law for a cumulative ACK advancing the left edge."""
        if self.in_fast_recovery:
            if ack > self.recover:
                # Full ACK: recovery complete; deflate.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            else:
                # Partial ACK: retransmit the next hole, deflate by the
                # amount acked (plus one for the retransmission), stay in
                # fast recovery, and do NOT reset dupacks.
                self.retransmit_head()
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1.0)
            return
        self.dupacks = 0
        self.slow_start_or_avoidance_increase(newly_acked)

    # -- duplicate ACK -------------------------------------------------------
    def on_dup_ack(self, ack: int, count: int) -> None:
        """Variant reaction to the count-th duplicate ACK."""
        if self.in_fast_recovery:
            self.cwnd += 1.0
            return
        if count == 3:
            if ack <= self.recover:
                # RFC 2582 "careful" variant: avoid multiple window
                # reductions for the same flight after a timeout.
                return
            self.stats.fast_retransmits += 1
            self.recover = self.next_seq
            self.halve_window()
            self.retransmit_head()
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True

    # -- timeout --------------------------------------------------------------
    def on_timeout(self) -> None:
        """Variant recovery after a retransmission timeout."""
        self.halve_window()
        self.cwnd = 1.0
        self.recover = self.next_seq
        self.go_back_n()
