"""Transport protocols (NS-2 agent equivalents).

Window-based senders — :class:`RenoSender`, :class:`NewRenoSender` — fill
the congestion-window gap with back-to-back bursts; rate-based senders —
:class:`PacedSender`, :class:`TfrcSender` — space packets evenly.  The
contrast between those two sub-RTT emission patterns, interacting with the
bursty loss process at a DropTail bottleneck, is the subject of the paper.

Auxiliary sources: :class:`CbrSource` (measurement probes),
:class:`OnOffSource` (background noise).
"""

from repro.tcp.base import ACK_SIZE, TcpSender
from repro.tcp.bbr import BbrSender
from repro.tcp.bic import BicSender
from repro.tcp.cbr import CbrSource
from repro.tcp.fast import FastSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.onoff import OnOffSource, noise_fleet_params
from repro.tcp.pacing import PacedSender, QuicPacedSender
from repro.tcp.registry import (
    SenderSpec,
    create_sender,
    register_sender,
    sender_names,
    sender_spec,
)
from repro.tcp.reno import RenoSender
from repro.tcp.sack import SackSender
from repro.tcp.sink import ProbeSink, TcpSink, UdpSink
from repro.tcp.tfrc import (
    TfrcReceiver,
    TfrcSender,
    tfrc_throughput_eq,
    wali_loss_event_rate,
)

__all__ = [
    "ACK_SIZE",
    "BbrSender",
    "BicSender",
    "CbrSource",
    "FastSender",
    "NewRenoSender",
    "OnOffSource",
    "PacedSender",
    "ProbeSink",
    "QuicPacedSender",
    "RenoSender",
    "SackSender",
    "SenderSpec",
    "TcpSender",
    "TcpSink",
    "TfrcReceiver",
    "TfrcSender",
    "UdpSink",
    "create_sender",
    "noise_fleet_params",
    "register_sender",
    "sender_names",
    "sender_spec",
    "tfrc_throughput_eq",
    "wali_loss_event_rate",
]
