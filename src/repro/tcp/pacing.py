"""TCP Pacing: NewReno's control loop with rate-based (paced) emission.

The paper (§4.1, footnote 4) classifies TCP Pacing as *rate-based in the
sub-RTT timescale*: the congestion window and loss reaction are exactly
NewReno's, but instead of filling the ``w(t) - pif(t)`` gap with a
back-to-back burst, transmissions are spread evenly across the RTT at rate
``cwnd / RTT``.  That even spacing is why paced flows see almost every
bursty loss event (Figure 5) and lose the throughput competition of
Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Event
from repro.tcp.newreno import NewRenoSender

__all__ = ["PacedSender", "QuicPacedSender"]


class PacedSender(NewRenoSender):
    """TCP NewReno with paced packet emission.

    Parameters (in addition to :class:`repro.tcp.base.TcpSender`'s):

    base_rtt:
        Pacing-interval RTT estimate used before the first RTT sample
        (experiments pass the path's propagation RTT; afterwards the
        smoothed RTT takes over).
    """

    variant = "pacing"

    def __init__(self, *args, base_rtt: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        if base_rtt is not None and base_rtt <= 0:
            raise ValueError(f"base_rtt must be positive, got {base_rtt}")
        self.base_rtt = base_rtt
        self._pace_timer: Optional[Event] = None
        self._earliest_next_tx = 0.0

    # -- pacing ----------------------------------------------------------
    def pacing_rtt(self) -> float:
        """RTT estimate used for the pacing interval."""
        if self.srtt is not None:
            return self.srtt
        if self.base_rtt is not None:
            return self.base_rtt
        return self.rto

    def pacing_interval(self) -> float:
        """Gap between consecutive packet emissions: RTT / cwnd."""
        return self.pacing_rtt() / max(self.effective_window, 1.0)

    def try_send(self) -> None:
        """Rate-based override: emit via the pacing timer, never in bursts."""
        self._schedule_pace()

    def _schedule_pace(self) -> None:
        if self._pace_timer is not None or self.finished or not self.can_send():
            return
        at = max(self._earliest_next_tx, self.sim.now)
        self._pace_timer = self.sim.schedule_at(at, self._pace_fire)

    def _pace_fire(self) -> None:
        self._pace_timer = None
        if self.finished:
            return
        if self.can_send():
            self._emit(self.next_seq, retransmission=False)
            self.next_seq += 1
            self._earliest_next_tx = self.sim.now + self.pacing_interval()
        self._schedule_pace()


class QuicPacedSender(PacedSender):
    """QUIC-style pacing: gain above the nominal rate plus a burst
    allowance after idle periods.

    Production QUIC stacks do not pace at exactly ``cwnd / RTT`` the way
    the paper's TCP-Pacing does — they pace ~25% *faster* than the nominal
    window rate (so pacing never becomes the bottleneck) and allow a small
    back-to-back burst after quiescence to avoid slow restarts.  Both
    choices re-concentrate transmissions in time, which is exactly the
    variable the paper's Fig. 5/Fig. 7 analysis says controls how many
    bursty loss events a flow samples — so this sender sits *between*
    NewReno's full bursts and PacedSender's perfectly even spacing.

    Parameters (in addition to :class:`PacedSender`'s):

    pacing_gain:
        Multiplier on the nominal ``cwnd / RTT`` rate (default 1.25).
    burst_size:
        Packets allowed back-to-back after an idle gap of one pacing RTT
        (default 10, the common QUIC implementation default).
    """

    variant = "quic-pacing"

    def __init__(self, *args, pacing_gain: float = 1.25, burst_size: int = 10,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if pacing_gain <= 0:
            raise ValueError(f"pacing_gain must be positive, got {pacing_gain}")
        if burst_size < 0:
            raise ValueError(f"burst_size must be >= 0, got {burst_size}")
        self.gain = float(pacing_gain)
        self.burst_size = int(burst_size)
        self._burst_tokens = self.burst_size
        self._last_send_time = float("-inf")

    def pacing_interval(self) -> float:
        """Gap between emissions: RTT / (gain * cwnd) — 1/gain of the
        evenly-paced spacing."""
        return self.pacing_rtt() / max(self.gain * self.effective_window, 1.0)

    def pacing_rate_bps(self) -> float:
        """Nominal window rate times the pacing gain."""
        return self.gain * super().pacing_rate_bps()

    def _pace_fire(self) -> None:
        self._pace_timer = None
        if self.finished:
            return
        now = self.sim.now
        if now - self._last_send_time > self.pacing_rtt():
            # Quiescence: refill the burst allowance (QUIC's lumpy restart).
            self._burst_tokens = self.burst_size
        if self.can_send():
            self._emit(self.next_seq, retransmission=False)
            self.next_seq += 1
            self._last_send_time = now
            if self._burst_tokens > 0:
                self._burst_tokens -= 1
                self._earliest_next_tx = now  # inside the burst: no gap
            else:
                self._earliest_next_tx = now + self.pacing_interval()
        self._schedule_pace()
