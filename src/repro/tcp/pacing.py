"""TCP Pacing: NewReno's control loop with rate-based (paced) emission.

The paper (§4.1, footnote 4) classifies TCP Pacing as *rate-based in the
sub-RTT timescale*: the congestion window and loss reaction are exactly
NewReno's, but instead of filling the ``w(t) - pif(t)`` gap with a
back-to-back burst, transmissions are spread evenly across the RTT at rate
``cwnd / RTT``.  That even spacing is why paced flows see almost every
bursty loss event (Figure 5) and lose the throughput competition of
Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Event
from repro.tcp.newreno import NewRenoSender

__all__ = ["PacedSender"]


class PacedSender(NewRenoSender):
    """TCP NewReno with paced packet emission.

    Parameters (in addition to :class:`repro.tcp.base.TcpSender`'s):

    base_rtt:
        Pacing-interval RTT estimate used before the first RTT sample
        (experiments pass the path's propagation RTT; afterwards the
        smoothed RTT takes over).
    """

    variant = "pacing"

    def __init__(self, *args, base_rtt: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        if base_rtt is not None and base_rtt <= 0:
            raise ValueError(f"base_rtt must be positive, got {base_rtt}")
        self.base_rtt = base_rtt
        self._pace_timer: Optional[Event] = None
        self._earliest_next_tx = 0.0

    # -- pacing ----------------------------------------------------------
    def pacing_rtt(self) -> float:
        """RTT estimate used for the pacing interval."""
        if self.srtt is not None:
            return self.srtt
        if self.base_rtt is not None:
            return self.base_rtt
        return self.rto

    def pacing_interval(self) -> float:
        """Gap between consecutive packet emissions: RTT / cwnd."""
        return self.pacing_rtt() / max(self.effective_window, 1.0)

    def try_send(self) -> None:
        """Rate-based override: emit via the pacing timer, never in bursts."""
        self._schedule_pace()

    def _schedule_pace(self) -> None:
        if self._pace_timer is not None or self.finished or not self.can_send():
            return
        at = max(self._earliest_next_tx, self.sim.now)
        self._pace_timer = self.sim.schedule_at(at, self._pace_fire)

    def _pace_fire(self) -> None:
        self._pace_timer = None
        if self.finished:
            return
        if self.can_send():
            self._emit(self.next_seq, retransmission=False)
            self.next_seq += 1
            self._earliest_next_tx = self.sim.now + self.pacing_interval()
        self._schedule_pace()
