"""Delay-based congestion control (paper §5, reference [23] — FAST TCP).

The paper's final suggestion for escaping loss burstiness: use a
congestion signal other than loss.  Queueing *delay* is continuous and
observed by every packet, so a delay-based controller needs no loss bursts
at all.  This sender implements the FAST TCP window law:

    w  <-  min( 2w,  (1 - gamma) w + gamma (baseRTT / RTT * w + alpha) )

updated once per RTT.  In equilibrium each flow parks ``alpha`` packets in
the bottleneck queue: N flows share the link equally (fairness independent
of RTT) and, with a buffer above ``N * alpha``, the queue never overflows —
zero loss, no sawtooth ("better stability and fairness", as the paper puts
it).  Loss handling (fast retransmit / RTO) is retained for reliability
but is not the control signal.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Event
from repro.tcp.base import TcpSender

__all__ = ["FastSender"]


class FastSender(TcpSender):
    """Delay-based (FAST TCP) sender.

    Parameters (in addition to :class:`repro.tcp.base.TcpSender`'s):

    alpha:
        Target number of packets buffered at the bottleneck per flow.
    gamma:
        Update smoothing in (0, 1].
    """

    variant = "fast"

    def __init__(self, *args, alpha: float = 10.0, gamma: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not (0.0 < gamma <= 1.0):
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.base_rtt: Optional[float] = None  # min observed RTT
        self._update_timer: Optional[Event] = None
        self.window_updates = 0

    # -- RTT tracking --------------------------------------------------------
    def _rtt_sample(self, rtt: float) -> None:
        super()._rtt_sample(rtt)
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt

    # -- periodic window law ---------------------------------------------------
    def _start_now(self) -> None:
        super()._start_now()
        self._schedule_update()

    def _schedule_update(self) -> None:
        if self.finished:
            return
        interval = self.srtt if self.srtt is not None else self.rto
        self._update_timer = self.sim.schedule(interval, self._update_window)

    def _update_window(self) -> None:
        self._update_timer = None
        if self.finished:
            return
        if self.srtt is not None and self.base_rtt is not None:
            target = (1.0 - self.gamma) * self.cwnd + self.gamma * (
                self.base_rtt / self.srtt * self.cwnd + self.alpha
            )
            self.cwnd = min(2.0 * self.cwnd, target, self.max_cwnd)
            self.cwnd = max(self.cwnd, 2.0)
            self.window_updates += 1
            self.try_send()
        self._schedule_update()

    # -- loss handling: reliability only, no multiplicative decrease -----------
    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Variant window law for a cumulative ACK advancing the left edge."""
        if self.in_fast_recovery:
            if ack > self.recover:
                self.in_fast_recovery = False
                self.dupacks = 0
            else:
                self.retransmit_head()
            return
        self.dupacks = 0
        # No ACK-clocked growth: the periodic delay law owns the window.

    def on_dup_ack(self, ack: int, count: int) -> None:
        """Variant reaction to the count-th duplicate ACK."""
        if self.in_fast_recovery:
            return
        if count == 3:
            self.stats.fast_retransmits += 1
            self.recover = self.next_seq
            self.retransmit_head()
            self.in_fast_recovery = True
            # Mild reduction: delay, not loss, is the control signal, but a
            # genuine overflow means the estimator lagged — trim once.
            self.cwnd = max(2.0, self.cwnd * 0.875)

    def on_timeout(self) -> None:
        """Variant recovery after a retransmission timeout."""
        self.cwnd = 2.0
        self.recover = self.next_seq
        self.go_back_n()

    def _complete(self) -> None:
        super()._complete()
        if self._update_timer is not None:
            self._update_timer.cancel()
            self._update_timer = None

    # -- diagnostics ----------------------------------------------------------
    @property
    def queueing_delay_estimate(self) -> float:
        """Current estimated queueing delay (sRTT minus baseRTT)."""
        if self.srtt is None or self.base_rtt is None:
            return float("nan")
        return max(0.0, self.srtt - self.base_rtt)
