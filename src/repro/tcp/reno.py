"""TCP Reno congestion control (RFC 2581 / Allman, Paxson & Stevens).

Slow start, congestion avoidance, fast retransmit on the third duplicate
ACK, and Reno-style fast recovery: the window is inflated by one packet per
further duplicate ACK and fully deflated on the *first* new ACK — which is
what makes Reno stall under the multi-packet loss bursts the paper
measures (NewReno's partial-ACK handling, :mod:`repro.tcp.newreno`, is the
fix and the paper's default window-based protocol).
"""

from __future__ import annotations

from repro.tcp.base import TcpSender

__all__ = ["RenoSender"]


class RenoSender(TcpSender):
    """Window-based TCP Reno sender."""

    variant = "reno"

    # -- new ACK ---------------------------------------------------------
    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Variant window law for a cumulative ACK advancing the left edge."""
        if self.in_fast_recovery:
            # Reno: any new ACK terminates fast recovery and deflates the
            # window to ssthresh, even if it only partially covers the
            # outstanding data (remaining holes must wait for new dupacks
            # or the RTO).
            self.in_fast_recovery = False
            self.cwnd = self.ssthresh
            self.dupacks = 0
            return
        self.dupacks = 0
        self.slow_start_or_avoidance_increase(newly_acked)

    # -- duplicate ACK -----------------------------------------------------
    def on_dup_ack(self, ack: int, count: int) -> None:
        """Variant reaction to the count-th duplicate ACK."""
        if self.in_fast_recovery:
            # Window inflation: each further dupack signals a departure.
            self.cwnd += 1.0
            return
        if count == 3:
            self.stats.fast_retransmits += 1
            self.halve_window()
            self.retransmit_head()
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True

    # -- timeout -----------------------------------------------------------
    def on_timeout(self) -> None:
        """Variant recovery after a retransmission timeout."""
        self.halve_window()
        self.cwnd = 1.0
        self.go_back_n()
