"""Two-way exponential on-off noise sources (paper Figure 1).

The simulation and emulation scenarios add 50 on-off UDP flows per
direction with an aggregate mean rate of 10% of the bottleneck capacity.
Each source alternates exponentially-distributed ON periods (sending CBR at
a peak rate) and OFF periods (silent); the mean rate is
``peak * E[on] / (E[on] + E[off])``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import Event, Simulator
from repro.sim.node import Host
from repro.sim.packet import NOISE

__all__ = ["OnOffSource", "noise_fleet_params"]


class OnOffSource:
    """Exponential on-off UDP source."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: int,
        peak_rate_bps: float,
        mean_on: float,
        mean_off: float,
        rng: np.random.Generator,
        packet_size: int = 500,
    ):
        if peak_rate_bps <= 0:
            raise ValueError(f"peak rate must be positive, got {peak_rate_bps}")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError(f"invalid on/off means: {mean_on}, {mean_off}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.peak_rate_bps = float(peak_rate_bps)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.rng = rng
        self.packet_size = int(packet_size)
        self.interval = packet_size * 8.0 / peak_rate_bps
        self.on = False
        self.next_seq = 0
        self.packets_sent = 0
        self._off_until = 0.0
        self._timer: Optional[Event] = None
        self._stopped = False

    @property
    def mean_rate_bps(self) -> float:
        """Long-run mean emission rate of the on-off source."""
        return self.peak_rate_bps * self.mean_on / (self.mean_on + self.mean_off)

    def start(self, at: float = 0.0) -> None:
        # Begin in a random phase so 50 sources do not synchronize.
        """Begin operating at absolute simulation time ``at``."""
        if self.rng.random() < self.mean_on / (self.mean_on + self.mean_off):
            self._timer = self.sim.schedule_at(at, self._begin_on)
        else:
            delay = float(self.rng.exponential(self.mean_off))
            self._timer = self.sim.schedule_at(at + delay, self._begin_on)

    def stop(self) -> None:
        """Stop operating and cancel any pending timers."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _begin_on(self) -> None:
        if self._stopped:
            return
        self.on = True
        duration = float(self.rng.exponential(self.mean_on))
        self._off_until = self.sim.now + duration
        self._send_tick()

    def _send_tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        if now >= self._off_until:
            self.on = False
            off = float(self.rng.exponential(self.mean_off))
            self._timer = self.sim.schedule(off, self._begin_on)
            return
        pkt = self.sim.alloc_packet(
            self.flow_id,
            self.next_seq,
            self.packet_size,
            kind=NOISE,
            src=self.host.node_id,
            dst=self.dst,
            created=now,
        )
        self.next_seq += 1
        self.packets_sent += 1
        self.host.send(pkt)
        self._timer = self.sim.schedule(self.interval, self._send_tick)


def noise_fleet_params(
    capacity_bps: float,
    n_flows: int = 50,
    load_fraction: float = 0.10,
    peak_to_mean: float = 4.0,
    mean_on: float = 0.5,
) -> dict:
    """Per-flow parameters for the paper's noise fleet.

    ``n_flows`` on-off sources whose aggregate mean rate is
    ``load_fraction * capacity``; each has the given peak-to-mean ratio
    (burstier noise for higher ratios) and mean ON duration.
    Returns kwargs for :class:`OnOffSource` (minus wiring + rng).
    """
    if n_flows <= 0:
        raise ValueError(f"need at least one flow, got {n_flows}")
    if not (0 < load_fraction < 1):
        raise ValueError(f"load fraction must be in (0,1), got {load_fraction}")
    if peak_to_mean <= 1.0:
        raise ValueError(f"peak-to-mean ratio must exceed 1, got {peak_to_mean}")
    mean_rate = capacity_bps * load_fraction / n_flows
    peak = mean_rate * peak_to_mean
    # duty cycle = 1 / peak_to_mean = mean_on / (mean_on + mean_off)
    mean_off = mean_on * (peak_to_mean - 1.0)
    return {
        "peak_rate_bps": peak,
        "mean_on": mean_on,
        "mean_off": mean_off,
    }
