"""Receivers: TCP sink (cumulative ACKs), UDP/probe sinks.

The TCP sink acknowledges every data packet immediately (no delayed ACKs,
matching the NS-2 one-way TCP agents the paper's scenarios use), generating
the duplicate-ACK stream that drives fast retransmit at the sender.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.trace import DelayTrace, FlowStats, ThroughputTrace

__all__ = ["TcpSink", "UdpSink", "ProbeSink"]


class TcpSink:
    """Cumulative-ACK TCP receiver.

    Buffers out-of-order packets and acknowledges with the next expected
    sequence number.  When ECN is in play the congestion-experienced mark on
    a data packet is echoed on its ACK (a per-packet echo — the simplified
    model the paper's extension [22] builds on, rather than RFC 3168's
    sticky echo + CWR handshake).

    With ``delayed_acks`` (RFC 1122 §4.2.3.2): in-order data is acknowledged
    every second packet or after ``delack_timeout`` seconds, whichever comes
    first; out-of-order data (and ECN marks) are acknowledged immediately so
    fast retransmit and congestion echoes are never delayed.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        src: int,
        throughput: Optional[ThroughputTrace] = None,
        on_data: Optional[Callable[[Packet, float], None]] = None,
        delayed_acks: bool = False,
        delack_timeout: float = 0.040,
        sack: bool = False,
        max_sack_blocks: int = 3,
        delay_trace: Optional[DelayTrace] = None,
    ):
        if delack_timeout <= 0:
            raise ValueError(f"delack_timeout must be positive, got {delack_timeout}")
        if max_sack_blocks < 1:
            raise ValueError(f"need at least 1 SACK block, got {max_sack_blocks}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = src  # node id the ACKs go back to
        self.next_expected = 0
        self._out_of_order: set[int] = set()
        self._delivered: set[int] = set()  # dedupe for byte accounting
        # Raw wire arrivals (duplicates included): the receiver-side term of
        # the per-flow conservation identity sent == arrived + dropped that
        # repro.obs.invariants verifies (stats.packets_received is deduped).
        self.packets_arrived = 0
        self.bytes_arrived = 0
        self.stats = FlowStats(flow_id)
        self.throughput = throughput
        self.on_data = on_data
        self.delayed_acks = bool(delayed_acks)
        self.delack_timeout = float(delack_timeout)
        self.sack = bool(sack)
        self.max_sack_blocks = int(max_sack_blocks)
        self.delay_trace = delay_trace
        self._unacked_count = 0
        self._delack_timer = None
        self.acks_sent = 0
        host.attach(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        if pkt.kind != DATA:
            self.sim.free_packet(pkt)
            return
        now = self.sim.now
        self.packets_arrived += 1
        self.bytes_arrived += pkt.size
        if self.delay_trace is not None:
            self.delay_trace.record(pkt, now)
        if pkt.seq >= self.next_expected and pkt.seq not in self._delivered:
            self._delivered.add(pkt.seq)
            self.stats.packets_received += 1
            self.stats.bytes_received += pkt.size
            if self.throughput is not None:
                self.throughput.record(self.flow_id, pkt.size, now)
        if self.on_data is not None:
            self.on_data(pkt, now)

        in_order = pkt.seq == self.next_expected
        if in_order:
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.remove(self.next_expected)
                self.next_expected += 1
            # keep the delivered set small: everything below next_expected
            # is implied by the cumulative point.
            self._delivered = {s for s in self._delivered if s >= self.next_expected}
        elif pkt.seq > self.next_expected:
            self._out_of_order.add(pkt.seq)

        if self.delayed_acks and in_order and not pkt.ecn_marked:
            self._unacked_count += 1
            if self._unacked_count >= 2:
                self._send_ack(ecn_echo=False)
            elif self._delack_timer is None:
                self._delack_timer = self.sim.schedule(
                    self.delack_timeout, self._delack_fired
                )
            # The sink is the data packet's terminal consumer unless an
            # on_data observer may retain it.
            if self.on_data is None:
                self.sim.free_packet(pkt)
            return
        # Immediate ACK: duplicate-triggering or ECN-echoing packets.
        self._send_ack(ecn_echo=pkt.ecn_marked)
        if self.on_data is None:
            self.sim.free_packet(pkt)

    def _delack_fired(self) -> None:
        self._delack_timer = None
        if self._unacked_count > 0:
            self._send_ack(ecn_echo=False)

    def sack_blocks(self) -> tuple[tuple[int, int], ...]:
        """Contiguous out-of-order ranges as half-open ``(start, end)``
        blocks, highest first, at most ``max_sack_blocks`` (RFC 2018)."""
        if not self._out_of_order:
            return ()
        seqs = sorted(self._out_of_order)
        blocks: list[tuple[int, int]] = []
        start = prev = seqs[0]
        for s in seqs[1:]:
            if s == prev + 1:
                prev = s
                continue
            blocks.append((start, prev + 1))
            start = prev = s
        blocks.append((start, prev + 1))
        blocks.reverse()  # most recently relevant (highest) first
        return tuple(blocks[: self.max_sack_blocks])

    def _send_ack(self, ecn_echo: bool) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._unacked_count = 0
        ack = self.sim.alloc_packet(
            self.flow_id,
            self.next_expected,
            40,
            kind=ACK,
            src=self.host.node_id,
            dst=self.src,
            created=self.sim.now,
            meta=self.sack_blocks() if self.sack else None,
        )
        ack.ecn_echo = ecn_echo
        self.acks_sent += 1
        self.host.send(ack)


class UdpSink:
    """Counts datagrams; used as the far end of noise sources."""

    def __init__(self, sim: Simulator, host: Host, flow_id: int):
        self.sim = sim
        self.packets_received = 0
        self.bytes_received = 0
        host.attach(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        self.packets_received += 1
        self.bytes_received += pkt.size
        self.sim.free_packet(pkt)


class ProbeSink:
    """Records (seq, arrival time) of every probe datagram.

    The PlanetLab-style analysis reconstructs which CBR packets were lost
    (gaps in the received sequence set) and when (from the deterministic
    send schedule), exactly as receiver-side UDP measurement does.
    """

    def __init__(self, sim: Simulator, host: Host, flow_id: int):
        self.sim = sim
        self.flow_id = flow_id
        self.seqs: list[int] = []
        self.times: list[float] = []
        host.attach(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        self.seqs.append(pkt.seq)
        self.times.append(self.sim.now)
        self.sim.free_packet(pkt)

    def received_set(self) -> set[int]:
        """Set of sequence numbers seen by this sink."""
        return set(self.seqs)

    def __len__(self) -> int:
        return len(self.seqs)
