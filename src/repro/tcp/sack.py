"""TCP with SACK-based loss recovery (RFC 2018 + RFC 3517).

Selective acknowledgements are the transport-era answer to exactly the
phenomenon this paper measures: when a DropTail bottleneck drops a *burst*
of packets from one flow, NewReno retransmits one hole per RTT while SACK
learns every hole from the receiver's SACK blocks and refills them all
within roughly one RTT, governed by the RFC 3517 pipe algorithm:

    pipe = outstanding − SACKed − (lost and not yet retransmitted)

and the sender may transmit whenever ``pipe < cwnd``.  The comparison
bench quantifies how much burst-loss pain SACK removes relative to
NewReno on identical traces.

Requires a SACK-capable sink: ``TcpSink(..., sack=True)``.
"""

from __future__ import annotations

from repro.sim.packet import ACK, Packet
from repro.tcp.base import TcpSender

__all__ = ["SackSender"]

#: RFC 3517 DupThresh: a hole is deemed lost once 3 segments above it are
#: known to have arrived.
DUP_THRESH = 3


class SackSender(TcpSender):
    """Window-based sender with SACK scoreboard recovery."""

    variant = "sack"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.sacked: set[int] = set()  # seqs covered by SACK blocks
        self._retransmitted: set[int] = set()  # since entering recovery
        self.recover = -1

    # ------------------------------------------------------------------
    # scoreboard
    # ------------------------------------------------------------------
    def _absorb_sack_blocks(self, pkt: Packet) -> None:
        blocks = pkt.meta
        if not blocks:
            return
        for start, end in blocks:
            for s in range(start, end):
                if s >= self.highest_acked:
                    self.sacked.add(s)

    def _highest_sacked(self) -> int:
        return max(self.sacked) if self.sacked else self.highest_acked - 1

    def lost_holes(self) -> list[int]:
        """Sequences deemed lost: unSACKed holes with >= DUP_THRESH known
        deliveries above them (RFC 3517's IsLost, in packet units)."""
        if not self.sacked:
            return []
        high = self._highest_sacked()
        holes = []
        above = 0
        # Walk down from the highest SACKed seq counting known arrivals.
        for s in range(high, self.highest_acked - 1, -1):
            if s in self.sacked:
                above += 1
            elif above >= DUP_THRESH:
                holes.append(s)
        holes.reverse()
        return holes

    def pipe(self) -> int:
        """RFC 3517 pipe: outstanding − SACKed − (lost, not retransmitted)."""
        outstanding = self.next_seq - self.highest_acked
        sacked_outstanding = sum(
            1 for s in self.sacked if self.highest_acked <= s < self.next_seq
        )
        lost_unsent = sum(
            1 for s in self.lost_holes() if s not in self._retransmitted
        )
        return outstanding - sacked_outstanding - lost_unsent

    # ------------------------------------------------------------------
    # transmission policy (overrides the window gate)
    # ------------------------------------------------------------------
    def can_send(self) -> bool:
        """SACK gate: pipe below the window with work available."""
        return self.pipe() < int(self.effective_window) and (
            self._data_remaining() or bool(self._next_retransmission())
        )

    def _next_retransmission(self) -> int | None:
        for s in self.lost_holes():
            if s not in self._retransmitted:
                return s
        return None

    def try_send(self) -> None:
        """SACK transmission policy: refill lost holes, then new data."""
        while self.pipe() < int(self.effective_window):
            hole = self._next_retransmission() if self.in_fast_recovery else None
            if hole is not None:
                self._retransmitted.add(hole)
                self._emit(hole, retransmission=True)
                continue
            if self._data_remaining():
                self._emit(self.next_seq, retransmission=False)
                self.next_seq += 1
                continue
            break

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        if pkt.kind == ACK and not self.finished:
            self._absorb_sack_blocks(pkt)
        super().receive(pkt)

    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Variant window law for a cumulative ACK advancing the left edge."""
        self.sacked = {s for s in self.sacked if s >= ack}
        self._retransmitted = {s for s in self._retransmitted if s >= ack}
        if self.in_fast_recovery:
            if ack > self.recover and not self.sacked:
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            # Partial ack: stay in recovery; try_send will refill holes.
            return
        self.dupacks = 0
        self.slow_start_or_avoidance_increase(newly_acked)

    def on_dup_ack(self, ack: int, count: int) -> None:
        """Variant reaction to the count-th duplicate ACK."""
        if self.in_fast_recovery:
            return  # pipe() already shrank via the SACK block; no inflation
        if count >= 3 or len(self.lost_holes()) > 0:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        if self.in_fast_recovery:
            return
        self.stats.fast_retransmits += 1
        self.recover = self.next_seq
        self.halve_window()
        self.cwnd = max(self.ssthresh, 2.0)
        self.in_fast_recovery = True
        self._retransmitted.clear()
        self.try_send()

    def on_timeout(self) -> None:
        """Variant recovery after a retransmission timeout."""
        self.halve_window()
        self.cwnd = 1.0
        self.recover = self.next_seq
        # RFC 3517 §5.1: a timeout invalidates the scoreboard estimate.
        self.sacked.clear()
        self._retransmitted.clear()
        self.go_back_n()
