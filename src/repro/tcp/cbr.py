"""Constant-bit-rate (CBR) datagram source.

This is the paper's measurement instrument: §2 argues that probing with CBR
traffic — unlike reconstructing losses from TCP traces (Paxson) — does not
confound the loss process's burstiness with TCP's own sub-RTT burstiness,
because CBR packets enter the network perfectly evenly spaced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import Event, Simulator
from repro.sim.node import Host
from repro.sim.packet import PROBE

__all__ = ["CbrSource"]


class CbrSource:
    """Sends fixed-size datagrams at a constant rate.

    Parameters
    ----------
    rate_bps:
        Target bit rate; the inter-packet interval is
        ``packet_size * 8 / rate_bps``.
    packet_size:
        Datagram size in bytes (the paper probes with 48 B and 400 B).
    duration:
        Seconds of probing after ``start`` (the paper's runs last 5 min).
    jitter:
        Optional uniform fraction of the interval (+/- jitter/2) added to
        each send time, to model OS scheduling noise; 0 = ideal CBR.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: int,
        rate_bps: float,
        packet_size: int = 400,
        duration: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        kind: str = PROBE,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.packet_size = int(packet_size)
        self.interval = packet_size * 8.0 / rate_bps
        self.duration = duration
        self.jitter = float(jitter)
        self.rng = rng
        self.kind = kind
        self.next_seq = 0
        self.send_times: list[float] = []
        self._stop_at: Optional[float] = None
        self._timer: Optional[Event] = None
        self._t0 = 0.0

    def start(self, at: float = 0.0) -> None:
        """Begin operating at absolute simulation time ``at``."""
        self._t0 = at
        if self.duration is not None:
            self._stop_at = at + self.duration
        self._timer = self.sim.schedule_at(at, self._tick)

    def stop(self) -> None:
        """Stop operating and cancel any pending timers."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        now = self.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            self._timer = None
            return
        pkt = self.sim.alloc_packet(
            self.flow_id,
            self.next_seq,
            self.packet_size,
            kind=self.kind,
            src=self.host.node_id,
            dst=self.dst,
            created=now,
        )
        self.send_times.append(now)
        self.next_seq += 1
        self.host.send(pkt)

        if self.jitter > 0.0 and self.rng is not None:
            gap = self.interval * (1.0 + self.jitter * (self.rng.random() - 0.5))
            self._timer = self.sim.schedule(gap, self._tick)
        else:
            # Anchor the ideal-CBR grid to start time: ``t0 + k*interval``
            # accumulates one rounding per send, not k of them, so the
            # k-th probe of a 5-minute run lands exactly where the
            # analytic grid (``arange(n) * interval``) says it should
            # instead of drifting by the summed float error.
            t = self._t0 + self.next_seq * self.interval
            self._timer = self.sim.schedule_at(t if t > now else now, self._tick)

    # -- analysis helpers --------------------------------------------------
    def send_times_array(self) -> np.ndarray:
        """Probe send timestamps as a float64 array."""
        return np.asarray(self.send_times, dtype=np.float64)

    def lost_times(self, received_seqs: set[int]) -> np.ndarray:
        """Send timestamps of probes missing from ``received_seqs``.

        Because the CBR schedule is deterministic, the send time of a lost
        probe locates the loss on the timeline to within one inter-packet
        gap — the reconstruction step of the paper's PlanetLab methodology.
        """
        t = self.send_times_array()
        mask = np.ones(len(t), dtype=bool)
        for s in received_seqs:
            if 0 <= s < len(t):
                mask[s] = False
        return t[mask]
