"""TFRC — TCP-Friendly Rate Control (RFC 3448, Floyd/Handley/Padhye/Widmer).

TFRC is the paper's canonical *rate-based* protocol for unreliable
transport: the receiver measures the **loss event rate** ``p`` with the
weighted average of the last eight loss intervals (WALI) and feeds it back
once per RTT; the sender sets its rate from the TCP throughput equation

    X = s / ( R*sqrt(2p/3) + t_RTO * 3*sqrt(3p/8) * p * (1 + 32 p^2) )

with ``t_RTO = 4R``.  Packets leave evenly spaced at rate ``X`` — the
smooth sub-RTT pattern that, per the paper's §4.1, makes TFRC flows see
nearly every bursty loss event and thus lose throughput to window-based
TCP sharing the bottleneck.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Event, Simulator
from repro.sim.node import Host
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.trace import FlowStats, ThroughputTrace

__all__ = ["TfrcSender", "TfrcReceiver", "tfrc_throughput_eq", "wali_loss_event_rate"]

#: RFC 3448 §5.4 weights, most recent closed interval first.
WALI_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)

#: Maximum back-off interval (seconds): the rate floor is one packet per t_mbi.
T_MBI = 64.0


def tfrc_throughput_eq(s: int, rtt: float, p: float, t_rto: Optional[float] = None) -> float:
    """TCP throughput equation: allowed rate in bytes/second.

    ``s`` packet size (bytes), ``rtt`` round-trip time (seconds), ``p`` loss
    event rate in (0, 1].  ``t_rto`` defaults to ``4 * rtt``.
    """
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    p = min(p, 1.0)
    if t_rto is None:
        t_rto = 4.0 * rtt
    denom = rtt * math.sqrt(2.0 * p / 3.0) + t_rto * (
        3.0 * math.sqrt(3.0 * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    return s / denom


def wali_loss_event_rate(
    closed_intervals: list[int],
    open_interval: int,
    history_discount: bool = False,
) -> float:
    """Loss event rate from the weighted average loss interval (RFC 3448 §5.4).

    ``closed_intervals`` holds the most recent closed interval first (packet
    counts between loss-event starts); ``open_interval`` is the number of
    packets received since the most recent loss event.  Returns 0.0 when no
    loss has ever been seen.

    With ``history_discount`` (RFC 3448 §5.5): when the open interval grows
    beyond twice the historical average, older intervals are discounted
    (factor floored at 0.5) so the rate estimate responds faster to a long
    loss-free run.
    """
    if not closed_intervals:
        return 0.0
    n = min(len(closed_intervals), len(WALI_WEIGHTS))
    w = list(WALI_WEIGHTS[:n])
    w_tot = sum(w)
    # History-only average ...
    i_hist = sum(wi * ii for wi, ii in zip(w, closed_intervals[:n])) / w_tot
    if history_discount and open_interval > 2.0 * i_hist and i_hist > 0:
        # RFC 3448 §5.5: DF = max(0.5, 2*I_mean / I_0) applied to history.
        df = max(0.5, 2.0 * i_hist / open_interval)
        w = [wi * df for wi in w]
    # ... vs. average shifted to include the open interval: take the max so
    # a long loss-free run lowers p, but a short one cannot raise it.
    if n > 1:
        shifted_w = [WALI_WEIGHTS[0]] + w[: n - 1]
        shifted_i = [open_interval] + list(closed_intervals[: n - 1])
    else:
        shifted_w = [WALI_WEIGHTS[0]]
        shifted_i = [open_interval]
    i_open = sum(wi * ii for wi, ii in zip(shifted_w, shifted_i)) / sum(shifted_w)
    i_mean = max(i_hist, i_open)
    if i_mean <= 0:
        return 1.0
    return min(1.0, 1.0 / i_mean)


class TfrcReceiver:
    """TFRC receiver: loss-event detection, WALI, once-per-RTT feedback.

    Loss detection exploits FIFO delivery: a jump in the arriving sequence
    number implies the skipped packets were lost.  Each lost packet's time
    is interpolated between the arrivals around the hole; losses within one
    RTT of a loss event's start coalesce into that event (the definition at
    the center of the paper's burstiness argument).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        src: int,
        throughput: Optional[ThroughputTrace] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = src
        self.throughput = throughput
        self.stats = FlowStats(flow_id)

        self.next_expected = 0
        self._last_arrival: tuple[int, float] = (-1, 0.0)  # (seq, time)
        self.closed_intervals: list[int] = []  # most recent first
        self._event_start_time: Optional[float] = None
        self._event_start_seq = 0
        self.loss_events = 0
        self.packets_lost = 0

        self._rtt_hint = 0.1  # sender's RTT estimate carried in data meta
        self._last_data_created = 0.0
        self._fb_bytes = 0
        self._fb_last_time: Optional[float] = None
        self._fb_timer: Optional[Event] = None
        host.attach(flow_id, self)

    # -- data path ---------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        if pkt.kind != DATA:
            self.sim.free_packet(pkt)
            return
        now = self.sim.now
        if isinstance(pkt.meta, (int, float)) and pkt.meta > 0:
            self._rtt_hint = float(pkt.meta)
        self._last_data_created = pkt.created
        self.stats.packets_received += 1
        self.stats.bytes_received += pkt.size
        self._fb_bytes += pkt.size
        if self.throughput is not None:
            self.throughput.record(self.flow_id, pkt.size, now)

        seq = pkt.seq
        if seq > self.next_expected:
            self._register_losses(self.next_expected, seq, now)
        if seq >= self.next_expected:
            self.next_expected = seq + 1
        self._last_arrival = (seq, now)
        self.sim.free_packet(pkt)

        if self._fb_timer is None:
            self._schedule_feedback()

    def _register_losses(self, first_lost: int, next_received: int, now: float) -> None:
        prev_seq, prev_time = self._last_arrival
        span = max(1, next_received - prev_seq)
        for lost in range(first_lost, next_received):
            frac = (lost - prev_seq) / span
            t_loss = prev_time + frac * (now - prev_time)
            self.packets_lost += 1
            if (
                self._event_start_time is None
                or t_loss > self._event_start_time + self._rtt_hint
            ):
                # New loss event: close the running interval.
                if self._event_start_time is not None:
                    interval = max(1, lost - self._event_start_seq)
                    self.closed_intervals.insert(0, interval)
                    del self.closed_intervals[len(WALI_WEIGHTS):]
                self._event_start_time = t_loss
                self._event_start_seq = lost
                self.loss_events += 1

    # -- feedback -------------------------------------------------------------
    def loss_event_rate(self) -> float:
        """Current WALI loss event rate estimate."""
        open_interval = max(0, self.next_expected - self._event_start_seq)
        return wali_loss_event_rate(self.closed_intervals, open_interval)

    def _schedule_feedback(self) -> None:
        self._fb_timer = self.sim.schedule(self._rtt_hint, self._send_feedback)

    def _send_feedback(self) -> None:
        self._fb_timer = None
        now = self.sim.now
        elapsed = (
            now - self._fb_last_time if self._fb_last_time is not None else self._rtt_hint
        )
        x_recv = self._fb_bytes / max(elapsed, 1e-9)
        self._fb_bytes = 0
        self._fb_last_time = now
        fb = self.sim.alloc_packet(
            self.flow_id,
            self.next_expected,
            40,
            kind=ACK,
            src=self.host.node_id,
            dst=self.src,
            created=now,
            meta=(self.loss_event_rate(), x_recv, self._last_data_created),
        )
        self.host.send(fb)
        self._schedule_feedback()


class TfrcSender:
    """TFRC sender: equation-based rate control with paced emission."""

    variant = "tfrc"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: int,
        packet_size: int = 1000,
        base_rtt: float = 0.1,
        total_packets: Optional[int] = None,
    ):
        if base_rtt <= 0:
            raise ValueError(f"base_rtt must be positive, got {base_rtt}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.packet_size = int(packet_size)
        self.base_rtt = float(base_rtt)
        self.total_packets = total_packets
        self.stats = FlowStats(flow_id)

        self.srtt: Optional[float] = None
        self.p = 0.0
        self.x_recv = 0.0
        # Initial rate: two packets per RTT (RFC 3448 §4.2 spirit).
        self.rate_bps = 2.0 * packet_size * 8.0 / base_rtt
        self.next_seq = 0
        self._timer: Optional[Event] = None
        self._nofb_timer: Optional[Event] = None
        self._got_feedback_since = False
        self.started = False
        self.finished = False
        host.attach(flow_id, self)

    # -- lifecycle ---------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin operating at absolute simulation time ``at``."""
        self.sim.schedule_at(at, self._start_now)

    def _start_now(self) -> None:
        if self.started:
            return
        self.started = True
        self.stats.start_time = self.sim.now
        self._send_tick()
        self._arm_nofeedback()

    def stop(self) -> None:
        """Stop operating and cancel any pending timers."""
        self.finished = True
        for t in (self._timer, self._nofb_timer):
            if t is not None:
                t.cancel()
        self._timer = self._nofb_timer = None

    # -- emission -------------------------------------------------------------
    def rtt_estimate(self) -> float:
        """Current RTT estimate (sRTT or the base-RTT fallback)."""
        return self.srtt if self.srtt is not None else self.base_rtt

    def _send_tick(self) -> None:
        self._timer = None
        if self.finished:
            return
        if self.total_packets is not None and self.next_seq >= self.total_packets:
            self.finished = True
            self.stats.finish_time = self.sim.now
            return
        pkt = self.sim.alloc_packet(
            self.flow_id,
            self.next_seq,
            self.packet_size,
            kind=DATA,
            src=self.host.node_id,
            dst=self.dst,
            created=self.sim.now,
            meta=self.rtt_estimate(),
        )
        self.next_seq += 1
        self.stats.packets_sent += 1
        self.stats.bytes_sent += pkt.size
        self.host.send(pkt)
        interval = self.packet_size * 8.0 / self.rate_bps
        self._timer = self.sim.schedule(interval, self._send_tick)

    # -- feedback path ----------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Agent/node entry point: process an incoming packet."""
        if pkt.kind != ACK or pkt.meta is None or self.finished:
            self.sim.free_packet(pkt)
            return
        p, x_recv, echo_ts = pkt.meta
        self.sim.free_packet(pkt)
        now = self.sim.now
        if echo_ts > 0:
            rtt = now - echo_ts
            self.srtt = rtt if self.srtt is None else 0.875 * self.srtt + 0.125 * rtt
        self.p = float(p)
        self.x_recv = float(x_recv)
        self._got_feedback_since = True
        self._update_rate()

    def _update_rate(self) -> None:
        s, r = self.packet_size, self.rtt_estimate()
        floor = s * 8.0 / T_MBI
        if self.p > 0.0:
            x_eq = tfrc_throughput_eq(s, r, self.p) * 8.0  # -> bits/sec
            cap = max(2.0 * self.x_recv * 8.0, floor)
            self.rate_bps = max(min(x_eq, cap), floor)
        else:
            # No loss yet: double per feedback, bounded by twice the
            # delivered rate (slow-start analogue).
            cap = max(2.0 * self.x_recv * 8.0, 2.0 * s * 8.0 / r)
            self.rate_bps = max(min(2.0 * self.rate_bps, cap), floor)

    # -- no-feedback timer ---------------------------------------------------
    def _arm_nofeedback(self) -> None:
        interval = max(4.0 * self.rtt_estimate(), 2.0 * self.packet_size * 8.0 / self.rate_bps)
        self._nofb_timer = self.sim.schedule(interval, self._nofeedback_fired)

    def _nofeedback_fired(self) -> None:
        self._nofb_timer = None
        if self.finished:
            return
        if not self._got_feedback_since:
            floor = self.packet_size * 8.0 / T_MBI
            self.rate_bps = max(self.rate_bps / 2.0, floor)
        self._got_feedback_since = False
        self._arm_nofeedback()
