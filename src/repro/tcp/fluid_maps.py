"""Per-protocol fluid window maps — the TCP half of the mean-field backend.

The packet engine evolves each sender's window through per-packet ACK
clocking; the fluid backend (:mod:`repro.sim.fluid`) evolves one *mean*
window per flow class instead, and needs only two protocol-specific
ingredients to do it:

* the **loss-free growth rate** ``dW/dt`` (slow start doubles per RTT,
  congestion avoidance adds one segment per RTT), and
* the **multiplicative decrease** ``beta`` applied once per loss event.

:class:`FluidWindowMap` packages exactly those, vectorized over numpy
class arrays, and a registry keyed by the *same* names as
:func:`repro.tcp.registry.create_sender` lets drivers flip
``backend="fluid"`` without renaming anything.  Maps exist for
``reno``, ``newreno``, and ``paced``; the remaining zoo senders (bbr,
bic, sack, fast, quic-paced) have window laws whose mean-field
reduction we have not derived, so :func:`make_fluid_map` raises
:class:`~repro.sim.queues.FluidNotSupported` for them with the
supported set in the message.

The reduction is deliberately coarse: at the mean-field level reno and
newreno share one AIMD law (their difference — recovery from multiple
losses in one window — is a per-event packet mechanism below the
resolution of a rate ODE), and pacing changes the *sub-RTT emission
pattern*, not the window law, so ``paced`` shares the AIMD map too but
keeps ``rate_based=True`` so drivers can attribute throughput classes
consistently with the packet engine.  The convergence suite
(``tests/experiments/test_manyflows.py``) is the check that this
coarseness still predicts what the packet engine does as N grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.queues import FluidNotSupported
from repro.tcp.registry import sender_names, sender_spec

__all__ = [
    "FluidWindowMap",
    "register_fluid_map",
    "make_fluid_map",
    "fluid_map_names",
]

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class FluidWindowMap:
    """Mean-field window dynamics for one congestion-control variant.

    ``growth(W, ssthresh, rtt)`` returns the loss-free ``dW/dt`` array
    for per-class windows ``W`` (packets), slow-start thresholds
    ``ssthresh`` and round-trip times ``rtt`` (seconds, queueing delay
    included).  ``beta`` is the multiplicative-decrease factor a loss
    event applies to both the window and the new ``ssthresh``.
    ``rate_based`` mirrors :class:`repro.tcp.registry.SenderSpec` so the
    fluid drivers classify throughput the same way the packet drivers
    do.
    """

    name: str
    beta: float
    rate_based: bool
    description: str
    growth: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] = field(
        repr=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self):
        if self.growth is None:
            object.__setattr__(self, "growth", _aimd_growth)
        if not 0.0 < self.beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")


def _aimd_growth(W: np.ndarray, ssthresh: np.ndarray,
                 rtt: np.ndarray) -> np.ndarray:
    """Standard-TCP growth: exponential below ssthresh, +1/RTT above.

    Slow start doubles the window each RTT, i.e. ``dW/dt = W ln2 / R``
    (the continuous-time law whose solution is ``W0 * 2^(t/R)``);
    congestion avoidance adds one segment per RTT, ``dW/dt = 1/R``.
    """
    return np.where(W < ssthresh, W * (_LN2 / rtt), 1.0 / rtt)


_FLUID_MAP_REGISTRY: dict[str, FluidWindowMap] = {}


def register_fluid_map(fmap: FluidWindowMap) -> FluidWindowMap:
    """Register (or replace) the fluid window map for a sender name."""
    _FLUID_MAP_REGISTRY[fmap.name] = fmap
    return fmap


def fluid_map_names() -> tuple[str, ...]:
    """Sender names with a registered fluid window map, sorted."""
    return tuple(sorted(_FLUID_MAP_REGISTRY))


def make_fluid_map(name: str) -> FluidWindowMap:
    """Look up the fluid window map for a registered sender name.

    Unknown names raise ``ValueError`` (same contract as
    :func:`repro.tcp.registry.sender_spec`); registered senders without
    a mean-field reduction raise
    :class:`~repro.sim.queues.FluidNotSupported` naming the supported
    set.
    """
    if name not in sender_names():
        raise ValueError(
            f"unknown sender {name!r}; registered: {', '.join(sender_names())}"
        )
    try:
        return _FLUID_MAP_REGISTRY[name]
    except KeyError:
        raise FluidNotSupported(
            f"sender {name!r} has no fluid window map (its window law has "
            "no mean-field reduction here); fluid-supported senders: "
            f"{', '.join(fluid_map_names())}"
        ) from None


register_fluid_map(FluidWindowMap(
    name="reno",
    beta=0.5,
    rate_based=sender_spec("reno").rate_based,
    description="AIMD(1, 1/2): slow start, +1 MSS/RTT, halve per loss event",
))

register_fluid_map(FluidWindowMap(
    name="newreno",
    beta=0.5,
    rate_based=sender_spec("newreno").rate_based,
    description="Same mean-field AIMD(1, 1/2) law as reno (partial-ACK "
                "recovery is below the ODE's resolution)",
))

register_fluid_map(FluidWindowMap(
    name="paced",
    beta=0.5,
    rate_based=sender_spec("paced").rate_based,
    description="AIMD(1, 1/2) at rate W/RTT; pacing shapes sub-RTT "
                "emission, which the fluid limit already assumes",
))
