"""BIC-TCP congestion control (Xu, Harfoush & Rhee, INFOCOM 2004).

The Linux default of the paper's era (2.6.8–2.6.18) and a natural member
of this study: BIC is *window-based* — its packets leave in the same
sub-RTT clumps as Reno/NewReno, so everything the paper says about
window-based loss detection applies — but its growth law is a binary
search toward the window where the last loss happened, making it far more
aggressive than NewReno on large-BDP paths.

Implemented per the original algorithm (packet units):

* on loss: remember ``w_max``, reduce by ``beta``;
* below ``w_max``: binary-search increase toward the midpoint, capped at
  ``s_max`` per RTT and floored at ``b_min``... then linear ramp when the
  midpoint is far (additive increase of ``s_max``);
* above ``w_max``: slow-start-like max probing.

Loss recovery machinery (fast retransmit, partial ACKs, RTO) is inherited
from NewReno — BIC only replaces the growth/decrease laws.
"""

from __future__ import annotations

from repro.tcp.newreno import NewRenoSender

__all__ = ["BicSender"]


class BicSender(NewRenoSender):
    """Window-based BIC-TCP sender.

    Parameters (beyond :class:`repro.tcp.base.TcpSender`'s):

    s_max:
        Maximum window increment per RTT (packets).
    b_min:
        Minimum increment before switching to max probing.
    beta:
        Multiplicative decrease factor on loss (BIC default 0.8,
        gentler than Reno's 0.5).
    low_window:
        Below this window BIC behaves like NewReno (TCP friendliness).
    """

    variant = "bic"

    def __init__(
        self,
        *args,
        s_max: float = 32.0,
        b_min: float = 0.01,
        beta: float = 0.8,
        low_window: float = 14.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if s_max <= 0 or b_min <= 0:
            raise ValueError(f"s_max and b_min must be positive")
        if not (0.0 < beta < 1.0):
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.s_max = float(s_max)
        self.b_min = float(b_min)
        self.beta = float(beta)
        self.low_window = float(low_window)
        self.w_max: float = 0.0  # window where the last loss happened

    # -- growth law ------------------------------------------------------
    def _bic_increment(self) -> float:
        """Per-ACK window increment (the per-RTT increment over cwnd)."""
        w = self.cwnd
        if w < self.low_window or self.w_max <= 0:
            return 1.0 / w  # NewReno-equivalent regime
        if w < self.w_max:
            # Binary search toward the midpoint.
            inc = (self.w_max - w) / 2.0
        else:
            # Max probing beyond the old maximum: accelerate away.
            inc = w - self.w_max + 1.0
        inc = min(max(inc, self.b_min), self.s_max)
        return inc / w

    def slow_start_or_avoidance_increase(self, newly_acked: int) -> None:
        """BIC growth law: binary search / max probing per ACK."""
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, max(self.ssthresh, self.cwnd))
        else:
            self.cwnd += newly_acked * self._bic_increment()
        self.cwnd = min(self.cwnd, self.max_cwnd)

    # -- decrease law ------------------------------------------------------
    def halve_window(self) -> None:
        """BIC decrease law: remember w_max, reduce by beta."""
        w = max(self.inflight, 2.0)
        if w < self.w_max:
            # Fast convergence: a second loss below the old max means a new
            # flow wants room; release more.
            self.w_max = w * (1.0 + self.beta) / 2.0
        else:
            self.w_max = w
        self.ssthresh = max(w * self.beta, 2.0)
