"""Named sender registry — the protocol half of the protocol/AQM zoo.

Experiment drivers resolve congestion-control variants by string key
instead of importing sender classes, so a new protocol becomes a new
grid column the moment it registers:

>>> snd = create_sender("bbr", sim, host, flow_id, dst, rtt=0.05)

Each entry carries a :class:`SenderSpec` with the metadata drivers need
beyond the factory itself — most importantly ``rate_based``, which is
the paper's own axis: window-based senders burst the ``w(t) - pif(t)``
gap back-to-back, rate-based senders spread transmissions across the
RTT, and Fig. 5/Fig. 7 show that this sub-RTT difference alone decides
which flows sample the bursty loss process.  The zoo grid uses the flag
to assign each sender to the baseline or challenger throughput class.

The AQM counterpart is :func:`repro.sim.queues.make_queue`.

Registered out of the box: ``reno``, ``newreno``, ``paced``,
``quic-paced``, ``bbr``, ``bic``, ``sack``, ``fast``.  TFRC is *not*
registered — it needs a :class:`~repro.tcp.tfrc.TfrcReceiver` rather
than a plain :class:`~repro.tcp.sink.TcpSink`, so it does not fit the
uniform sender/sink wiring contract; drivers use it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.tcp.base import TcpSender
from repro.tcp.bbr import BbrSender
from repro.tcp.bic import BicSender
from repro.tcp.fast import FastSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.pacing import PacedSender, QuicPacedSender
from repro.tcp.reno import RenoSender
from repro.tcp.sack import SackSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Host

__all__ = [
    "SenderSpec",
    "register_sender",
    "create_sender",
    "sender_names",
    "sender_spec",
]


@dataclass(frozen=True)
class SenderSpec:
    """Registry entry for one congestion-control variant.

    ``factory(sim, host, flow_id, dst, rtt, **kwargs)`` builds the
    sender; ``rtt`` is the path's propagation RTT (rate-based senders
    seed their pacing clock from it, window-based factories ignore it).
    ``rate_based`` is the paper's sub-RTT emission-pattern class.
    """

    name: str
    factory: Callable[..., TcpSender]
    rate_based: bool
    description: str


_SENDER_REGISTRY: dict[str, SenderSpec] = {}


def register_sender(name: str, *, rate_based: bool, description: str = ""):
    """Decorator: register a sender factory under a string key.

    Re-registering a name replaces the entry (extensions may refine a
    core variant).
    """

    def deco(factory: Callable[..., TcpSender]):
        _SENDER_REGISTRY[name] = SenderSpec(
            name=name, factory=factory, rate_based=rate_based,
            description=description,
        )
        return factory

    return deco


def sender_names() -> tuple[str, ...]:
    """Registered protocol keys, sorted."""
    return tuple(sorted(_SENDER_REGISTRY))


def sender_spec(name: str) -> SenderSpec:
    """Look up a registry entry; raises ``ValueError`` on unknown keys."""
    try:
        return _SENDER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sender {name!r}; registered: {', '.join(sender_names())}"
        ) from None


def create_sender(
    name: str,
    sim: "Simulator",
    host: "Host",
    flow_id: int,
    dst: int,
    *,
    rtt: Optional[float] = None,
    **kwargs,
) -> TcpSender:
    """Build a sender by registry key with the uniform driver signature."""
    return sender_spec(name).factory(sim, host, flow_id, dst, rtt=rtt, **kwargs)


# ---------------------------------------------------------------------------
# Built-in zoo
# ---------------------------------------------------------------------------


@register_sender("reno", rate_based=False,
                 description="TCP Reno: fast recovery deflates on first new ACK")
def _make_reno(sim, host, flow_id, dst, rtt=None, **kwargs) -> RenoSender:
    return RenoSender(sim, host, flow_id, dst, **kwargs)


@register_sender("newreno", rate_based=False,
                 description="TCP NewReno (the paper's window-based baseline)")
def _make_newreno(sim, host, flow_id, dst, rtt=None, **kwargs) -> NewRenoSender:
    return NewRenoSender(sim, host, flow_id, dst, **kwargs)


@register_sender("paced", rate_based=True,
                 description="TCP Pacing: NewReno at rate cwnd/RTT (paper §4)")
def _make_paced(sim, host, flow_id, dst, rtt=None, **kwargs) -> PacedSender:
    return PacedSender(sim, host, flow_id, dst, base_rtt=rtt, **kwargs)


@register_sender("quic-paced", rate_based=True,
                 description="QUIC-style pacing: 1.25x gain + idle burst allowance")
def _make_quic(sim, host, flow_id, dst, rtt=None, **kwargs) -> QuicPacedSender:
    return QuicPacedSender(sim, host, flow_id, dst, base_rtt=rtt, **kwargs)


@register_sender("bbr", rate_based=True,
                 description="BBRv1: model-based btlbw x rtprop pacing")
def _make_bbr(sim, host, flow_id, dst, rtt=None, **kwargs) -> BbrSender:
    return BbrSender(sim, host, flow_id, dst, base_rtt=rtt, **kwargs)


@register_sender("bic", rate_based=False,
                 description="BIC-TCP: binary-search window growth")
def _make_bic(sim, host, flow_id, dst, rtt=None, **kwargs) -> BicSender:
    return BicSender(sim, host, flow_id, dst, **kwargs)


@register_sender("sack", rate_based=False,
                 description="TCP SACK: selective-ack loss recovery")
def _make_sack(sim, host, flow_id, dst, rtt=None, **kwargs) -> SackSender:
    return SackSender(sim, host, flow_id, dst, **kwargs)


@register_sender("fast", rate_based=False,
                 description="FAST TCP: delay-based window law")
def _make_fast(sim, host, flow_id, dst, rtt=None, **kwargs) -> FastSender:
    return FastSender(sim, host, flow_id, dst, **kwargs)
