"""BBRv1-style model-based congestion control (Cardwell et al. 2016).

BBR does not react to individual losses at all — it builds an explicit
model of the path, the *bottleneck bandwidth* (windowed max of delivery
rate over ~10 round trips) and the *round-trip propagation time*
(windowed min of RTT over 10 seconds), and paces at ``gain * btlbw``
while capping in-flight data near the model's BDP.  A four-state machine
drives the gains:

STARTUP
    pacing/cwnd gain ``2/ln 2`` (doubles the sending rate every RTT, the
    rate-based analogue of slow start) until the bandwidth estimate stops
    growing for three rounds ("pipe full").
DRAIN
    inverse gain to pull the STARTUP queue back out of the bottleneck.
PROBE_BW
    the steady state: an eight-phase gain cycle ``1.25, 0.75, 1 × 6``,
    each phase lasting one rtprop — probe for more bandwidth, drain the
    probe's queue, then cruise.
PROBE_RTT
    if the rtprop estimate has not been refreshed for 10 s, drop the
    window to 4 packets for ``max(rtprop, 200 ms)`` to drain the pipe and
    re-measure the floor.

Relevance here: BBR is *rate-based at every timescale*, so the paper's
Fig. 7 question — does bursty sub-RTT loss discriminate against smooth
senders? — gets a very different answer: BBR mostly does not care which
packets are lost, only what the ACK stream says about delivery rate.  The
zoo-grid experiment (:mod:`repro.experiments.zoo_grid`) runs exactly that
comparison.  This is a simulator-grade BBRv1: the delivery-rate sampler,
filters, gain cycle, and state machine follow the paper; minor mechanisms
(app-limited tracking, packet conservation during recovery) are simplified.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.pacing import PacedSender

__all__ = ["BbrSender"]

#: STARTUP gain 2/ln2: doubles the delivery rate each round trip.
STARTUP_GAIN = 2.0 / math.log(2.0)
#: PROBE_BW's eight-phase pacing-gain cycle, each phase one rtprop long.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: btlbw filter window (round trips) and rtprop filter window (seconds).
BTLBW_WINDOW_ROUNDS = 10
RTPROP_WINDOW_S = 10.0
#: PROBE_RTT floor: window in packets, and minimum dwell time.
PROBE_RTT_CWND = 4.0
PROBE_RTT_DURATION_S = 0.2


class BbrSender(PacedSender):
    """Rate-based BBRv1 sender on the shared reliability machinery.

    Reuses :class:`~repro.tcp.pacing.PacedSender`'s timer-driven emission
    (one packet per pacing interval) but derives the interval from the
    path model — ``pacing_gain * btlbw`` — instead of ``cwnd / RTT``, and
    replaces the NewReno window laws entirely: loss triggers
    retransmission for *reliability*, never multiplicative decrease.
    Until the model has its first bandwidth sample the sender paces at
    ``cwnd / RTT`` with the STARTUP gain, which reproduces slow start's
    exponential ramp in rate form.
    """

    variant = "bbr"

    def __init__(self, *args, base_rtt: Optional[float] = None, **kwargs):
        super().__init__(*args, base_rtt=base_rtt, **kwargs)
        # Path model.
        self._btlbw_samples: list[tuple[int, float]] = []  # (round, bps)
        self._rtprop: Optional[float] = None
        self._rtprop_stamp = 0.0
        # Delivery-rate sampler: cumulative delivered packets, and per-seq
        # (send_time, delivered_at_send) so each ACK yields a rate sample.
        self._delivered = 0
        self._rate_meta: dict[int, tuple[float, int]] = {}
        # Round-trip counting (one round per window's worth of ACKs).
        self.round_count = 0
        self._round_end_seq = 0
        # State machine.
        self.state = "STARTUP"
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        self.cycle_index = 0
        self._cycle_stamp = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._full_pipe = False
        self._probe_rtt_done = 0.0

    # ------------------------------------------------------------------
    # path model
    # ------------------------------------------------------------------
    def btlbw_bps(self) -> float:
        """Bottleneck-bandwidth estimate: windowed max of delivery rate."""
        if not self._btlbw_samples:
            return 0.0
        return max(rate for _, rate in self._btlbw_samples)

    def rtprop(self) -> float:
        """Round-trip propagation estimate: windowed min of RTT samples."""
        if self._rtprop is not None:
            return self._rtprop
        if self.base_rtt is not None:
            return self.base_rtt
        return self.rto

    def bdp_packets(self) -> float:
        """The model's bandwidth-delay product, in packets."""
        bw = self.btlbw_bps()
        if bw <= 0.0:
            return 0.0
        return bw * self.rtprop() / (self.packet_size * 8.0)

    def _update_btlbw(self, rate_bps: float) -> None:
        self._btlbw_samples.append((self.round_count, rate_bps))
        horizon = self.round_count - BTLBW_WINDOW_ROUNDS
        self._btlbw_samples = [
            (r, v) for r, v in self._btlbw_samples if r > horizon
        ]

    def _rtt_sample(self, rtt: float) -> None:
        super()._rtt_sample(rtt)
        now = self.sim.now
        if (
            self._rtprop is None
            or rtt <= self._rtprop
            or now - self._rtprop_stamp > RTPROP_WINDOW_S
        ):
            self._rtprop = rtt
            self._rtprop_stamp = now

    # ------------------------------------------------------------------
    # delivery-rate sampling
    # ------------------------------------------------------------------
    def _emit(self, seq: int, retransmission: bool) -> None:
        self._rate_meta[seq] = (self.sim.now, self._delivered)
        super()._emit(seq, retransmission)

    def _sample_delivery_rate(self, ack: int) -> None:
        meta = self._rate_meta.get(ack - 1)
        for seq in list(self._rate_meta):
            if seq < ack:
                del self._rate_meta[seq]
        if meta is None:
            return
        send_time, delivered_at_send = meta
        elapsed = self.sim.now - send_time
        if elapsed <= 0.0:
            return
        rate = (self._delivered - delivered_at_send) * self.packet_size * 8.0 / elapsed
        self._update_btlbw(rate)

    # ------------------------------------------------------------------
    # window laws (NewReno's are replaced wholesale)
    # ------------------------------------------------------------------
    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Model update + state machine step; no loss-driven decrease."""
        self.in_fast_recovery = False
        self.dupacks = 0
        self._delivered += newly_acked
        if ack > self._round_end_seq:
            self.round_count += 1
            self._round_end_seq = self.next_seq
        self._sample_delivery_rate(ack)
        self._advance_state_machine()
        self._set_cwnd(newly_acked)

    def on_dup_ack(self, ack: int, count: int) -> None:
        """Fast retransmit for reliability; the model, not the loss,
        decides the rate."""
        if count == 3:
            self.stats.fast_retransmits += 1
            self.retransmit_head()

    def on_timeout(self) -> None:
        """Go-back-N resend with a temporary conservative window; the
        model restores cwnd on the next ACK."""
        self.cwnd = PROBE_RTT_CWND
        self.go_back_n()

    def _set_cwnd(self, newly_acked: int) -> None:
        if self.state == "PROBE_RTT":
            self.cwnd = PROBE_RTT_CWND
            return
        bdp = self.bdp_packets()
        if bdp <= 0.0:
            # No bandwidth sample yet: exponential rate ramp à la slow start.
            self.cwnd += newly_acked
        else:
            self.cwnd = max(self.cwnd_gain * bdp, PROBE_RTT_CWND)
        self.cwnd = min(self.cwnd, self.max_cwnd)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _advance_state_machine(self) -> None:
        now = self.sim.now
        if self.state != "PROBE_RTT" and self._rtprop is not None \
                and now - self._rtprop_stamp > RTPROP_WINDOW_S:
            self.state = "PROBE_RTT"
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self._probe_rtt_done = now + max(self.rtprop(), PROBE_RTT_DURATION_S)
        if self.state == "STARTUP":
            self._check_full_pipe()
            if self._full_pipe:
                self.state = "DRAIN"
                self.pacing_gain = 1.0 / STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN
        if self.state == "DRAIN" and self.inflight <= self.bdp_packets():
            self._enter_probe_bw(now)
        if self.state == "PROBE_BW" and now - self._cycle_stamp > self.rtprop():
            self.cycle_index = (self.cycle_index + 1) % len(PROBE_BW_GAINS)
            self.pacing_gain = PROBE_BW_GAINS[self.cycle_index]
            self._cycle_stamp = now
        if self.state == "PROBE_RTT" and now >= self._probe_rtt_done:
            self._rtprop_stamp = now  # floor re-measured; reset the clock
            if self._full_pipe:
                self._enter_probe_bw(now)
            else:
                self.state = "STARTUP"
                self.pacing_gain = STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self.state = "PROBE_BW"
        self.cycle_index = 0
        self.pacing_gain = PROBE_BW_GAINS[0]
        self.cwnd_gain = 2.0
        self._cycle_stamp = now

    def _check_full_pipe(self) -> None:
        """Pipe is full when btlbw stops growing >= 25% for three rounds."""
        bw = self.btlbw_bps()
        if bw >= self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self._full_pipe = True

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def pacing_rate_bps(self) -> float:
        """The model-driven wire rate: ``pacing_gain * btlbw``."""
        bw = self.btlbw_bps()
        if bw > 0.0:
            return self.pacing_gain * bw
        return self.pacing_gain * super().pacing_rate_bps()

    def pacing_interval(self) -> float:
        """Gap between emissions: one packet at the model's pacing rate."""
        rate = self.pacing_rate_bps()
        if rate <= 0.0:
            return super().pacing_interval()
        return self.packet_size * 8.0 / rate
