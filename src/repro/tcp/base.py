"""Reliable-transfer machinery shared by all TCP senders.

Sequence numbers are in *packets* (the NS-2 convention): data packet ``k``
carries ``seq = k``; a cumulative ACK carries the next expected packet
index.  The base class owns everything protocol-variant-independent:

* packet emission and in-flight accounting,
* RTT estimation (RFC 6298 SRTT/RTTVAR, Karn's algorithm),
* the retransmission timer with exponential backoff,
* classification of incoming ACKs into new / duplicate,
* completion detection for finite transfers.

Congestion-control variants (:mod:`repro.tcp.reno`,
:mod:`repro.tcp.newreno`, :mod:`repro.tcp.pacing`) override the small set
of ``on_*`` hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
from repro.sim.node import Host
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.trace import FlowStats

__all__ = ["TcpSender", "ACK_SIZE"]

ACK_SIZE = 40  # bytes on the wire for a pure ACK


class TcpSender:
    """Base window-based TCP sender.

    Parameters
    ----------
    sim, host:
        Engine and the local host the sender is attached to.
    flow_id:
        Flow identifier; the matching sink must be attached under the same
        id on the destination host.
    dst:
        Destination node id.
    total_packets:
        Number of data packets to transfer; ``None`` means unbounded
        (long-lived flow, runs until the simulation horizon).
    packet_size:
        Data packet wire size in bytes.
    initial_cwnd:
        Initial congestion window in packets (the paper describes flows
        starting at two packets per RTT; RFC 2581 allows 1–2).
    max_cwnd:
        Receiver-window stand-in: hard cap on cwnd in packets.
    min_rto:
        Lower bound on the retransmission timeout (NS-2 uses 0.2 s).
    ecn:
        Negotiate ECN: data packets are sent ECN-capable and ECN echoes
        trigger a once-per-window rate reduction.
    on_complete:
        Callback invoked once, with the completion time, when
        ``total_packets`` are acknowledged.
    """

    #: Subclasses give themselves a human-readable variant name.
    variant = "base"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: int,
        total_packets: Optional[int] = None,
        packet_size: int = 1000,
        initial_cwnd: float = 2.0,
        initial_ssthresh: float = 1e9,
        max_cwnd: float = 1e9,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        ecn: bool = False,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        if total_packets is not None and total_packets <= 0:
            raise ValueError(f"total_packets must be positive, got {total_packets}")
        if packet_size <= 0:
            raise ValueError(f"packet_size must be positive, got {packet_size}")
        if initial_cwnd < 1.0:
            raise ValueError(f"initial cwnd must be >= 1 packet, got {initial_cwnd}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.total_packets = total_packets
        self.packet_size = int(packet_size)
        self.ecn = bool(ecn)
        self.on_complete = on_complete

        # Congestion state (packets).
        self.cwnd = float(initial_cwnd)
        self.initial_cwnd = float(initial_cwnd)
        self.ssthresh = float(initial_ssthresh)
        self.max_cwnd = float(max_cwnd)
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover = -1  # NewReno high-water mark

        # Sequencing.
        self.next_seq = 0  # next *new* sequence number to send
        self.highest_acked = 0  # cumulative: all seq < highest_acked are acked

        # RTT estimation (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rto = float(min_rto)
        self.max_rto = float(max_rto)
        self.rto = 1.0  # initial RTO before the first sample
        self._backoff = 1.0
        self._rto_timer: Optional[Event] = None

        # Karn: per-seq send metadata -> (send_time, was_retransmitted).
        self._send_time: dict[int, tuple[float, bool]] = {}
        # Classic single-segment RTT timer (Jacobson): exactly one in-flight
        # segment is timed at a time; its sample is discarded if the segment
        # is ever retransmitted (Karn's algorithm).
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        # ECN: sequence up to which we've already reacted this window.
        self._cwr_until = -1

        self.stats = FlowStats(flow_id)
        # Timestamped retransmissions: the raw material of TCP-trace-based
        # loss reconstruction (paper §2 / future work — comparing the CBR
        # methodology against Paxson-style TCP trace analysis).
        self.retx_times: list[float] = []
        self.started = False
        self.finished = False

        host.attach(flow_id, self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Schedule the flow to begin sending at absolute time ``at``."""
        self.sim.schedule_at(at, self._start_now)

    def _start_now(self) -> None:
        if self.started:
            return
        self.started = True
        self.stats.start_time = self.sim.now
        self.try_send()

    # ------------------------------------------------------------------
    # in-flight accounting and emission
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Packets sent but not cumulatively acknowledged."""
        return self.next_seq - self.highest_acked

    @property
    def effective_window(self) -> float:
        """Usable window: cwnd capped by the receiver window."""
        return min(self.cwnd, self.max_cwnd)

    def _data_remaining(self) -> bool:
        return self.total_packets is None or self.next_seq < self.total_packets

    def can_send(self) -> bool:
        """Window-based gate: room in the window and data left to send."""
        return self.inflight < int(self.effective_window) and self._data_remaining()

    def try_send(self) -> None:
        """Send as many new packets as the window allows (back-to-back).

        This is the window-based burst behaviour at the heart of the paper:
        whenever ``pif(t) < w(t)``, the gap is filled immediately, so
        packets leave in sub-RTT clusters.  :class:`repro.tcp.pacing`
        overrides this with timer-spread emission.
        """
        while self.can_send():
            self._emit(self.next_seq, retransmission=False)
            self.next_seq += 1

    def _emit(self, seq: int, retransmission: bool) -> None:
        now = self.sim.now
        pkt = self.sim.alloc_packet(
            self.flow_id,
            seq,
            self.packet_size,
            kind=DATA,
            src=self.host.node_id,
            dst=self.dst,
            created=now,
            ecn_capable=self.ecn,
        )
        prior = self._send_time.get(seq)
        was_retx = retransmission or prior is not None
        self._send_time[seq] = (now, was_retx)
        if was_retx and self._timed_seq == seq:
            # Karn: a retransmitted segment's sample is ambiguous; drop it.
            self._timed_seq = None
        elif not was_retx and self._timed_seq is None and not self.in_fast_recovery:
            # Segments sent during fast recovery are only cumulatively
            # acked when recovery completes, so timing them would fold the
            # whole recovery episode into the RTT estimate.
            self._timed_seq = seq
            self._timed_at = now
        self.stats.packets_sent += 1
        self.stats.bytes_sent += pkt.size
        # Count every re-emission of an already-sent sequence — including
        # go-back-N resends after a timeout, which arrive here with
        # retransmission=False but a prior send record.
        if was_retx:
            self.stats.retransmissions += 1
            self.retx_times.append(now)
        self.host.send(pkt)
        if self._rto_timer is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Agent entry point: process an incoming ACK."""
        if pkt.kind != ACK or self.finished:
            self.sim.free_packet(pkt)
            return
        if pkt.ecn_echo:
            self._handle_ecn_echo()
        ack = pkt.seq
        # Last read of the ACK's fields is above: recycle before the window
        # handlers run (they may allocate retransmissions from the pool).
        self.sim.free_packet(pkt)
        if ack > self.highest_acked:
            self._handle_new_ack(ack)
        elif ack == self.highest_acked:
            self._handle_dup_ack(ack)
        # acks below highest_acked are stale; ignore.

    def _handle_new_ack(self, ack: int) -> None:
        # RTT sampling: one timed segment at a time (Jacobson), sample
        # discarded on retransmission (Karn, enforced at emission time).
        if self._timed_seq is not None and ack > self._timed_seq:
            meta = self._send_time.get(self._timed_seq)
            if meta is not None and not meta[1]:
                self._rtt_sample(self.sim.now - self._timed_at)
            self._timed_seq = None
        for seq in range(self.highest_acked, ack):
            self._send_time.pop(seq, None)

        newly_acked = ack - self.highest_acked
        self.highest_acked = ack
        # Go-back-N may have rewound next_seq below the new cumulative
        # point (the rewound packets were acked from orbit); never let the
        # in-flight count go negative.
        if self.next_seq < ack:
            self.next_seq = ack
        self._backoff = 1.0

        self.on_new_ack(ack, newly_acked)

        if (
            self.total_packets is not None
            and self.highest_acked >= self.total_packets
            and not self.finished
        ):
            self._complete()
            return

        self._restart_rto()
        self.try_send()

    def _handle_dup_ack(self, ack: int) -> None:
        if self.inflight == 0:
            return  # window update / stray; nothing outstanding
        self.dupacks += 1
        self.on_dup_ack(ack, self.dupacks)
        self.try_send()

    # ------------------------------------------------------------------
    # hooks for congestion-control variants
    # ------------------------------------------------------------------
    def on_new_ack(self, ack: int, newly_acked: int) -> None:
        """Window update for a cumulative ACK advancing the left edge."""
        raise NotImplementedError

    def on_dup_ack(self, ack: int, count: int) -> None:
        """Reaction to the ``count``-th duplicate ACK for ``ack``."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """Reaction to a retransmission timeout (after base bookkeeping)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared congestion-control helpers
    # ------------------------------------------------------------------
    def slow_start_or_avoidance_increase(self, newly_acked: int) -> None:
        """Standard additive window growth: +1/ACK in slow start (applied
        per newly-acked packet to emulate per-ACK growth under cumulative
        ACKs), +1/cwnd per ACK in congestion avoidance."""
        if self.cwnd < self.ssthresh:
            # Slow start: grow by one packet per acked packet, but never
            # beyond ssthresh + the CA share (simplification: cap at ssthresh).
            self.cwnd = min(self.cwnd + newly_acked, max(self.ssthresh, self.cwnd))
            if self.cwnd >= self.ssthresh:
                pass  # subsequent growth falls through to CA on later acks
        else:
            self.cwnd += newly_acked / self.cwnd
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def halve_window(self) -> None:
        """Multiplicative decrease entering loss recovery."""
        self.ssthresh = max(self.inflight / 2.0, 2.0)

    def _handle_ecn_echo(self) -> None:
        """React to an ECN congestion echo at most once per window."""
        if not self.ecn:
            return
        if self.highest_acked >= self._cwr_until:
            self.halve_window()
            self.cwnd = max(self.ssthresh, 1.0)
            self._cwr_until = self.next_seq

    # ------------------------------------------------------------------
    # RTT / RTO machinery
    # ------------------------------------------------------------------
    def _rtt_sample(self, rtt: float) -> None:
        self.stats.rtt_samples.append(rtt)
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(
            self.max_rto, max(self.min_rto, self.srtt + max(4.0 * self.rttvar, 0.01))
        )

    def _arm_rto(self) -> None:
        self._rto_timer = self.sim.schedule(self.rto * self._backoff, self._rto_fired)

    def _restart_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.inflight > 0:
            self._arm_rto()

    def _rto_fired(self) -> None:
        self._rto_timer = None
        if self.finished or self.inflight == 0:
            return
        self.stats.timeouts += 1
        self._backoff = min(self._backoff * 2.0, 64.0)
        # Everything outstanding becomes eligible for (re)transmission.
        self.dupacks = 0
        self.in_fast_recovery = False
        self._timed_seq = None  # Karn: no sampling across a timeout
        self.on_timeout()
        if self._rto_timer is None:  # _emit may already have re-armed
            self._arm_rto()

    def retransmit_head(self) -> None:
        """Retransmit the first unacknowledged packet."""
        if self.inflight > 0:
            self._emit(self.highest_acked, retransmission=True)

    def go_back_n(self) -> None:
        """Timeout recovery: rewind ``next_seq`` so the window is resent."""
        self.retransmit_head()
        self.next_seq = self.highest_acked + 1

    # ------------------------------------------------------------------
    def _complete(self) -> None:
        self.finished = True
        self.stats.finish_time = self.sim.now
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.on_complete is not None:
            self.on_complete(self.sim.now)

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live flow accounting as callback gauges in ``registry``
        under ``flow.<id>.*`` (the counters the per-flow conservation
        checks in :mod:`repro.obs.invariants` verify)."""
        prefix = f"flow.{self.flow_id}"
        registry.gauge(f"{prefix}.packets_sent", fn=lambda: self.stats.packets_sent)
        registry.gauge(f"{prefix}.bytes_sent", fn=lambda: self.stats.bytes_sent)
        registry.gauge(
            f"{prefix}.retransmissions", fn=lambda: self.stats.retransmissions
        )
        registry.gauge(f"{prefix}.timeouts", fn=lambda: self.stats.timeouts)
        registry.gauge(f"{prefix}.inflight", fn=lambda: self.inflight)
        registry.gauge(f"{prefix}.cwnd", fn=lambda: self.cwnd)
        registry.gauge(f"{prefix}.highest_acked", fn=lambda: self.highest_acked)

    def pacing_rate_bps(self) -> float:
        """Sub-RTT emission rate the current window sustains (bits/sec):
        ``effective_window * packet_size * 8 / rtt``.  For window-based
        senders this is the *average* rate (emission itself is bursty);
        for :class:`repro.tcp.pacing.PacedSender` it is the actual wire
        pacing rate.  The telemetry samplers record it per flow."""
        rtt = self.rtt_estimate()
        if rtt <= 0:
            return 0.0
        return self.effective_window * self.packet_size * 8.0 / rtt

    def rtt_estimate(self) -> float:
        """Current smoothed RTT (falls back to the latest sample or RTO)."""
        if self.srtt is not None:
            return self.srtt
        if self.stats.rtt_samples:
            return self.stats.rtt_samples[-1]
        return self.rto

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} flow={self.flow_id} cwnd={self.cwnd:.2f} "
            f"acked={self.highest_acked} next={self.next_seq}>"
        )
