"""Command-line interface: regenerate any paper figure/table.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig2 [--seed 1] [--scale fast|paper]
    python -m repro fig2 --check-invariants --metrics-out m.json
    python -m repro all                  # everything, in paper order

Each command runs the corresponding experiment driver and prints the
paper-shaped output (the same text the benchmarks print).

``python -m repro bench [DIR] [--smoke]`` runs the tracked benchmark
suite (:mod:`repro.bench`): paired baseline-vs-optimized measurements
written to the next free ``BENCH_<n>.json`` in DIR.

``python -m repro campaign --sites M --shards N --state-dir DIR`` runs a
crash-tolerant sharded measurement campaign
(:mod:`repro.internet.supervisor`): the O(sites²) path matrix is split
into deterministic shards, executed under a supervising parent
(heartbeats, retry backoff, poison-shard quarantine), and reduced into
the Figure 4 distribution.  ``--resume`` picks up a killed campaign from
its state directory, byte-identical to an uninterrupted run;
``--workers N`` fans shards over real worker processes; with
``--inject-faults SEED`` worker SIGKILLs and hangs are injected on top
(the chaos lane).

``--check-invariants`` arms the packet-conservation checker
(:mod:`repro.obs`) for drivers that support it: any accounting violation
aborts the run with a diagnostic ``InvariantViolation``.  ``--metrics-out
PATH`` writes a metrics JSON (per-queue conservation counters, link
utilization, event-loop statistics) next to the results; when several
experiments run, each gets its own ``PATH`` with the experiment name
spliced in before the extension.

Resilience flags (see :mod:`repro.faults`): ``--workers N`` fans
parallelizable drivers over N processes (bit-identical to serial);
``--on-error {raise,skip,retry}`` sets the failed-work policy;
``--checkpoint-dir DIR`` streams completed campaign cells to JSON-lines
files there so interrupted runs resume; ``--inject-faults SEED`` arms a
seed-reproducible fault plan (link flaps, loss spikes, probe crashes).
Each flag sets the corresponding ``REPRO_*`` environment variable for the
duration of the run, so drivers pick them up without new parameters.

Flight-recorder flags (see :mod:`repro.obs`): ``--telemetry-out DIR``
arms per-run telemetry samplers and span tracing and writes the flight
record (``manifest.json`` / ``telemetry.json`` / ``spans.jsonl`` /
``metrics.json``) into DIR (one subdirectory per experiment when several
run); ``--report`` additionally renders ``report.md`` there.  A recorded
run directory renders later with ``python -m repro report <run-dir>``;
reports are byte-identical across runs of the same seed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

__all__ = ["main", "EXPERIMENTS"]


def _fig2(seed, scale):
    from repro.experiments import run_fig2

    return run_fig2(seed=seed, scale=scale).to_text()


def _fig3(seed, scale):
    from repro.experiments import run_fig3

    return run_fig3(seed=seed, scale=scale).to_text()


def _fig4(seed, scale):
    from repro.experiments import run_fig4

    return run_fig4(seed=seed if seed != 1 else 2006, scale=scale).to_text()


def _fig7(seed, scale):
    from repro.experiments import run_fig7

    return run_fig7(seed=seed, scale=scale).to_text()


def _fig8(seed, scale):
    from repro.experiments import run_fig8

    return run_fig8(seed=seed, scale=scale).to_text()


def _table1(seed, scale):
    from repro.experiments import run_table1

    return run_table1().to_text()


def _eq12(seed, scale):
    from repro.experiments import analytic_table, run_eq12

    return analytic_table() + "\n\n" + run_eq12(seed=seed, scale=scale).to_text()


def _methodology(seed, scale):
    from repro.experiments import run_methodology

    return run_methodology(seed=seed, scale=scale).to_text()


def _mapreduce(seed, scale):
    from repro.experiments import run_mapreduce

    return run_mapreduce(seed=seed, scale=scale).to_text()


def _shortflows(seed, scale):
    from repro.experiments import run_shortflows

    return run_shortflows(seed=seed, scale=scale).to_text()


def _zoo(seed, scale):
    from repro.experiments import run_zoo

    return run_zoo(seed=seed, scale=scale).to_text()


def _manyflows(seed, scale):
    from repro.experiments import run_manyflows

    return run_manyflows(seed=seed, scale=scale).to_text()


def _red(seed, scale):
    from repro.extensions import run_red_sweep, sweep_table

    return sweep_table(run_red_sweep(seed=seed, scale=scale))


def _ecn(seed, scale):
    from repro.extensions import run_ecn_fairness

    return run_ecn_fairness(seed=seed, scale=scale).to_text()


def _delay(seed, scale):
    from repro.extensions import run_delay_based

    return run_delay_based(seed=seed, scale=scale).to_text()


#: name -> (runner, description).  Order = presentation order for ``all``.
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table1": (_table1, "Table 1 — PlanetLab measurement sites"),
    "fig2": (_fig2, "Figure 2 — inter-loss PDF, NS-2-style simulation"),
    "fig3": (_fig3, "Figure 3 — inter-loss PDF, Dummynet-style emulation"),
    "fig4": (_fig4, "Figure 4 — inter-loss PDF, Internet campaign"),
    "eq12": (_eq12, "Equations (1)/(2) — loss-event detection by class"),
    "fig7": (_fig7, "Figure 7 — TCP Pacing vs NewReno competition"),
    "fig8": (_fig8, "Figure 8 — parallel-transfer latency grid"),
    "zoo": (_zoo, "Extension — protocol/AQM zoo grid (Fig. 7 + Eqs. 1-2)"),
    "manyflows": (_manyflows,
                  "Extension — many-flows convergence, packet vs fluid"),
    "methodology": (_methodology, "Extension — measurement methodology comparison"),
    "shortflows": (_shortflows, "Extension — slow-start churn burstiness (§3.3)"),
    "red": (_red, "Extension — RED tuning sweep"),
    "ecn": (_ecn, "Extension — persistent one-RTT ECN fairness"),
    "delay": (_delay, "Extension — delay-based vs loss-based control"),
    "mapreduce": (_mapreduce, "Extension — MapReduce shuffle predictability"),
}


#: --help epilog: every REPRO_* knob next to the flag that sets it, so
#: flag/env parity is documented in one place (docs/API.md mirrors it).
_ENV_EPILOG = """\
environment knobs (set by the flags above, or directly):
  REPRO_SCALE              scenario scale, fast|paper       (--scale)
  REPRO_METRICS_OUT        metrics JSON path                (--metrics-out)
  REPRO_CHECK_INVARIANTS   1 = verify conservation          (--check-invariants)
  REPRO_CHECK_INTERVAL     sim-seconds between sweeps       (default 1.0)
  REPRO_WORKERS            worker process count             (--workers)
  REPRO_ON_ERROR           raise|skip|retry                 (--on-error)
  REPRO_CHECKPOINT_DIR     campaign checkpoint directory    (--checkpoint-dir)
  REPRO_FAULTS             fault-plan seed                  (--inject-faults)
  REPRO_TELEMETRY_OUT      flight-record run directory      (--telemetry-out)
  REPRO_TELEMETRY          1 = in-memory telemetry only     (no flag)
  REPRO_TELEMETRY_STRIDE   sampler stride, sim-seconds      (default 0.05)
  REPRO_TELEMETRY_SAMPLES  per-series sample bound          (default 512)
  REPRO_REPORT             1 = auto-render report.md        (--report)
  REPRO_LOG                json = structured log records    (--log-json)
  REPRO_METRICS_PORT       /metrics port for fleet runs     (--metrics-port)
"""


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures/tables from the packet-loss-burstiness paper.",
        epilog=_ENV_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "list", "report", "bench", "campaign", "top", "history"],
        help="which figure/table to regenerate ('list' to enumerate; "
        "'report' renders a recorded telemetry run directory; 'bench' "
        "runs the tracked benchmark suite; 'campaign' runs a supervised "
        "sharded measurement campaign; 'top' is a live console over a "
        "campaign/zoo state directory; 'history' renders the cross-run "
        "health timeline)",
    )
    p.add_argument(
        "target",
        nargs="?",
        default=None,
        help="run directory for the 'report' command / output directory "
        "for the 'bench' command / state directory for the 'top' command "
        "/ root directory for the 'history' command (ignored otherwise)",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="with the 'bench' command: tiny pinned run that validates "
        "the BENCH_*.json schema and telemetry overhead only",
    )
    p.add_argument(
        "--check-regression",
        action="store_true",
        help="with the 'bench' command: compare the two most recent "
        "BENCH_<n>.json files instead of running the suite; fail if any "
        "stage's speedup fell below the regression floor",
    )
    p.add_argument("--seed", type=int, default=1, help="experiment seed (default 1)")
    p.add_argument(
        "--scale",
        choices=["fast", "paper"],
        default=None,
        help="scenario scale (default: $REPRO_SCALE or fast)",
    )
    p.add_argument(
        "--out",
        type=str,
        default=None,
        help="also append each result block to this file",
    )
    p.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write a metrics JSON (conservation counters, link utilization, "
        "event-loop stats) to this path",
    )
    p.add_argument(
        "--check-invariants",
        action="store_true",
        help="verify packet-conservation invariants during and after the run "
        "(aborts with InvariantViolation on any accounting error)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan parallelizable drivers over N worker processes "
        "(results are bit-identical to a serial run)",
    )
    p.add_argument(
        "--on-error",
        choices=["raise", "skip", "retry"],
        default=None,
        help="what resilient drivers do with failed work items "
        "(default raise; skip/retry record failures and keep going)",
    )
    p.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="stream completed campaign cells to JSON-lines checkpoints in "
        "DIR; re-running with the same DIR resumes interrupted campaigns",
    )
    p.add_argument(
        "--inject-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="arm a seed-reproducible fault plan (link flaps, loss spikes, "
        "probe crashes) — for exercising the resilience machinery",
    )
    p.add_argument(
        "--telemetry-out",
        type=str,
        default=None,
        metavar="DIR",
        help="record flight telemetry (time-series samplers, phase spans) "
        "and write the run directory to DIR (per-experiment subdirectory "
        "when several experiments run)",
    )
    p.add_argument(
        "--report",
        action="store_true",
        help="auto-render report.md into the telemetry run directory at "
        "the end of each run (implies nothing without --telemetry-out)",
    )
    p.add_argument(
        "--html",
        action="store_true",
        help="with the 'report' and 'history' commands: also render HTML",
    )
    p.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log records (one per line) instead of "
        "the human-readable diagnostic text; result blocks are unchanged",
    )
    obs = p.add_argument_group("fleet observability")
    obs.add_argument(
        "--once",
        action="store_true",
        help="with the 'top' command: print one deterministic snapshot "
        "and exit (no ANSI; byte-stable for identical directory bytes)",
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SEC",
        help="with the 'top' command: live refresh interval (default 2.0)",
    )
    obs.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="with the 'campaign' and 'zoo' commands: serve Prometheus "
        "/metrics and /snapshot.json on this port during the run "
        "(0 = auto-assign; the bound port lands in the state directory's "
        "metrics-port file)",
    )
    camp = p.add_argument_group("campaign command")
    camp.add_argument(
        "--sites",
        type=int,
        default=26,
        metavar="M",
        help="campaign mesh size: first 26 sites are the paper's Table 1, "
        "the rest synthetic (default 26)",
    )
    camp.add_argument(
        "--shards",
        type=int,
        default=8,
        metavar="N",
        help="number of self-contained shard jobs the path matrix is "
        "partitioned into (default 8)",
    )
    camp.add_argument(
        "--paths",
        type=int,
        default=None,
        metavar="P",
        help="cap the campaign to the first P directed paths "
        "(default: the full sites*(sites-1) matrix)",
    )
    camp.add_argument(
        "--state-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="campaign state directory (shard ledger + fingerprinted "
        "records + heartbeats); falls back to $REPRO_CHECKPOINT_DIR",
    )
    camp.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed campaign from its state directory "
        "(byte-identical to an uninterrupted run)",
    )
    camp.add_argument(
        "--probe-duration",
        type=float,
        default=None,
        metavar="SEC",
        help="per-path probe duration in seconds (default: ProbeConfig)",
    )
    camp.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="SEC",
        help="supervisor reaps a worker whose heartbeat progress stalls "
        "this long (default 30)",
    )
    return p


def _metrics_path(base: str, experiment: str, multi: bool) -> str:
    """Per-experiment metrics path: splice the name in when running several."""
    if not multi:
        return base
    p = Path(base)
    suffix = p.suffix if p.suffix else ".json"
    return str(p.with_name(f"{p.stem}.{experiment}{suffix}"))


def _telemetry_dir(base: str, experiment: str, multi: bool) -> str:
    """Per-experiment run directory: one subdirectory each when several
    experiments share one ``--telemetry-out`` root."""
    return str(Path(base) / experiment) if multi else base


def _run_report(target: Optional[str], html: bool) -> int:
    """The ``report`` command: render a recorded run directory."""
    from repro.obs.report import ReportError, generate_report, write_report

    if not target:
        print(
            "usage: repro report <run-dir>  (a directory written by "
            "--telemetry-out)",
            file=sys.stderr,
        )
        return 2
    try:
        path = write_report(target, html=html)
    except ReportError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 1
    print(generate_report(target), end="")
    print(f"[report written to {path}]", file=sys.stderr)
    return 0


def _run_campaign(args) -> int:
    """The ``campaign`` command: a supervised sharded campaign."""
    from repro.faults import ENV_CHECKPOINT_DIR, FaultPlan
    from repro.internet.probe import ProbeConfig
    from repro.internet.shards import plan_shards
    from repro.internet.supervisor import SupervisorConfig, run_sharded_campaign
    from repro.obs.bus import RunLog
    from repro.obs.httpd import maybe_obs_server
    from repro.obs.runtime import open_flight_log

    state_dir = args.state_dir or os.environ.get(ENV_CHECKPOINT_DIR, "").strip()
    if not state_dir:
        print(
            "campaign: a state directory is required "
            "(--state-dir DIR or $REPRO_CHECKPOINT_DIR)",
            file=sys.stderr,
        )
        return 2
    seed = args.seed if args.seed != 1 else 2006
    probe_config = (
        ProbeConfig(duration=args.probe_duration)
        if args.probe_duration is not None
        else ProbeConfig()
    )
    workers = args.workers if args.workers is not None else 0
    specs = plan_shards(args.sites, args.shards, seed=seed, n_paths=args.paths)
    fault_plan = None
    if args.inject_faults is not None:
        fault_plan = FaultPlan.sample_shard_faults(
            args.inject_faults,
            n_shards=args.shards,
            shard_paths=min(s.n_paths for s in specs),
        )
    config = SupervisorConfig(workers=workers, hang_timeout=args.hang_timeout)
    log = open_flight_log(
        "campaign",
        manifest={
            "seed": seed,
            "sites": args.sites,
            "shards": args.shards,
            "paths": specs[-1].stop,
            "workers": workers,
            "resume": bool(args.resume),
        },
    )
    runlog = RunLog("campaign")
    server = maybe_obs_server(state_dir)
    if server is not None:
        runlog.emit(
            "metrics",
            message=f"[campaign: serving /metrics on port {server.port}]",
            port=server.port,
        )
    t0 = time.perf_counter()
    try:
        result = run_sharded_campaign(
            n_sites=args.sites,
            n_shards=args.shards,
            state_dir=state_dir,
            seed=seed,
            n_paths=args.paths,
            probe_config=probe_config,
            resume=args.resume,
            fault_plan=fault_plan,
            tracer=log.tracer,
            config=config,
        )
    finally:
        if server is not None:
            server.close()
    elapsed = time.perf_counter() - t0
    log.finalize()
    print(result.summary())
    rate = result.n_experiments / elapsed if elapsed > 0 else float("inf")
    runlog.emit(
        "finished",
        message=f"[campaign: {elapsed:.1f}s, {rate:.0f} paths/s]",
        status=result.status,
        elapsed_s=round(elapsed, 3),
        paths_per_s=round(rate, 1),
        shards_quarantined=len(result.quarantined),
    )
    return 0


def _resolve_scale(name: Optional[str]):
    if name is None:
        return None
    from repro.experiments import FAST, PAPER

    return {"fast": FAST, "paper": PAPER}[name]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    from repro.obs.bus import ENV_LOG

    saved_log = os.environ.get(ENV_LOG)
    if args.log_json:
        os.environ[ENV_LOG] = "json"
    try:
        return _dispatch(args)
    finally:
        if saved_log is None:
            os.environ.pop(ENV_LOG, None)
        else:
            os.environ[ENV_LOG] = saved_log


def _dispatch(args) -> int:
    if args.experiment == "report":
        return _run_report(args.target, html=args.html)

    if args.experiment == "top":
        from repro.obs.console import run_top

        if not args.target:
            print(
                "usage: repro top <state-dir>  (a campaign/zoo state "
                "directory)",
                file=sys.stderr,
            )
            return 2
        return run_top(args.target, once=args.once, interval=args.interval)

    if args.experiment == "history":
        from repro.obs.history import main as history_main

        history_argv = [args.target or "."]
        if args.out:
            history_argv += ["--out", args.out]
        if args.html:
            history_argv.append("--html")
        return history_main(history_argv)

    if args.experiment == "bench":
        from repro.bench import main as bench_main

        bench_argv = [args.target] if args.target else []
        if args.smoke:
            bench_argv.append("--smoke")
        if args.check_regression:
            bench_argv.append("--check-regression")
        return bench_main(bench_argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {desc}")
        return 0

    scale = _resolve_scale(args.scale)
    if args.experiment == "campaign":
        names = []
    elif args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        names = [args.experiment]
    sink = open(args.out, "a") if args.out else None
    # The observability layer is configured through the environment so the
    # knobs reach experiment drivers without threading new parameters
    # through every runner signature (see repro.obs.runtime).
    from repro.experiments.parallel import ENV_WORKERS
    from repro.faults import ENV_CHECKPOINT_DIR, ENV_FAULTS, ENV_ON_ERROR
    from repro.obs.httpd import ENV_METRICS_PORT
    from repro.obs.runtime import ENV_CHECK_INVARIANTS, ENV_METRICS_OUT, ENV_REPORT
    from repro.obs.telemetry import ENV_TELEMETRY_OUT

    saved_env = {
        k: os.environ.get(k)
        for k in (
            ENV_CHECK_INVARIANTS,
            ENV_METRICS_OUT,
            ENV_WORKERS,
            ENV_ON_ERROR,
            ENV_CHECKPOINT_DIR,
            ENV_FAULTS,
            ENV_TELEMETRY_OUT,
            ENV_REPORT,
            ENV_METRICS_PORT,
        )
    }
    if args.check_invariants:
        os.environ[ENV_CHECK_INVARIANTS] = "1"
    if args.workers is not None:
        os.environ[ENV_WORKERS] = str(args.workers)
    if args.on_error is not None:
        os.environ[ENV_ON_ERROR] = args.on_error
    if args.checkpoint_dir is not None:
        os.environ[ENV_CHECKPOINT_DIR] = args.checkpoint_dir
    if args.inject_faults is not None:
        os.environ[ENV_FAULTS] = str(args.inject_faults)
    if args.report:
        os.environ[ENV_REPORT] = "1"
    if args.metrics_port is not None:
        os.environ[ENV_METRICS_PORT] = str(args.metrics_port)
    try:
        if args.experiment == "campaign":
            if args.telemetry_out:
                os.environ[ENV_TELEMETRY_OUT] = args.telemetry_out
            return _run_campaign(args)
        from repro.obs.bus import RunLog

        # Diagnostic chatter routes through the structured log (text mode
        # prints the historical lines verbatim); the experiment's result
        # block itself is the deliverable and always prints as-is.
        runlog = RunLog("cli", stream=sys.stdout)
        for name in names:
            runner, desc = EXPERIMENTS[name]
            if args.metrics_out:
                os.environ[ENV_METRICS_OUT] = _metrics_path(
                    args.metrics_out, name, multi=len(names) > 1
                )
            if args.telemetry_out:
                os.environ[ENV_TELEMETRY_OUT] = _telemetry_dir(
                    args.telemetry_out, name, multi=len(names) > 1
                )
            runlog.emit(
                "experiment.start", message=f"=== {desc} ===",
                experiment=name, seed=args.seed,
            )
            t0 = time.perf_counter()
            text = runner(args.seed, scale)
            print(text)
            elapsed = time.perf_counter() - t0
            runlog.emit(
                "experiment.done", message=f"[{name}: {elapsed:.1f}s]\n",
                experiment=name, elapsed_s=round(elapsed, 3),
            )
            if sink is not None:
                sink.write(f"=== {desc} ===\n{text}\n\n")
    finally:
        if sink is not None:
            sink.close()
        for k, v in saved_env.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
