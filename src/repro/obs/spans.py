"""Phase/span tracing: nested spans and point events as JSON-lines.

Every observed run is a sequence of phases — build the scenario, warm
up, run the measured window, analyze — and campaign-scale drivers add a
span per cell (:mod:`repro.experiments.fig8_parallel`) and per
:func:`~repro.experiments.parallel.parallel_map` item.  A
:class:`SpanTracer` records that structure:

* :meth:`SpanTracer.span` — a ``with`` block that opens a nested span
  (parent inferred from the active stack) and stamps both sim time (when
  a clock is attached) and wall time;
* :meth:`SpanTracer.event` — a point event inside the current span;
  fault injections from :mod:`repro.faults` land here via the plan's
  observer hook, so every injected flap/spike/crash is visible in the
  trace;
* :meth:`SpanTracer.record_span` — a retroactive span for work that
  completed elsewhere (a pool worker's item), recorded parent-side with
  its duration already known.

Export is JSON-lines (one record per line, ``kind`` = ``span`` |
``event``) via :meth:`write_jsonl`, atomic like every other artifact.
Wall-clock fields (``wall_*``) are included for humans reading the raw
trace but are **never** consumed by the report generator — reports must
be byte-identical across runs of the same seed.

``maybe_tracer`` is the env-gated constructor: it returns ``None``
unless telemetry is armed (see :mod:`repro.obs.telemetry`), so the
disabled path allocates nothing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Union

from repro.obs.metrics import atomic_write_text
from repro.obs.telemetry import telemetry_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Span", "SpanTracer", "maybe_tracer", "span"]


class Span:
    """One open (or closed) span in the trace."""

    __slots__ = ("name", "seq", "parent", "depth", "sim_start", "sim_end",
                 "wall_start", "wall_end", "attrs")

    def __init__(self, name: str, seq: int, parent: Optional[int], depth: int,
                 sim_start: Optional[float], wall_start: float, attrs: dict):
        self.name = name
        self.seq = seq
        self.parent = parent
        self.depth = depth
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.attrs = attrs

    def as_record(self) -> dict:
        rec = {
            "kind": "span",
            "name": self.name,
            "seq": self.seq,
            "parent": self.parent,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_ms": (
                None
                if self.wall_end is None
                else round((self.wall_end - self.wall_start) * 1e3, 3)
            ),
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class SpanTracer:
    """Collects nested spans and point events for one run.

    ``clock`` is a zero-arg callable returning the current sim time
    (pass ``sim=`` to bind a :class:`Simulator` directly); without one,
    sim timestamps are ``None`` and only wall time is stamped — the mode
    parent-side drivers (fig8, campaigns) use, since they have no single
    simulator clock.
    """

    def __init__(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        sim: Optional["Simulator"] = None,
    ):
        if sim is not None:
            if clock is not None:
                raise ValueError("pass clock or sim, not both")
            clock = lambda: sim.now  # noqa: E731 - tiny closure is the point
        self.name = name
        self.clock = clock
        self.records: list[dict] = []
        self._stack: list[Span] = []
        self._seq = 0

    # -- internals ------------------------------------------------------
    def _now_sim(self) -> Optional[float]:
        return None if self.clock is None else float(self.clock())

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- recording ------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span for the duration of the ``with`` block."""
        parent = self._stack[-1].seq if self._stack else None
        sp = Span(
            name=name,
            seq=self._next_seq(),
            parent=parent,
            depth=len(self._stack),
            sim_start=self._now_sim(),
            wall_start=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.sim_end = self._now_sim()
            sp.wall_end = time.perf_counter()
            self.records.append(sp.as_record())

    def event(self, name: str, **attrs) -> dict:
        """Record a point event inside the current span (if any)."""
        rec = {
            "kind": "event",
            "name": name,
            "seq": self._next_seq(),
            "parent": self._stack[-1].seq if self._stack else None,
            "sim_time": self._now_sim(),
        }
        if attrs:
            rec["attrs"] = attrs
        self.records.append(rec)
        return rec

    def record_span(self, name: str, **attrs) -> dict:
        """Record a retroactive span for work completed elsewhere.

        Used by :func:`~repro.experiments.parallel.parallel_map` to log
        one span per pool item as results arrive parent-side — the
        worker process has no access to this tracer.
        """
        rec = {
            "kind": "span",
            "name": name,
            "seq": self._next_seq(),
            "parent": self._stack[-1].seq if self._stack else None,
            "depth": len(self._stack),
            "sim_start": None,
            "sim_end": None,
            "wall_ms": None,
        }
        if attrs:
            rec["attrs"] = attrs
        self.records.append(rec)
        return rec

    # -- export ---------------------------------------------------------
    def to_records(self) -> list[dict]:
        """All closed records in completion order (open spans excluded)."""
        return list(self.records)

    def to_jsonl(self) -> str:
        """The trace as JSON-lines text."""
        lines = [json.dumps(r, sort_keys=True) for r in self.records]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Atomically write the trace as a ``.jsonl`` file."""
        return atomic_write_text(path, self.to_jsonl())

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanTracer {self.name}: {len(self.records)} records>"


def maybe_tracer(
    name: str,
    clock: Optional[Callable[[], float]] = None,
    sim: Optional["Simulator"] = None,
) -> Optional[SpanTracer]:
    """Return a :class:`SpanTracer` when telemetry is armed, else None.

    The None return is the whole disabled fast path: callers guard with
    ``if tracer is not None`` (or hand None to ``observe_run``, which
    treats it as "no tracing") and nothing is allocated or recorded.
    """
    if not telemetry_config().enabled:
        return None
    return SpanTracer(name, clock=clock, sim=sim)


def span(tracer: Optional[SpanTracer], name: str, **attrs):
    """``tracer.span(...)`` when tracing is on, a null context when off.

    Lets drivers write ``with span(tracer, "setup"):`` unconditionally
    against the possibly-``None`` result of :func:`maybe_tracer`.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)
