"""``python -m repro top`` — live fleet console for a state directory.

Renders the :class:`~repro.obs.aggregate.FleetSnapshot` of a running (or
finished) campaign/zoo state directory as a compact terminal dashboard:
fleet verdict, path throughput + ETA, per-status unit counts, a progress
bar, and a per-unit table with each shard's latest health.

Two modes:

* **live** (default): redraws every ``--interval`` seconds using ANSI
  cursor control, stamping "now" from the wall clock; exits on Ctrl-C,
  or on its own once the fleet reaches COMPLETE/DEGRADED.
* **``--once``**: polls once with the *deterministic* clock (``now`` =
  newest wall stamp in the files), prints the plain snapshot, and
  exits.  Identical directory bytes produce identical output bytes —
  the mode tests and CI pin against a committed fixture.

Rendering is pure (:func:`render_snapshot` takes a snapshot, returns a
string), so tests never need a terminal.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.obs.aggregate import FleetAggregator, FleetSnapshot, UnitHealth

__all__ = ["render_snapshot", "run_top", "main"]

#: ANSI escapes used in live mode only (never in ``--once`` output).
_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"
_COLORS = {
    "COMPLETE": "\x1b[32m",  # green
    "RUNNING": "\x1b[36m",  # cyan
    "DEGRADED": "\x1b[31m",  # red
    "EMPTY": "\x1b[33m",  # yellow
    "done": "\x1b[32m",
    "running": "\x1b[36m",
    "quarantined": "\x1b[31m",
    "failed": "\x1b[31m",
    "pending": "\x1b[2m",  # dim
}

#: Display order of the per-unit table (active units first).
_STATUS_ORDER = {"running": 0, "pending": 1, "quarantined": 2, "failed": 3,
                 "done": 4}


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    s = max(0, int(round(seconds)))
    if s < 60:
        return f"{s}s"
    if s < 3600:
        return f"{s // 60}m{s % 60:02d}s"
    return f"{s // 3600}h{(s % 3600) // 60:02d}m"


def _bar(done: int, total: int, width: int) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(done, total) / total))
    return "#" * filled + "-" * (width - filled)


def _paint(text: str, key: str, color: bool) -> str:
    code = _COLORS.get(key) if color else None
    return f"{code}{text}{_RESET}" if code else text


def _unit_row(u: UnitHealth, unit_name: str, now: Optional[float],
              color: bool) -> str:
    age = "-"
    if now is not None and u.last_wall is not None:
        age = _fmt_duration(now - u.last_wall)
    frac = f"{u.done}/{u.total}" if u.total else str(u.done)
    status = _paint(f"{u.status:<12}", u.status, color)
    tail = u.label or u.error
    if len(tail) > 40:
        tail = tail[:37] + "..."
    return (
        f"  {unit_name} {u.unit_id:>4}  {status} {frac:>11}  "
        f"att {u.attempts:>2}  seen {age:>7}  {tail}"
    ).rstrip()


def render_snapshot(snap: FleetSnapshot, color: bool = False,
                    max_units: int = 64) -> str:
    """One snapshot as console text (deterministic for fixed input)."""
    lines: list[str] = []
    title = f"repro top — {snap.kind} · {snap.state_dir}"
    status = _paint(snap.status, snap.status, color)
    if color:
        title = f"{_BOLD}{title}{_RESET}"
    lines.append(f"{title} · {status}")

    meta = snap.meta
    if meta:
        bits = [
            f"{k}={meta[k]}"
            for k in ("seed", "n_sites", "n_paths", "n_shards", "n")
            if k in meta
        ]
        if bits:
            lines.append("  " + " ".join(bits))

    rate = f"{snap.rate:.1f}/s" if snap.rate is not None else "-"
    pct = (
        f"{100.0 * snap.paths_done / snap.paths_total:.1f}%"
        if snap.paths_total
        else "-"
    )
    noun = "paths" if snap.unit_name == "shard" else "cells"
    lines.append(
        f"  {noun} {snap.paths_done}/{snap.paths_total} ({pct}) · "
        f"rate {rate} · ETA {_fmt_duration(snap.eta_s)} · "
        f"retries {snap.retries} · torn {snap.torn_records}"
    )
    lines.append(f"  [{_bar(snap.paths_done, snap.paths_total, 50)}]")

    counts = snap.counts
    lines.append(
        "  " + " · ".join(
            _paint(f"{counts[s]} {s}", s, color)
            for s in ("running", "pending", "done", "quarantined", "failed")
            if counts[s] or s in ("done", "pending")
        )
    )

    units = sorted(
        snap.units.values(),
        key=lambda u: (_STATUS_ORDER.get(u.status, 9), u.unit_id),
    )
    shown = units[:max_units]
    if shown:
        lines.append("")
    for u in shown:
        lines.append(_unit_row(u, snap.unit_name, snap.now, color))
    if len(units) > len(shown):
        lines.append(f"  ... {len(units) - len(shown)} more "
                     f"{snap.unit_name}s not shown")

    if snap.bus_events:
        top_kinds = sorted(
            snap.bus_events.items(), key=lambda kv: (-kv[1], kv[0])
        )[:6]
        lines.append(
            "  bus: " + " · ".join(f"{k}×{n}" for k, n in top_kinds)
        )
    return "\n".join(lines) + "\n"


def run_top(
    state_dir: str,
    once: bool = False,
    interval: float = 2.0,
    stream: Optional[IO[str]] = None,
    color: Optional[bool] = None,
    max_polls: Optional[int] = None,
) -> int:
    """Drive the console; returns a process exit code.

    ``--once``: one deterministic poll, plain text, exit 0 (exit 1 when
    the directory holds no recognizable campaign/zoo state).  Live mode
    re-polls every ``interval`` seconds until the fleet leaves RUNNING
    (``max_polls`` bounds the loop for tests).
    """
    out = stream if stream is not None else sys.stdout
    agg = FleetAggregator(state_dir)
    if once:
        snap = agg.poll(now=None)
        out.write(render_snapshot(snap, color=False))
        out.flush()
        return 0 if snap.status != "EMPTY" else 1

    if color is None:
        color = bool(getattr(out, "isatty", lambda: False)())
    polls = 0
    try:
        while True:
            snap = agg.poll(now=time.time())
            out.write(_CLEAR if color else "")
            out.write(render_snapshot(snap, color=color))
            out.flush()
            polls += 1
            if snap.status in ("COMPLETE", "DEGRADED"):
                return 0
            if max_polls is not None and polls >= max_polls:
                return 0 if snap.status != "EMPTY" else 1
            time.sleep(max(0.05, interval))
    except KeyboardInterrupt:
        out.write("\n")
        return 130


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point behind ``python -m repro top``."""
    import argparse

    p = argparse.ArgumentParser(
        prog="repro top",
        description="Live console over a campaign/zoo state directory.",
    )
    p.add_argument("state_dir", help="campaign/zoo state directory "
                   "(shards.jsonl / zoo.jsonl + heartbeats + events.jsonl)")
    p.add_argument("--once", action="store_true",
                   help="print one deterministic snapshot and exit "
                   "(no ANSI, byte-stable for identical directory bytes)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                   help="live refresh interval (default 2.0)")
    args = p.parse_args(argv)
    return run_top(args.state_dir, once=args.once, interval=args.interval)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
