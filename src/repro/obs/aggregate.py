"""Streaming fleet aggregation: state-dir files -> one live snapshot.

A running campaign's observable state is spread across three kinds of
files in its state directory, each with a different durability contract:

* ``shards.jsonl`` / ``zoo.jsonl`` — the fsynced ledger of unit fates
  (the only durable truth);
* ``hb-<id>.json`` — per-worker heartbeats, atomic-replace but
  unfsynced (advisory progress);
* ``events.jsonl`` — the append-only bus feed
  (:mod:`repro.obs.bus`): spawns, retries, fates, hangs, span events,
  structured log records, all wall-stamped.

:class:`FleetAggregator` tails all of them *incrementally*: JSONL feeds
via byte-offset cursors (O(new bytes) per poll, torn tails left pending,
damaged complete lines skipped and counted — never raised), heartbeats
via whole-file tolerant reads.  Each :meth:`FleetAggregator.poll` folds
whatever is new into the running model and returns a
:class:`FleetSnapshot`: per-unit health (pending / running / done /
quarantined / failed, progress, attempts, event timeline), fleet counts,
paths/s throughput, ETA, retry totals, and the ``torn_records`` damage
counter.

Determinism contract: ``poll(now=None)`` derives "now" from the newest
wall stamp *observed in the files* instead of the system clock, so a
snapshot of a finished (or frozen fixture) state directory is a pure
function of its bytes — the property ``repro top --once`` pins
byte-identically in tests.  Live callers pass ``now=time.time()``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.obs.bus import BUS_FILE, TailState, read_json_tolerant, tail_jsonl

__all__ = ["UnitHealth", "FleetSnapshot", "FleetAggregator"]

#: Ledger files recognized in a state directory, with the unit noun the
#: snapshot reports for each.
_LEDGERS = (("shards.jsonl", "shard"), ("zoo.jsonl", "cell"))

_HB_RE = re.compile(r"hb-(\d+)\.json\Z")

#: Bus kinds that advance a unit's status timeline.
_STATUS_KINDS = {
    "worker.spawn": "running",
    "shard.retry": "retrying",
    "shard.done": "done",
    "shard.quarantined": "quarantined",
    "worker.hang": "hung",
    "worker.sigkill": "killed",
    "cell.done": "done",
    "cell.failed": "failed",
}


@dataclass
class UnitHealth:
    """One work unit's (shard's / cell's) current health."""

    unit_id: int
    status: str = "pending"  # pending|running|done|quarantined|failed
    total: int = 0  # paths in this unit (1 for a zoo cell)
    done: int = 0  # progress within the unit
    attempts: int = 0
    error: str = ""
    label: str = ""  # e.g. "bbr/codel/wan" for a zoo cell
    last_wall: Optional[float] = None
    #: Wall-stamped status transitions observed on the bus.
    timeline: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.unit_id,
            "status": self.status,
            "total": self.total,
            "done": self.done,
            "attempts": self.attempts,
            "error": self.error,
            "label": self.label,
            "last_wall": self.last_wall,
            "timeline": list(self.timeline),
        }


@dataclass
class FleetSnapshot:
    """Point-in-time view of one campaign/zoo state directory."""

    kind: str  # "campaign" | "zoo" | "unknown"
    unit_name: str  # "shard" | "cell"
    state_dir: str
    meta: dict
    units: dict[int, UnitHealth]
    n_units: int
    paths_total: int
    paths_done: int
    retries: int
    torn_records: int
    bus_events: dict[str, int]
    started_wall: Optional[float]
    now: Optional[float]
    rate: Optional[float]  # paths (cells) per second, from completed units
    eta_s: Optional[float]

    @property
    def counts(self) -> dict[str, int]:
        """Units per status (every status key always present)."""
        out = {"pending": 0, "running": 0, "done": 0, "quarantined": 0,
               "failed": 0}
        for u in self.units.values():
            out[u.status] = out.get(u.status, 0) + 1
        return out

    @property
    def status(self) -> str:
        """Fleet verdict: EMPTY / RUNNING / COMPLETE / DEGRADED."""
        if self.kind == "unknown" or not self.n_units:
            return "EMPTY"
        c = self.counts
        unresolved = c["pending"] + c["running"]
        if unresolved:
            return "RUNNING"
        return "DEGRADED" if (c["quarantined"] or c["failed"]) else "COMPLETE"

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the ``/snapshot.json`` payload)."""
        return {
            "kind": self.kind,
            "unit": self.unit_name,
            "state_dir": self.state_dir,
            "status": self.status,
            "meta": dict(self.meta),
            "counts": self.counts,
            "n_units": self.n_units,
            "paths_total": self.paths_total,
            "paths_done": self.paths_done,
            "retries": self.retries,
            "torn_records": self.torn_records,
            "bus_events": dict(sorted(self.bus_events.items())),
            "started_wall": self.started_wall,
            "now": self.now,
            "rate": self.rate,
            "eta_s": self.eta_s,
            "units": [self.units[k].to_dict() for k in sorted(self.units)],
        }


def _unit_totals(n_paths: int, n_units: int) -> list[int]:
    """Contiguous balanced split — the ``plan_shards`` arithmetic."""
    q, r = divmod(int(n_paths), max(1, int(n_units)))
    return [q + (1 if i < r else 0) for i in range(n_units)]


class FleetAggregator:
    """Incremental tailer of one state directory.

    Keep one instance per directory and call :meth:`poll` repeatedly —
    each call reads only bytes appended (and heartbeat files replaced)
    since the previous call.  A fresh instance replays the whole
    directory on its first poll, which is how ``--once`` snapshots and
    finished campaigns are read.
    """

    def __init__(self, state_dir: Union[str, Path]):
        self.state_dir = Path(state_dir)
        self._ledger_file: Optional[str] = None
        self._unit_name = "shard"
        self._meta: dict = {}
        self._ledger_tail = TailState()
        self._bus_tail = TailState()
        self._units: dict[int, UnitHealth] = {}
        self._bus_counts: dict[str, int] = {}
        self._retries = 0
        self._hb_torn = 0
        self._started_wall: Optional[float] = None
        self._last_wall: Optional[float] = None
        #: (wall, paths) per completed-unit bus event, for throughput.
        self._completions: list[tuple[float, int]] = []

    # -- feed folding ----------------------------------------------------
    def _detect_ledger(self) -> None:
        if self._ledger_file is not None:
            return
        for name, unit in _LEDGERS:
            if (self.state_dir / name).exists():
                self._ledger_file = name
                self._unit_name = unit
                return

    def _unit(self, unit_id: int) -> UnitHealth:
        u = self._units.get(unit_id)
        if u is None:
            u = self._units[unit_id] = UnitHealth(unit_id=unit_id)
        return u

    def _seed_units(self) -> None:
        """Pre-populate pending units once the ledger meta names totals."""
        if self._units or not self._meta:
            return
        kind = self._meta.get("kind")
        if kind == "sharded-campaign":
            totals = _unit_totals(
                int(self._meta.get("n_paths", 0)),
                int(self._meta.get("n_shards", 0)),
            )
            for i, total in enumerate(totals):
                self._unit(i).total = total
        elif kind == "zoo":
            for i in range(int(self._meta.get("n", 0))):
                self._unit(i).total = 1

    def _fold_ledger(self) -> None:
        self._detect_ledger()
        if self._ledger_file is None:
            return
        first = self._ledger_tail.offset == 0
        records, self._ledger_tail = tail_jsonl(
            self.state_dir / self._ledger_file, self._ledger_tail
        )
        for rec in records:
            if first and not self._meta and "i" not in rec:
                self._meta = dict(rec)
                self._seed_units()
                continue
            if "i" not in rec:
                self._ledger_tail.torn += 1  # not meta, not a record
                continue
            unit = self._unit(int(rec["i"]))
            payload = rec.get("record")
            if not isinstance(payload, dict):
                self._ledger_tail.torn += 1
                continue
            if self._unit_name == "shard":
                status = str(payload.get("status", "done"))
                unit.status = status if status in (
                    "done", "quarantined") else "failed"
                unit.attempts = max(unit.attempts,
                                    int(payload.get("attempts", 1)))
                unit.error = str(payload.get("error", "")) or unit.error
            else:  # zoo cells checkpoint the full cell record on success
                unit.status = "done"
                unit.label = "/".join(
                    str(payload.get(k, "?"))
                    for k in ("protocol", "aqm", "rtt_name")
                )
            if unit.status == "done":
                unit.done = unit.total

    def _fold_bus(self) -> None:
        records, self._bus_tail = tail_jsonl(
            self.state_dir / BUS_FILE, self._bus_tail
        )
        for rec in records:
            kind = str(rec.get("kind", "?"))
            self._bus_counts[kind] = self._bus_counts.get(kind, 0) + 1
            wall = rec.get("wall")
            wall = float(wall) if isinstance(wall, (int, float)) else None
            if wall is not None:
                if self._started_wall is None or wall < self._started_wall:
                    self._started_wall = wall
                if self._last_wall is None or wall > self._last_wall:
                    self._last_wall = wall
            if kind == "shard.retry" or kind == "cell.retry":
                self._retries += 1
            unit_id = rec.get("shard", rec.get("i"))
            if unit_id is None:
                continue
            unit = self._unit(int(unit_id))
            if wall is not None:
                unit.last_wall = wall
            status = _STATUS_KINDS.get(kind)
            if status is not None:
                unit.timeline.append({"wall": wall, "status": status,
                                      "kind": kind})
                # The ledger outranks the bus for terminal fates; the bus
                # outranks it for liveness (running/retrying flapping).
                if unit.status not in ("done", "quarantined", "failed"):
                    if status in ("running", "retrying", "hung", "killed"):
                        unit.status = "running"
                if status == "done":
                    unit.status = "done"
                    unit.done = unit.total if unit.total else unit.done
                    if wall is not None:
                        self._completions.append(
                            (wall, int(rec.get("paths", unit.total or 1)))
                        )
                elif status == "quarantined":
                    unit.status = "quarantined"
                    unit.error = str(rec.get("error", "")) or unit.error
                elif status == "failed":
                    unit.status = "failed"
                    unit.error = str(rec.get("error", "")) or unit.error
            if kind in ("worker.spawn", "shard.retry"):
                unit.attempts = max(unit.attempts, int(rec.get("attempt", 1)))
            if kind == "shard.progress":
                done = int(rec.get("done", 0))
                if unit.status in ("pending", "running"):
                    unit.status = "running"
                    unit.done = max(unit.done, done)
            if kind == "cell.done":
                unit.label = str(rec.get("cell", "")) or unit.label

    def _fold_heartbeats(self) -> None:
        try:
            names = sorted(p.name for p in self.state_dir.iterdir())
        except OSError:
            return
        for name in names:
            m = _HB_RE.match(name)
            if m is None:
                continue
            hb, torn = read_json_tolerant(self.state_dir / name)
            self._hb_torn += torn
            if hb is None:
                continue
            unit = self._unit(int(hb.get("shard_id", int(m.group(1)))))
            if unit.status in ("pending", "running"):
                unit.status = "running"
                unit.done = max(unit.done, int(hb.get("done", 0)))
                unit.attempts = max(unit.attempts, int(hb.get("attempt", 1)))
            wall = hb.get("wall")
            if isinstance(wall, (int, float)):
                unit.last_wall = float(wall)
                if self._last_wall is None or wall > self._last_wall:
                    self._last_wall = float(wall)

    # -- the poll --------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> FleetSnapshot:
        """Fold everything new and return the current snapshot.

        ``now=None`` is the deterministic mode: "now" becomes the newest
        wall stamp found in the files, so identical bytes always produce
        an identical snapshot.  Live dashboards pass ``time.time()``.
        """
        self._fold_ledger()
        self._fold_bus()
        self._fold_heartbeats()

        kind = {"sharded-campaign": "campaign", "zoo": "zoo"}.get(
            str(self._meta.get("kind")), "unknown"
        )
        paths_total = sum(u.total for u in self._units.values())
        paths_done = sum(
            u.total if u.status == "done" else min(u.done, u.total or u.done)
            for u in self._units.values()
        )
        if now is None:
            now = self._last_wall

        rate = None
        eta = None
        if self._completions and self._started_wall is not None:
            last_done_wall = max(w for w, _ in self._completions)
            span = last_done_wall - self._started_wall
            finished = sum(p for _, p in self._completions)
            if span > 0 and finished > 0:
                rate = finished / span
                remaining = max(0, paths_total - paths_done)
                if remaining and rate > 0:
                    eta = remaining / rate
                elif not remaining:
                    eta = 0.0

        return FleetSnapshot(
            kind=kind,
            unit_name=self._unit_name,
            state_dir=str(self.state_dir),
            meta=dict(self._meta),
            units=self._units,
            n_units=len(self._units),
            paths_total=paths_total,
            paths_done=paths_done,
            retries=self._retries,
            torn_records=(
                self._ledger_tail.torn + self._bus_tail.torn + self._hb_torn
            ),
            bus_events=dict(self._bus_counts),
            started_wall=self._started_wall,
            now=now,
            rate=rate,
            eta_s=eta,
        )
