"""Metric primitives and the registry that exports them as JSON.

Three metric kinds cover everything the simulator reports:

* :class:`Counter` — monotonically increasing count (drops, checks run);
* :class:`Gauge` — point-in-time value, either set explicitly or read
  lazily from a callback so components never push on the hot path;
* :class:`Histogram` — fixed-edge binned distribution (queue occupancy
  samples, callback durations).

A :class:`MetricsRegistry` is a flat namespace of metrics plus a warning
log; ``as_dict()`` / ``write_json()`` produce the metrics file emitted
next to experiment results.  Dotted names (``queue.bottleneck.dropped``)
are a convention, not a hierarchy.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "atomic_write_text"]


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    Matches the crash-safety discipline of
    :func:`repro.sim.tracefile.save_drop_trace`: a crash mid-write leaves
    either the previous file or nothing — never a truncated artifact.
    Parent directories are created as needed; returns the written path.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(f".{p.name}.tmp-{os.getpid()}")
    try:
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, p)
    finally:
        if tmp.exists():  # a failed write: leave no temp litter behind
            tmp.unlink()
    return p


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value, set explicitly or read from a callback.

    Callback gauges (``Gauge("x", fn=lambda: queue.dropped)``) are read at
    export time, so registering one costs nothing during the simulation.
    """

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value: float = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record a new value (explicit gauges only)."""
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed; cannot set")
        self._value = float(value)

    @property
    def value(self) -> float:
        """Current value (invokes the callback for callback gauges)."""
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Fixed-edge histogram: ``counts[i]`` covers ``edges[i]..edges[i+1]``.

    Values below ``edges[0]`` land in the first bin, values at or above
    ``edges[-1]`` in a dedicated overflow count, so no observation is ever
    silently lost (the "no silent caps" rule the invariant layer enforces
    elsewhere).
    """

    __slots__ = ("name", "edges", "counts", "overflow", "n", "total")

    def __init__(self, name: str, edges: Sequence[float]):
        if len(edges) < 2:
            raise ValueError(f"histogram {name}: need >= 2 edges, got {len(edges)}")
        if any(b <= a for a, b in zip(edges, list(edges)[1:])):
            raise ValueError(f"histogram {name}: edges must be strictly increasing")
        self.name = name
        self.edges = [float(e) for e in edges]
        self.counts = [0] * (len(edges) - 1)
        self.overflow = 0
        self.n = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.n += 1
        self.total += v
        if v >= self.edges[-1]:
            self.overflow += 1
            return
        # Linear scan: histograms here have a handful of bins and are off
        # the per-packet hot path (sampled at invariant-check cadence).
        for i in range(len(self.counts)):
            if v < self.edges[i + 1]:
                self.counts[i] += 1
                return

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.total / self.n if self.n else float("nan")

    def as_dict(self) -> dict:
        """JSON-ready summary of this histogram."""
        return {
            "edges": self.edges,
            "counts": list(self.counts),
            "overflow": self.overflow,
            "n": self.n,
            "mean": None if self.n == 0 else self.total / self.n,
        }


class MetricsRegistry:
    """Named metrics plus a warning log, exportable as one JSON document.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: components
    can register idempotently without coordinating.  Re-registering a name
    as a different kind is an error (it would silently shadow data).
    """

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.warnings: list[str] = []
        #: Free-form structured sections merged into the export
        #: (e.g. per-queue conservation tables, profile stats).
        self.sections: dict[str, object] = {}

    # -- registration ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        self._check_kind(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name`` (optionally callback-backed)."""
        self._check_kind(name, self._gauges)
        g = self._gauges.get(name)
        if g is None:
            g = Gauge(name, fn=fn)
            self._gauges[name] = g
        elif fn is not None:
            g.fn = fn  # re-binding a callback gauge to a fresh component
        return g

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram ``name`` with the given edges."""
        self._check_kind(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name, edges))

    def _check_kind(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def warn(self, message: str) -> None:
        """Record a non-fatal accounting warning (exported with the JSON)."""
        self.warnings.append(message)

    # -- export ---------------------------------------------------------
    def as_dict(self) -> dict:
        """Materialize every metric (callback gauges are read here)."""
        return {
            "name": self.name,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(self._histograms.items())},
            "warnings": list(self.warnings),
            **self.sections,
        }

    def to_json(self, indent: int = 2) -> str:
        """The full registry as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: Union[str, Path]) -> Path:
        """Write the registry to ``path`` atomically; returns the path.

        Uses the tmp + fsync + rename discipline (same as tracefile
        archives), so a run crashing mid-export never leaves a truncated
        metrics file behind.
        """
        return atomic_write_text(path, self.to_json() + "\n")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry {self.name}: {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )
