"""Metric primitives and the registry that exports them as JSON.

Three metric kinds cover everything the simulator reports:

* :class:`Counter` — monotonically increasing count (drops, checks run);
* :class:`Gauge` — point-in-time value, either set explicitly or read
  lazily from a callback so components never push on the hot path;
* :class:`Histogram` — fixed-edge binned distribution (queue occupancy
  samples, callback durations).

A :class:`MetricsRegistry` is a flat namespace of metrics plus a warning
log; ``as_dict()`` / ``write_json()`` produce the metrics file emitted
next to experiment results.  Dotted names (``queue.bottleneck.dropped``)
are a convention, not a hierarchy.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "atomic_write_text",
    "prometheus_label_name",
    "prometheus_metric_name",
]


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    Matches the crash-safety discipline of
    :func:`repro.sim.tracefile.save_drop_trace`: a crash mid-write leaves
    either the previous file or nothing — never a truncated artifact.
    Parent directories are created as needed; returns the written path.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(f".{p.name}.tmp-{os.getpid()}")
    try:
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, p)
    finally:
        if tmp.exists():  # a failed write: leave no temp litter behind
            tmp.unlink()
    return p


# -- Prometheus text exposition (version 0.0.4) -------------------------
#
# The registry's internal names are dotted (``queue.bottleneck.dropped``)
# and component instances are free-form (links named ``tcp0-fwd``), both
# of which are illegal in Prometheus metric names
# (``[a-zA-Z_:][a-zA-Z0-9_:]*``) and label names
# (``[a-zA-Z_][a-zA-Z0-9_]*``).  Sanitization maps every character
# outside the legal set to ``_`` and prefixes ``_`` when the first
# character is illegal (e.g. a leading digit); per-instance metrics of
# the component families below are additionally split into one metric
# per *field* with the instance carried as a label value (label values
# may contain any UTF-8, escaped), so ``link.tcp0-fwd.busy_time``
# exposes as ``repro_link_busy_time{link="tcp0-fwd"}``.

_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: Dotted families exposed as ``<family>_<field>{<family>="<instance>"}``.
_LABELED_FAMILIES = ("link", "queue", "flow")


def prometheus_metric_name(name: str, prefix: str = "") -> str:
    """Sanitize ``name`` into a spec-valid Prometheus metric name."""
    out = _PROM_NAME_BAD.sub("_", name)
    if prefix:
        out = f"{prefix}_{out}"
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = f"_{out}"
    return out


def prometheus_label_name(name: str) -> str:
    """Sanitize ``name`` into a spec-valid Prometheus label name.

    Label names are stricter than metric names (no colons), and names
    starting with ``__`` are reserved for Prometheus internals — those
    get an ``x`` prefix instead of silently colliding.
    """
    out = _PROM_LABEL_BAD.sub("_", name)
    if not out or not re.match(r"[a-zA-Z_]", out[0]):
        out = f"_{out}"
    if out.startswith("__"):
        out = f"x{out}"
    return out


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _prom_number(value: float) -> str:
    """Format a sample value (integers stay integral, floats use repr)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    return repr(f)


def _prom_split(name: str) -> tuple[str, dict[str, str]]:
    """Dotted registry name -> (bare metric name, labels).

    ``<family>.<instance>.<field>`` for a labeled family becomes
    ``<family>_<field>`` with ``{<family>="<instance>"}``; everything
    else flattens with every dot replaced by ``_``.
    """
    parts = name.split(".")
    if len(parts) >= 3 and parts[0] in _LABELED_FAMILIES:
        family, field_ = parts[0], parts[-1]
        instance = ".".join(parts[1:-1])
        return f"{family}_{field_}", {family: instance}
    return name, {}


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value, set explicitly or read from a callback.

    Callback gauges (``Gauge("x", fn=lambda: queue.dropped)``) are read at
    export time, so registering one costs nothing during the simulation.
    """

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value: float = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record a new value (explicit gauges only)."""
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed; cannot set")
        self._value = float(value)

    @property
    def value(self) -> float:
        """Current value (invokes the callback for callback gauges)."""
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Fixed-edge histogram: ``counts[i]`` covers ``edges[i]..edges[i+1]``.

    Values below ``edges[0]`` land in the first bin, values at or above
    ``edges[-1]`` in a dedicated overflow count, so no observation is ever
    silently lost (the "no silent caps" rule the invariant layer enforces
    elsewhere).
    """

    __slots__ = ("name", "edges", "counts", "overflow", "n", "total")

    def __init__(self, name: str, edges: Sequence[float]):
        if len(edges) < 2:
            raise ValueError(f"histogram {name}: need >= 2 edges, got {len(edges)}")
        if any(b <= a for a, b in zip(edges, list(edges)[1:])):
            raise ValueError(f"histogram {name}: edges must be strictly increasing")
        self.name = name
        self.edges = [float(e) for e in edges]
        self.counts = [0] * (len(edges) - 1)
        self.overflow = 0
        self.n = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.n += 1
        self.total += v
        if v >= self.edges[-1]:
            self.overflow += 1
            return
        # Linear scan: histograms here have a handful of bins and are off
        # the per-packet hot path (sampled at invariant-check cadence).
        for i in range(len(self.counts)):
            if v < self.edges[i + 1]:
                self.counts[i] += 1
                return

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.total / self.n if self.n else float("nan")

    def as_dict(self) -> dict:
        """JSON-ready summary of this histogram."""
        return {
            "edges": self.edges,
            "counts": list(self.counts),
            "overflow": self.overflow,
            "n": self.n,
            "mean": None if self.n == 0 else self.total / self.n,
        }


class MetricsRegistry:
    """Named metrics plus a warning log, exportable as one JSON document.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: components
    can register idempotently without coordinating.  Re-registering a name
    as a different kind is an error (it would silently shadow data).
    """

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.warnings: list[str] = []
        #: Free-form structured sections merged into the export
        #: (e.g. per-queue conservation tables, profile stats).
        self.sections: dict[str, object] = {}

    # -- registration ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        self._check_kind(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name`` (optionally callback-backed)."""
        self._check_kind(name, self._gauges)
        g = self._gauges.get(name)
        if g is None:
            g = Gauge(name, fn=fn)
            self._gauges[name] = g
        elif fn is not None:
            g.fn = fn  # re-binding a callback gauge to a fresh component
        return g

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram ``name`` with the given edges."""
        self._check_kind(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name, edges))

    def _check_kind(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def warn(self, message: str) -> None:
        """Record a non-fatal accounting warning (exported with the JSON)."""
        self.warnings.append(message)

    # -- export ---------------------------------------------------------
    def as_dict(self) -> dict:
        """Materialize every metric (callback gauges are read here)."""
        return {
            "name": self.name,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(self._histograms.items())},
            "warnings": list(self.warnings),
            **self.sections,
        }

    def to_json(self, indent: int = 2) -> str:
        """The full registry as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Dotted/dashed registry names are sanitized to spec-valid metric
        and label names (see :func:`prometheus_metric_name`); per-link /
        per-queue / per-flow metrics expose the component instance as a
        label instead of baking it into the metric name, so one family
        of gauges becomes one Prometheus metric with many labeled
        samples.  Two registry names that sanitize to the same metric
        name but carry different kinds are disambiguated with a
        deterministic numeric suffix rather than emitting a spec-invalid
        double ``# TYPE``.  Callback gauges are read here, like
        :meth:`as_dict`.
        """
        # metric name -> {"kind": ..., "samples": [(labels, value)]}
        families: dict[str, dict] = {}
        kinds = (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        )
        for kind, table in kinds:
            for raw in sorted(table):
                bare, labels = _prom_split(raw)
                name = prometheus_metric_name(bare, prefix=prefix)
                fam = families.get(name)
                if fam is not None and fam["kind"] != kind:
                    n = 2
                    while True:
                        cand = f"{name}_{n}"
                        fam = families.get(cand)
                        if fam is None or fam["kind"] == kind:
                            name = cand
                            break
                        n += 1
                    fam = families.get(name)
                if fam is None:
                    fam = families[name] = {"kind": kind, "samples": []}
                fam["samples"].append((labels, table[raw]))

        lines: list[str] = []

        def fmt_labels(labels: dict[str, str]) -> str:
            if not labels:
                return ""
            inner = ",".join(
                f'{prometheus_label_name(k)}="{_prom_label_value(v)}"'
                for k, v in sorted(labels.items())
            )
            return f"{{{inner}}}"

        for name in sorted(families):
            fam = families[name]
            if fam["kind"] in ("counter", "gauge"):
                lines.append(f"# TYPE {name} {fam['kind']}")
                for labels, metric in fam["samples"]:
                    lines.append(
                        f"{name}{fmt_labels(labels)} {_prom_number(metric.value)}"
                    )
            else:  # histogram: cumulative le-buckets + _sum/_count
                lines.append(f"# TYPE {name} histogram")
                for labels, hist in fam["samples"]:
                    cum = 0
                    for edge, count in zip(hist.edges[1:], hist.counts):
                        cum += count
                        le = dict(labels, le=_prom_number(float(edge)))
                        lines.append(f"{name}_bucket{fmt_labels(le)} {cum}")
                    le = dict(labels, le="+Inf")
                    lines.append(f"{name}_bucket{fmt_labels(le)} {hist.n}")
                    lines.append(
                        f"{name}_sum{fmt_labels(labels)} {_prom_number(hist.total)}"
                    )
                    lines.append(f"{name}_count{fmt_labels(labels)} {hist.n}")

        warn = prometheus_metric_name("warnings", prefix=prefix)
        lines.append(f"# TYPE {warn} gauge")
        lines.append(f"{warn} {len(self.warnings)}")
        return "\n".join(lines) + "\n"

    def write_json(self, path: Union[str, Path]) -> Path:
        """Write the registry to ``path`` atomically; returns the path.

        Uses the tmp + fsync + rename discipline (same as tracefile
        archives), so a run crashing mid-export never leaves a truncated
        metrics file behind.
        """
        return atomic_write_text(path, self.to_json() + "\n")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry {self.name}: {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )
