"""Flight-recorder telemetry: bounded time-series samplers on the sim clock.

The paper's claims live at sub-RTT timescales — bursty losses hitting
paced flows while window bursts slip between them (Fig. 7), parallel
chunks desynchronizing in slow-start (Fig. 8) — but end-of-run aggregates
cannot show *when* a run's numbers happened.  A :class:`FlightRecorder`
attaches fixed-stride samplers to a :class:`~repro.sim.engine.Simulator`
(via :meth:`~repro.sim.engine.Simulator.schedule_every`) and records
bounded per-flow / per-queue / per-link time series:

* flows — ``cwnd``, smoothed RTT, and the sub-RTT pacing rate
  (:meth:`repro.tcp.base.TcpSender.pacing_rate_bps`);
* queues — instantaneous depth and cumulative drops;
* links — cumulative busy time (utilization timeline) and up/down state
  (so injected flaps are visible in the record);
* the loss-burst raster — drop timestamps binned over the run
  (:func:`loss_raster`), the flight-recorder view of Figure 2's input.

Memory stays O(``max_samples``) per series on paper-scale runs: a full
:class:`TimeSeries` *decimates* (drops every second retained sample and
doubles its keep-stride), trading resolution for span like a classic
flight recorder.  When telemetry is disabled nothing is scheduled and
nothing is sampled — the no-op path costs a handful of ``None`` checks at
setup time only (bounded by ``benchmarks/test_perf_micro.py``).

Environment knobs (set by the ``repro`` CLI's ``--telemetry-out`` flag,
or directly):

``REPRO_TELEMETRY_OUT``
    Run-directory path: arms telemetry and makes
    :meth:`repro.obs.runtime.RunObservation.finalize` write the flight
    record there (``manifest.json`` / ``telemetry.json`` /
    ``spans.jsonl`` / ``metrics.json``).
``REPRO_TELEMETRY``
    Truthy ("1"/"true"/"yes"/"on") to arm in-memory telemetry without
    writing a run directory (tests, interactive use).
``REPRO_TELEMETRY_STRIDE``
    Sim-seconds between samples (default 0.05).
``REPRO_TELEMETRY_SAMPLES``
    Per-series retained-sample bound before decimation (default 512).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RepeatingEvent, Simulator
    from repro.sim.link import Link
    from repro.sim.queues import Queue

__all__ = [
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_OUT",
    "ENV_TELEMETRY_STRIDE",
    "ENV_TELEMETRY_SAMPLES",
    "TelemetryConfig",
    "telemetry_config",
    "TimeSeries",
    "FlightRecorder",
    "loss_raster",
    "flow_summary",
]

ENV_TELEMETRY = "REPRO_TELEMETRY"
ENV_TELEMETRY_OUT = "REPRO_TELEMETRY_OUT"
ENV_TELEMETRY_STRIDE = "REPRO_TELEMETRY_STRIDE"
ENV_TELEMETRY_SAMPLES = "REPRO_TELEMETRY_SAMPLES"

#: Default sim-time spacing between samples (seconds).  0.05 s resolves
#: sub-RTT structure for the FAST-scale RTT spread (2-200 ms) while
#: keeping a 60 s paper run at ~1200 offered ticks per series.
DEFAULT_STRIDE = 0.05

#: Default per-series retained-sample bound before decimation kicks in.
DEFAULT_MAX_SAMPLES = 512

#: Default bin count of the loss-burst raster.
RASTER_BINS = 120

_TRUTHY = frozenset({"1", "true", "yes", "on"})


@dataclass(frozen=True)
class TelemetryConfig:
    """Resolved telemetry knobs for one run."""

    out_dir: Optional[Path]
    enabled: bool
    stride: float
    max_samples: int


def telemetry_config() -> TelemetryConfig:
    """Resolve the telemetry configuration from the environment.

    Telemetry is armed by ``REPRO_TELEMETRY_OUT`` (a run-directory path)
    or ``REPRO_TELEMETRY`` (truthy, in-memory only).
    """
    raw_out = os.environ.get(ENV_TELEMETRY_OUT) or None
    out_dir = Path(raw_out) if raw_out else None
    enabled = (
        out_dir is not None
        or os.environ.get(ENV_TELEMETRY, "").strip().lower() in _TRUTHY
    )
    stride = float(os.environ.get(ENV_TELEMETRY_STRIDE, DEFAULT_STRIDE))
    max_samples = int(os.environ.get(ENV_TELEMETRY_SAMPLES, DEFAULT_MAX_SAMPLES))
    return TelemetryConfig(
        out_dir=out_dir, enabled=enabled, stride=stride, max_samples=max_samples
    )


class TimeSeries:
    """A bounded, stride-decimating time series.

    Samples are *offered* on a fixed grid; the series keeps every
    ``keep_every``-th offer.  When the retained buffer reaches
    ``max_samples`` it decimates in place — every second retained sample
    is dropped and ``keep_every`` doubles — so memory is O(max_samples)
    no matter how long the run, and the retained grid stays uniform
    (every kept timestamp is a multiple of the current effective stride).
    """

    __slots__ = ("name", "max_samples", "times", "values", "keep_every",
                 "offered", "decimations")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 4:
            raise ValueError(f"max_samples must be >= 4, got {max_samples}")
        self.name = name
        self.max_samples = int(max_samples)
        self.times: list[float] = []
        self.values: list[float] = []
        self.keep_every = 1
        self.offered = 0
        self.decimations = 0

    def offer(self, t: float, value: float) -> bool:
        """Offer one sample; returns True if it was retained."""
        i = self.offered
        self.offered += 1
        if i % self.keep_every:
            return False
        self.times.append(float(t))
        self.values.append(float(value))
        if len(self.times) >= self.max_samples:
            # Flight-recorder decimation: halve resolution, double span.
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.keep_every *= 2
            self.decimations += 1
        return True

    def __len__(self) -> int:
        return len(self.times)

    def as_dict(self, precision: int = 9) -> dict:
        """JSON-ready record of this series (floats rounded to a fixed
        precision so exports are byte-stable across platforms)."""
        return {
            "t": [round(t, precision) for t in self.times],
            "v": [round(v, precision) for v in self.values],
            "keep_every": self.keep_every,
            "offered": self.offered,
            "decimations": self.decimations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimeSeries {self.name}: {len(self.times)} kept / "
            f"{self.offered} offered, keep_every={self.keep_every}>"
        )


def loss_raster(
    drop_times: Sequence[float], duration: float, bins: int = RASTER_BINS
) -> dict:
    """Bin drop timestamps into a fixed raster over ``[0, duration]``.

    The raster is the flight-recorder view of the paper's loss process:
    bursts show up as tall isolated columns, a Poisson-like process as a
    low even carpet.  Returns a JSON-ready dict with bin edges implied by
    ``duration / bins``.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    t = np.asarray(drop_times, dtype=np.float64)
    counts, _ = np.histogram(t, bins=bins, range=(0.0, duration))
    return {
        "bins": int(bins),
        "bin_width": round(duration / bins, 9),
        "counts": [int(c) for c in counts],
        "total": int(len(t)),
    }


def flow_summary(sender, sink=None, duration: Optional[float] = None) -> dict:
    """Per-flow end-of-run summary row for the report's throughput table.

    ``goodput_mbps`` counts cumulatively acknowledged payload over the
    run duration (falls back to the flow's own completion time).
    """
    stats = sender.stats
    span = duration
    if span is None:
        span = stats.completion_time
    acked_bytes = sender.highest_acked * sender.packet_size
    goodput = (
        acked_bytes * 8.0 / span / 1e6 if span and span > 0 else float("nan")
    )
    row = {
        "flow_id": int(sender.flow_id),
        "variant": str(getattr(sender, "variant", "?")),
        "packets_sent": int(stats.packets_sent),
        "acked": int(sender.highest_acked),
        "retransmissions": int(stats.retransmissions),
        "timeouts": int(stats.timeouts),
        "goodput_mbps": round(goodput, 6) if goodput == goodput else None,
    }
    if sink is not None and hasattr(sink, "stats"):
        row["received"] = int(sink.stats.packets_received)
    return row


class FlightRecorder:
    """Fixed-stride telemetry samplers driven off the simulator clock.

    Register probes (:meth:`probe`) or component watchers
    (:meth:`watch_flow` / :meth:`watch_queue` / :meth:`watch_link`), then
    :meth:`start` the tick.  Each tick samples every probe at the current
    sim time into its bounded :class:`TimeSeries`.  The recurring tick
    rides :meth:`Simulator.schedule_every`, so it stops by itself when the
    scenario's own events drain.
    """

    def __init__(
        self,
        sim: "Simulator",
        stride: float = DEFAULT_STRIDE,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.sim = sim
        self.stride = float(stride)
        self.max_samples = int(max_samples)
        self.series: dict[str, TimeSeries] = {}
        self._probes: list[tuple[TimeSeries, Callable[[], float]]] = []
        self._ticker: Optional["RepeatingEvent"] = None
        self.raster: Optional[dict] = None
        self.flows: list[dict] = []

    # -- registration ---------------------------------------------------
    def probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        """Register a scalar probe sampled every tick as series ``name``."""
        if name in self.series:
            raise ValueError(f"telemetry series {name!r} already registered")
        ts = TimeSeries(name, max_samples=self.max_samples)
        self.series[name] = ts
        self._probes.append((ts, fn))
        return ts

    def watch_flow(self, sender) -> None:
        """Sample a TCP flow's cwnd / srtt / pacing rate every tick.

        Idempotent per flow id (re-watching is a no-op), so run wiring can
        register from several layers without coordinating.
        """
        prefix = f"flow.{sender.flow_id}"
        if f"{prefix}.cwnd" in self.series:
            return
        self.probe(f"{prefix}.cwnd", lambda: sender.cwnd)
        self.probe(f"{prefix}.srtt", lambda: sender.srtt or 0.0)
        self.probe(f"{prefix}.rate_mbps", lambda: sender.pacing_rate_bps() / 1e6)
        # Model-based senders expose extra state worth a series: BBR's
        # bottleneck-bandwidth estimate drives its whole pacing regime.
        if hasattr(sender, "btlbw_bps"):
            self.probe(f"{prefix}.btlbw_mbps", lambda: sender.btlbw_bps() / 1e6)

    def watch_queue(self, queue: "Queue") -> None:
        """Sample a queue's depth and cumulative drops every tick
        (idempotent per queue name)."""
        prefix = f"queue.{queue.name}"
        if f"{prefix}.depth" in self.series:
            return
        self.probe(f"{prefix}.depth", lambda: len(queue))
        # dropped_total folds in dequeue-time (CoDel/FQ-CoDel) drops.
        self.probe(f"{prefix}.dropped", lambda: queue.dropped_total)

    def watch_link(self, link: "Link") -> None:
        """Sample a link's busy-time accumulation and up/down state
        (idempotent per link name)."""
        prefix = f"link.{link.name}"
        if f"{prefix}.busy_time" in self.series:
            return
        self.probe(f"{prefix}.busy_time", lambda: link.busy_time)
        self.probe(f"{prefix}.up", lambda: 1.0 if link.is_up else 0.0)

    # -- sampling -------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic tick (idempotent)."""
        if self._ticker is None:
            self.sample()  # t=now baseline so every series starts aligned
            self._ticker = self.sim.schedule_every(self.stride, self.sample)

    def stop(self) -> None:
        """Cancel the periodic tick (idempotent)."""
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def sample(self) -> None:
        """Sample every registered probe at the current sim time."""
        now = self.sim.now
        for ts, fn in self._probes:
            ts.offer(now, fn())

    # -- finalization ---------------------------------------------------
    def set_raster(self, drop_times: Sequence[float], duration: float) -> None:
        """Attach the loss-burst raster computed from a drop trace."""
        self.raster = loss_raster(drop_times, duration)

    def add_flow_summary(self, sender, sink=None, duration: Optional[float] = None) -> None:
        """Append one per-flow summary row (report throughput table)."""
        self.flows.append(flow_summary(sender, sink=sink, duration=duration))

    def as_dict(self) -> dict:
        """JSON-ready flight record (series sorted by name)."""
        return {
            "stride": self.stride,
            "max_samples": self.max_samples,
            "series": {k: self.series[k].as_dict() for k in sorted(self.series)},
            "raster": self.raster,
            "flows": sorted(self.flows, key=lambda r: r["flow_id"]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {len(self.series)} series "
            f"stride={self.stride}s>"
        )
