"""Fleet-observability smoke test (the ``make top-smoke`` target).

Launches a seeded mini-campaign as a real child process with
``--metrics-port 0``, then exercises the whole observability surface
from the outside, the way an operator would::

    PYTHONPATH=src python -m repro.obs.topsmoke

Legs exercised:

1. **Live scrape** — while the campaign is still running, discover the
   auto-assigned port from the ``metrics-port`` file and scrape
   ``/metrics`` (Prometheus 0.0.4 text with fleet gauges) and
   ``/snapshot.json`` off the live supervisor.
2. **Clean finish** — the child exits 0, the port-file advertisement is
   withdrawn, and the state directory holds a complete bus feed
   (``campaign.start`` through ``campaign.reduced``).
3. **Post-mortem console** — ``repro top --once`` over the finished
   state directory renders a COMPLETE snapshot with zero torn records
   and every path accounted for.
4. **Budget** — the whole smoke fits an explicit wall-clock budget.

Exits nonzero (an ``AssertionError``) on any failure.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.obs.aggregate import FleetAggregator
from repro.obs.console import run_top
from repro.obs.httpd import PORT_FILE

SEED = 2006
SITES = 30
SHARDS = 8
PATHS = 400
WALL_BUDGET_S = 120.0

#: How long leg 1 waits for the child to advertise its bound port.
PORT_WAIT_S = 60.0


def _spawn_campaign(state_dir: Path) -> subprocess.Popen:
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                      if p]
    )
    cmd = [
        sys.executable, "-m", "repro", "campaign",
        "--sites", str(SITES),
        "--shards", str(SHARDS),
        "--paths", str(PATHS),
        "--seed", str(SEED),
        "--state-dir", str(state_dir),
        "--metrics-port", "0",
    ]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _get(port: int, path: str) -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as resp:
        assert resp.status == 200, f"GET {path}: HTTP {resp.status}"
        return resp.read()


def check_live_scrape(state_dir: Path, child: subprocess.Popen) -> int:
    """Leg 1: discover the advertised port and scrape the live run."""
    port_file = state_dir / PORT_FILE
    deadline = time.monotonic() + PORT_WAIT_S
    while time.monotonic() < deadline:
        if port_file.exists() or child.poll() is not None:
            break
        time.sleep(0.01)
    assert port_file.exists(), (
        "campaign never advertised a metrics port"
        + (f" (child exited {child.returncode})"
           if child.poll() is not None else "")
    )
    port = int(port_file.read_text())

    metrics = _get(port, "/metrics").decode()
    assert "repro_fleet_paths_total" in metrics, metrics[:400]
    assert 'unit="shard"' in metrics, metrics[:400]
    # Keep scraping the live endpoint until the supervisor has written
    # its ledger meta line (a fresh campaign starts as "unknown").
    snap = json.loads(_get(port, "/snapshot.json"))
    while snap["kind"] != "campaign" and time.monotonic() < deadline \
            and child.poll() is None:
        time.sleep(0.01)
        snap = json.loads(_get(port, "/snapshot.json"))
    assert snap["kind"] == "campaign", snap
    assert snap["status"] in ("RUNNING", "COMPLETE"), snap
    assert snap["paths_total"] == PATHS, snap
    return port


def check_clean_finish(state_dir: Path, child: subprocess.Popen) -> None:
    """Leg 2: child exits 0, port withdrawn, bus feed complete."""
    try:
        out, err = child.communicate(timeout=WALL_BUDGET_S)
    except subprocess.TimeoutExpired:
        child.kill()
        raise AssertionError("campaign child exceeded the wall budget")
    assert child.returncode == 0, f"campaign failed:\n{err}"
    assert "[campaign:" in err, err
    assert not (state_dir / PORT_FILE).exists(), (
        "port file survived the campaign"
    )
    kinds = set()
    for line in (state_dir / "events.jsonl").read_text().splitlines():
        kinds.add(json.loads(line)["kind"])
    assert "campaign.start" in kinds, kinds
    assert "campaign.reduced" in kinds, kinds
    assert "shard.done" in kinds, kinds


def check_console(state_dir: Path) -> dict:
    """Leg 3: ``repro top --once`` post-mortem + aggregator accounting."""
    out = io.StringIO()
    code = run_top(str(state_dir), once=True, stream=out)
    text = out.getvalue()
    assert code == 0, text
    assert "COMPLETE" in text, text
    assert f"paths {PATHS}/{PATHS} (100.0%)" in text, text

    snap = FleetAggregator(state_dir).poll(now=None)
    assert snap.status == "COMPLETE", snap.to_dict()
    assert snap.torn_records == 0, snap.to_dict()
    assert snap.counts["done"] == SHARDS, snap.counts
    return snap.counts


def main() -> int:
    """Run every leg; print a one-line verdict per leg."""
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory() as td:
        state = Path(td) / "campaign"
        child = _spawn_campaign(state)
        try:
            port = check_live_scrape(state, child)
            print(f"[top-smoke] live /metrics + /snapshot.json scrape ok "
                  f"(port {port}, mid-run)")
            check_clean_finish(state, child)
            print(f"[top-smoke] campaign finished clean; bus feed complete "
                  f"({SHARDS} shards, {PATHS} paths)")
            counts = check_console(state)
            print(f"[top-smoke] repro top --once post-mortem ok "
                  f"({counts['done']}/{SHARDS} shards done, 0 torn records)")
        finally:
            if child.poll() is None:
                child.kill()
    elapsed = time.monotonic() - t0
    assert elapsed < WALL_BUDGET_S, (
        f"smoke took {elapsed:.1f}s, budget is {WALL_BUDGET_S:.0f}s"
    )
    print(f"[top-smoke] all legs passed in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by `make top-smoke`
    sys.exit(main())
