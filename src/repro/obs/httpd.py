"""Opt-in metrics endpoint: ``/metrics`` + ``/snapshot.json`` over stdlib HTTP.

``--metrics-port N`` on the campaign/zoo commands starts one
:class:`ObsServer` in a daemon thread for the duration of the run.  It
serves:

* ``GET /metrics`` — Prometheus text exposition 0.0.4
  (:meth:`repro.obs.metrics.MetricsRegistry.to_prometheus` over the
  run's registry, when one is attached) followed by fleet-level gauges
  derived from the live :class:`~repro.obs.aggregate.FleetSnapshot`;
* ``GET /snapshot.json`` — the full snapshot as JSON (what ``repro
  top`` renders), for the results service and ad-hoc curl debugging.

Port ``0`` asks the kernel for a free port; whatever port is bound is
written to ``metrics-port`` inside the state directory so an outside
observer (the top-smoke lane, a dashboard) can discover the endpoint
without racing the bind.  Everything is stdlib ``http.server`` — no new
dependencies — and the server thread never blocks or fails the run:
scrape-side errors are answered with 500s, not raised into the
campaign.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from repro.obs.aggregate import FleetAggregator, FleetSnapshot
from repro.obs.metrics import prometheus_metric_name

__all__ = [
    "ENV_METRICS_PORT",
    "ObsServer",
    "PORT_FILE",
    "maybe_obs_server",
    "metrics_port_from_env",
    "snapshot_to_prometheus",
]

#: File inside the state directory naming the bound metrics port.
PORT_FILE = "metrics-port"

#: Environment knob (the CLI's ``--metrics-port``): an integer port to
#: serve ``/metrics`` on during campaign/zoo runs; ``0`` = auto-assign
#: (read the bound port back from the ``metrics-port`` file).  Unset or
#: empty: no server.
ENV_METRICS_PORT = "REPRO_METRICS_PORT"

_STATUS_CODES = {"EMPTY": 0, "RUNNING": 1, "COMPLETE": 2, "DEGRADED": 3}


def snapshot_to_prometheus(snap: FleetSnapshot, prefix: str = "repro") -> str:
    """Fleet-level gauges for one snapshot, Prometheus text format."""
    lines: list[str] = []

    def gauge(name: str, value, labels: str = "") -> None:
        full = prometheus_metric_name(name, prefix=f"{prefix}_fleet")
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full}{labels} {value}")

    counts = snap.counts
    unit = snap.unit_name
    units_metric = prometheus_metric_name("units", prefix=f"{prefix}_fleet")
    lines.append(f"# TYPE {units_metric} gauge")
    for status in sorted(counts):
        lines.append(
            f'{units_metric}{{status="{status}",unit="{unit}"}} '
            f"{counts[status]}"
        )
    gauge("paths_total", snap.paths_total)
    gauge("paths_done", snap.paths_done)
    gauge("retries", snap.retries)
    gauge("torn_records", snap.torn_records)
    gauge("status", _STATUS_CODES.get(snap.status, 0))
    if snap.rate is not None:
        gauge("paths_per_second", repr(float(snap.rate)))
    if snap.eta_s is not None:
        gauge("eta_seconds", repr(float(snap.eta_s)))
    return "\n".join(lines) + "\n"


class ObsServer:
    """Background HTTP exposition for one run's state directory.

    ``registry`` is optional: without one, ``/metrics`` carries only the
    fleet gauges.  The handler re-polls a private
    :class:`FleetAggregator` per request (incremental, O(new bytes)), so
    scrapes always see the latest appended records without the run
    pushing anything.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        port: int = 0,
        registry=None,
        host: str = "127.0.0.1",
    ):
        self.state_dir = Path(state_dir)
        self.registry = registry
        self._agg = FleetAggregator(self.state_dir)
        self._lock = threading.Lock()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet: no stderr spam
                pass

            def _send(self, code: int, body: bytes, ctype: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    path = self.path.split("?", 1)[0]
                    if path == "/metrics":
                        body = server.render_metrics().encode("utf-8")
                        self._send(
                            200, body,
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path in ("/snapshot.json", "/snapshot"):
                        body = json.dumps(
                            server.snapshot().to_dict(), sort_keys=True
                        ).encode("utf-8")
                        self._send(200, body, "application/json")
                    else:
                        self._send(404, b"not found\n", "text/plain")
                except BrokenPipeError:  # scraper went away mid-reply
                    pass
                except Exception as exc:  # noqa: BLE001 - never kill the run
                    try:
                        self._send(
                            500, f"error: {exc}\n".encode(), "text/plain"
                        )
                    except OSError:
                        pass

        self._httpd = ThreadingHTTPServer((host, int(port)), Handler)
        self._httpd.daemon_threads = True
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-httpd",
            daemon=True,
        )

    # -- payloads --------------------------------------------------------
    def snapshot(self) -> FleetSnapshot:
        """The current fleet snapshot (incremental poll, thread-safe)."""
        with self._lock:
            return self._agg.poll(now=time.time())

    def render_metrics(self) -> str:
        """The full ``/metrics`` body: registry metrics + fleet gauges."""
        parts = []
        if self.registry is not None:
            parts.append(self.registry.to_prometheus())
        parts.append(snapshot_to_prometheus(self.snapshot()))
        return "".join(parts)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ObsServer":
        """Bind announced: write the port file, start serving."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / PORT_FILE).write_text(f"{self.port}\n")
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and remove the port-file advertisement."""
        self._httpd.shutdown()
        self._httpd.server_close()
        try:
            (self.state_dir / PORT_FILE).unlink()
        except OSError:
            pass

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def metrics_port_from_env() -> Optional[int]:
    """``$REPRO_METRICS_PORT`` as an int, or ``None`` when unset/empty."""
    raw = os.environ.get(ENV_METRICS_PORT, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def maybe_obs_server(
    state_dir: Optional[Union[str, Path]], registry=None
) -> Optional[ObsServer]:
    """Start an :class:`ObsServer` when the env knob asks for one.

    Returns the started server (caller closes it), or ``None`` when the
    knob is unset or there is no state directory to aggregate.
    """
    port = metrics_port_from_env()
    if port is None or state_dir is None:
        return None
    return ObsServer(state_dir, port=port, registry=registry).start()
