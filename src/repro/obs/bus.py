"""Unified fleet event bus: one ordered JSON-lines feed per state-dir.

A long-running campaign already scatters its observable state across a
shard ledger, heartbeat files, span JSON-lines, and ad-hoc stderr
prints.  The bus merges the *event-shaped* part of that into a single
append-only ``events.jsonl`` inside the state directory:

* **Schema-versioned records** — every record carries ``v`` (the bus
  schema version), ``kind`` (dotted event name: ``shard.done``,
  ``worker.hang``, ``log``), ``src`` (which component emitted it),
  ``seq`` (per-writer sequence) and ``wall`` (emission wall clock).
* **Atomic appends** — each record is one ``os.write`` to an
  ``O_APPEND`` descriptor, so concurrent writers (the supervisor parent
  plus its shard workers) interleave whole records, never bytes.  The
  feed's order is the kernel's append order.
* **Torn-tail-tolerant tailing** — :func:`tail_jsonl` consumes only
  newline-terminated records and leaves an unterminated tail *pending*
  (it will be re-read once the writer finishes it); a *complete* line
  that fails to decode is skipped and counted instead of raising, per
  the fleet rule that readers of unfsynced telemetry never crash on a
  tear (:class:`TailState` accumulates the ``torn`` counter the
  snapshot surfaces).

The bus is observability, not state: nothing resumes from it, and
deleting it loses nothing but history.  Durable truth stays in the
fsynced shard ledger (:mod:`repro.faults.checkpoint`).

:class:`RunLog` is the structured-logging half: subcommands route their
diagnostic prints through it, and ``--log-json`` (or ``REPRO_LOG=json``)
switches the emission format from the historical human text to one JSON
record per line — mirrored onto the bus when one is attached, so a
campaign's stderr chatter and its fleet feed are the same records.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional, Union

__all__ = [
    "BUS_FILE",
    "BUS_VERSION",
    "ENV_LOG",
    "EventBus",
    "RunLog",
    "TailState",
    "log_mode",
    "open_bus",
    "read_json_tolerant",
    "tail_jsonl",
]

#: Bus file name inside a campaign/zoo state directory.
BUS_FILE = "events.jsonl"

#: Schema version stamped into every record (bump on breaking changes;
#: readers skip-and-count versions they do not understand).
BUS_VERSION = 1

#: Environment knob selecting the log emission format: ``json`` for one
#: structured record per line (the CLI's ``--log-json``), anything else
#: (or unset) for the historical human text.
ENV_LOG = "REPRO_LOG"


def log_mode() -> str:
    """The active log format: ``"json"`` or ``"text"``."""
    return "json" if os.environ.get(ENV_LOG, "").strip().lower() == "json" else "text"


class EventBus:
    """Append-only writer of one state-dir's ``events.jsonl`` feed.

    The descriptor is opened lazily (``O_APPEND``) on first emit, so
    constructing a bus never creates files — a supervisor can carry one
    unconditionally and only a run that actually emits leaves a feed
    behind.  Safe for concurrent use from multiple processes: every
    record is a single ``write(2)`` of a complete line.
    """

    def __init__(self, state_dir: Union[str, Path], source: str = "supervisor"):
        self.path = Path(state_dir) / BUS_FILE
        self.source = str(source)
        self._fd: Optional[int] = None
        self._seq = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one event record; returns the record as written."""
        self._seq += 1
        rec = {
            "v": BUS_VERSION,
            "kind": str(kind),
            "src": self.source,
            "seq": self._seq,
            "wall": time.time(),
        }
        rec.update(fields)
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        # One write of one whole line: concurrent emitters (parent +
        # workers) interleave records, never partial bytes.
        os.write(self._fd, line.encode("utf-8"))
        return rec

    def close(self) -> None:
        """Release the append descriptor (safe to call repeatedly)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventBus {self.path} src={self.source} seq={self._seq}>"


def open_bus(
    state_dir: Optional[Union[str, Path]], source: str = "supervisor"
) -> Optional[EventBus]:
    """An :class:`EventBus` for ``state_dir``, or ``None`` without one."""
    if state_dir is None:
        return None
    return EventBus(state_dir, source=source)


@dataclass
class TailState:
    """Cursor + damage counter for one incrementally tailed JSONL file.

    ``offset`` is the byte position of the next unread record;
    ``torn`` counts complete-but-undecodable lines skipped so far.  A
    shrinking file (rotation — never expected here) resets the cursor.
    """

    offset: int = 0
    torn: int = 0


def tail_jsonl(
    path: Union[str, Path], state: Optional[TailState] = None
) -> tuple[list[dict], TailState]:
    """Read every *complete* new record since ``state``; O(new bytes).

    Only newline-terminated lines are consumed: a torn tail (a write
    still in flight, or one lost to a crash) stays pending and is
    re-examined next poll, so a concurrent reader only ever observes
    whole records.  Complete lines that fail to decode as JSON objects
    are skipped and counted in ``state.torn`` instead of raising.
    """
    st = state or TailState()
    p = Path(path)
    try:
        size = p.stat().st_size
    except OSError:
        return [], st
    if size < st.offset:  # truncated/replaced underneath us: start over
        st.offset = 0
    if size == st.offset:
        return [], st
    with p.open("rb") as fh:
        fh.seek(st.offset)
        chunk = fh.read(size - st.offset)
    keep = chunk.rfind(b"\n") + 1
    if keep == 0:  # nothing newline-terminated yet
        return [], st
    records: list[dict] = []
    for raw in chunk[:keep].split(b"\n")[:-1]:
        if not raw:
            continue
        try:
            obj = json.loads(raw)
        except ValueError:
            st.torn += 1
            continue
        if isinstance(obj, dict):
            records.append(obj)
        else:
            st.torn += 1
    st.offset += keep
    return records, st


def read_json_tolerant(path: Union[str, Path]) -> tuple[Optional[dict], int]:
    """One whole-file JSON read that treats damage as data.

    Heartbeat files are atomic-replace but deliberately unfsynced, so a
    crash (or a reader racing the replace on a non-atomic filesystem)
    can expose a missing or partial file.  Returns ``(record, torn)``:
    ``(None, 0)`` when the file simply does not exist, ``(None, 1)``
    when it exists but does not parse to a JSON object.
    """
    try:
        raw = Path(path).read_text()
    except OSError:
        return None, 0
    try:
        obj = json.loads(raw)
    except ValueError:
        return None, 1
    if not isinstance(obj, dict):
        return None, 1
    return obj, 0


@dataclass
class RunLog:
    """Structured diagnostics for one subcommand run.

    ``emit(event, message, **fields)`` prints ``message`` verbatim in
    text mode (bit-compatible with the historical ad-hoc prints) or a
    single JSON record in json mode, and mirrors the record onto the
    attached bus either way.  ``stream=None`` suppresses printing
    entirely (bus-only logging).
    """

    component: str
    bus: Optional[EventBus] = None
    stream: Optional[IO[str]] = field(default_factory=lambda: sys.stderr)
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode is None:
            self.mode = log_mode()

    @property
    def json_mode(self) -> bool:
        """True when emitting JSON records instead of human text."""
        return self.mode == "json"

    def emit(self, event: str, message: Optional[str] = None, **fields) -> dict:
        """Log one event; returns the structured record."""
        rec = {"event": f"{self.component}.{event}", **fields}
        if self.bus is not None:
            self.bus.emit("log", **rec)
        if self.stream is not None:
            if self.json_mode:
                out = dict(rec)
                out["wall"] = time.time()
                if message is not None:
                    out["message"] = message
                print(json.dumps(out, sort_keys=True), file=self.stream)
            elif message is not None:
                print(message, file=self.stream)
            else:
                kv = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
                print(f"[{self.component}.{event}] {kv}".rstrip(),
                      file=self.stream)
            self.stream.flush()
        return rec
