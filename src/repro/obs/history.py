"""``python -m repro history`` — cross-run health timeline.

One benchmark file or run report tells you how the code behaves *today*;
the repository's health is a trajectory.  This module folds everything
recorded under a root directory into one chronological Markdown (or
HTML) timeline:

* the ``BENCH_<n>.json`` trajectory (:mod:`repro.bench`): per-stage
  speedups across files, the newest file's margin against the
  ``REGRESSION_FLOOR`` gate, and each file's platform stamp;
* run directories under ``runs/`` (``manifest.json`` + optional
  ``metrics.json`` / report artifacts): what ran, with which knobs,
  whether a report was rendered, plus any metric warnings;
* campaign/zoo state directories found under the root: each one's
  :class:`~repro.obs.aggregate.FleetSnapshot` verdict, with DEGRADED
  runs (quarantined shards, lost paths) called out in their own log.

Reading is tolerant by the fleet rule: damaged or partial JSON files
are skipped and *counted* (reported in the footer), never raised —
history must render even when one run crashed mid-write.
"""

from __future__ import annotations

import html as _html
import json
import sys
from pathlib import Path
from typing import Optional, Union

from repro.bench import REGRESSION_FLOOR
from repro.obs.aggregate import FleetAggregator

__all__ = ["collect_history", "generate_history", "generate_html_history",
           "main"]


def _load_json(path: Path, torn: list[int]) -> Optional[dict]:
    try:
        obj = json.loads(path.read_text())
    except OSError:
        return None
    except ValueError:
        torn[0] += 1
        return None
    if not isinstance(obj, dict):
        torn[0] += 1
        return None
    return obj


def collect_history(root: Union[str, Path]) -> dict:
    """Scan ``root`` and return the raw history model (JSON-able)."""
    d = Path(root)
    torn = [0]

    # -- bench trajectory ------------------------------------------------
    bench_files = []
    indexed = []
    for p in d.glob("BENCH_*.json"):
        stem = p.stem.removeprefix("BENCH_")
        if stem.isdigit():
            indexed.append((int(stem), p))
    for idx, p in sorted(indexed):
        doc = _load_json(p, torn)
        if doc is None:
            continue
        stages = {}
        for name, entry in sorted(doc.get("benchmarks", {}).items()):
            if isinstance(entry, dict):
                stages[name] = {
                    k: entry.get(k)
                    for k in ("speedup", "optimized", "unit")
                    if entry.get(k) is not None
                }
        bench_files.append({
            "index": idx,
            "file": p.name,
            "mode": doc.get("mode"),
            "python": doc.get("python"),
            "platform": doc.get("platform"),
            "stages": stages,
        })

    # Gate margins: newest file's speedup vs floor * previous file's.
    margins = []
    if len(bench_files) >= 2:
        prev, new = bench_files[-2], bench_files[-1]
        for name, entry in sorted(new["stages"].items()):
            a = prev["stages"].get(name, {}).get("speedup")
            b = entry.get("speedup")
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and a > 0:
                margins.append({
                    "stage": name,
                    "prev": a,
                    "new": b,
                    "floor": round(REGRESSION_FLOOR * a, 3),
                    "margin": round(b / (REGRESSION_FLOOR * a), 3),
                    "ok": b >= REGRESSION_FLOOR * a,
                })

    # -- recorded runs under runs/ ---------------------------------------
    run_entries = []
    runs_dir = d / "runs"
    if runs_dir.is_dir():
        for sub in sorted(runs_dir.iterdir()):
            manifest_path = sub / "manifest.json"
            if not sub.is_dir() or not manifest_path.exists():
                continue
            manifest = _load_json(manifest_path, torn) or {}
            metrics = _load_json(sub / "metrics.json", torn)
            warnings = []
            if metrics:
                w = metrics.get("warnings")
                if isinstance(w, list):
                    warnings = [str(x) for x in w]
            run_entries.append({
                "run": sub.name,
                "name": manifest.get("name", sub.name),
                "seed": manifest.get("seed"),
                "duration": manifest.get("duration"),
                "env": manifest.get("env", {}),
                "report": (sub / "report.md").exists(),
                "html": (sub / "report.html").exists(),
                "warnings": warnings,
            })

    # -- fleet state directories -----------------------------------------
    fleets = []
    seen_ledgers = set()
    for pattern in ("shards.jsonl", "zoo.jsonl"):
        for ledger in sorted(d.rglob(pattern)):
            state_dir = ledger.parent
            if state_dir in seen_ledgers:
                continue
            seen_ledgers.add(state_dir)
            snap = FleetAggregator(state_dir).poll(now=None)
            torn[0] += snap.torn_records
            fleets.append({
                "state_dir": str(state_dir.relative_to(d)),
                "kind": snap.kind,
                "status": snap.status,
                "counts": snap.counts,
                "paths_done": snap.paths_done,
                "paths_total": snap.paths_total,
                "retries": snap.retries,
                "quarantined": [
                    u.to_dict()
                    for u in snap.units.values()
                    if u.status in ("quarantined", "failed")
                ],
            })

    return {
        "root": str(d),
        "bench": bench_files,
        "gate": {"floor": REGRESSION_FLOOR, "margins": margins},
        "runs": run_entries,
        "fleets": fleets,
        "torn_records": torn[0],
    }


def generate_history(root: Union[str, Path]) -> str:
    """The cross-run health timeline as Markdown."""
    model = collect_history(root)
    out: list[str] = [f"# repro health timeline — `{model['root']}`", ""]

    bench = model["bench"]
    out.append(f"## Benchmark trajectory ({len(bench)} files)")
    out.append("")
    if bench:
        stages = sorted({s for b in bench for s in b["stages"]})
        speedup_stages = [
            s for s in stages
            if any("speedup" in b["stages"].get(s, {}) for b in bench)
        ]
        header = "| file | mode | " + " | ".join(speedup_stages) + " |"
        out.append(header)
        out.append("|" + "---|" * (2 + len(speedup_stages)))
        for b in bench:
            cells = []
            for s in speedup_stages:
                v = b["stages"].get(s, {}).get("speedup")
                cells.append(f"{v:.2f}x" if isinstance(v, (int, float))
                             else "-")
            out.append(
                f"| {b['file']} | {b['mode']} | " + " | ".join(cells) + " |"
            )
        out.append("")
    else:
        out.append("_no BENCH_<n>.json files found_")
        out.append("")

    gate = model["gate"]
    out.append(f"## Regression gate (floor {gate['floor']:.2f}x)")
    out.append("")
    if gate["margins"]:
        out.append("| stage | prev | new | floor | margin | verdict |")
        out.append("|---|---|---|---|---|---|")
        for m in gate["margins"]:
            verdict = "ok" if m["ok"] else "**REGRESSION**"
            out.append(
                f"| {m['stage']} | {m['prev']:.2f}x | {m['new']:.2f}x | "
                f"{m['floor']:.2f}x | {m['margin']:.2f} | {verdict} |"
            )
    else:
        out.append("_fewer than two bench files — gate idle_")
    out.append("")

    runs = model["runs"]
    out.append(f"## Recorded runs ({len(runs)})")
    out.append("")
    if runs:
        out.append("| run | experiment | seed | duration | report | warnings |")
        out.append("|---|---|---|---|---|---|")
        for r in runs:
            report = "md+html" if r["html"] else ("md" if r["report"] else "-")
            dur = r["duration"]
            dur_s = f"{dur}s" if dur is not None else "-"
            out.append(
                f"| {r['run']} | {r['name']} | {r['seed']} | {dur_s} | "
                f"{report} | {len(r['warnings'])} |"
            )
    else:
        out.append("_no run directories under runs/_")
    out.append("")

    fleets = model["fleets"]
    out.append(f"## Fleet runs ({len(fleets)})")
    out.append("")
    degraded = [f for f in fleets if f["status"] == "DEGRADED"]
    if fleets:
        out.append("| state dir | kind | status | done | retries |")
        out.append("|---|---|---|---|---|")
        for f in fleets:
            status = (f"**{f['status']}**" if f["status"] == "DEGRADED"
                      else f["status"])
            out.append(
                f"| {f['state_dir']} | {f['kind']} | {status} | "
                f"{f['paths_done']}/{f['paths_total']} | {f['retries']} |"
            )
        out.append("")
    else:
        out.append("_no campaign/zoo state directories under the root_")
        out.append("")
    if degraded:
        out.append("### DEGRADED-run log")
        out.append("")
        for f in degraded:
            out.append(f"- `{f['state_dir']}`:")
            for u in f["quarantined"]:
                err = f" — {u['error']}" if u["error"] else ""
                out.append(
                    f"  - {f['kind']} unit {u['id']} {u['status']} after "
                    f"{u['attempts']} attempts{err}"
                )
        out.append("")

    out.append(
        f"_torn/unreadable records skipped while reading: "
        f"{model['torn_records']}_"
    )
    return "\n".join(out) + "\n"


def generate_html_history(root: Union[str, Path]) -> str:
    """The timeline as a standalone HTML page (Markdown in ``<pre>``)."""
    md = generate_history(root)
    title = _html.escape(f"repro health timeline — {root}")
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title></head><body>"
        f"<h1>{title}</h1>"
        "<pre>" + _html.escape(md) + "</pre>"
        "</body></html>\n"
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point behind ``python -m repro history``."""
    import argparse

    from repro.obs.metrics import atomic_write_text

    p = argparse.ArgumentParser(
        prog="repro history",
        description="Fold BENCH_*.json + runs/ + fleet state dirs into a "
        "cross-run health timeline.",
    )
    p.add_argument("root", nargs="?", default=".",
                   help="directory holding BENCH_*.json and runs/ "
                   "(default .)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="also write the Markdown timeline to PATH")
    p.add_argument("--html", action="store_true",
                   help="with --out: write an HTML page next to it")
    args = p.parse_args(argv)

    md = generate_history(args.root)
    print(md, end="")
    if args.out:
        out = Path(args.out)
        atomic_write_text(out, md)
        if args.html:
            atomic_write_text(
                out.with_suffix(".html"), generate_html_history(args.root)
            )
        print(f"[history written to {out}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
