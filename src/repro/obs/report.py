"""Run-report generator: a self-contained Markdown/HTML flight report.

``python -m repro report <run-dir>`` (or :func:`write_report`) turns the
artifacts a telemetry-armed run leaves behind — ``manifest.json``,
``telemetry.json``, ``metrics.json``, ``spans.jsonl`` — into one
human-readable document: the run manifest (seed, scale, knobs, fault
plan), ASCII sparklines of every recorded time series (cwnd, queue
depth, link state, ...), the loss-burst raster, the per-flow throughput
table, deterministic metrics, and a span/fault summary.

**Determinism contract.**  The report is a function of the run's
*seed-determined* outputs only: every number in it derives from sim
time, packet counts, or the manifest.  Wall-clock values (span
``wall_ms``, profiler durations, events/sec) exist in the raw artifacts
but are deliberately excluded, and span/event summaries aggregate by
name rather than completion order, so two runs of the same seed emit
byte-identical reports — the property the integration tests and the
``make report`` lane assert.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.metrics import atomic_write_text

__all__ = [
    "sparkline",
    "svg_sparkline",
    "generate_report",
    "generate_html_report",
    "write_report",
    "validate_report",
    "ReportError",
]

#: Unicode block elements, shortest to tallest.
_BLOCKS = "▁▂▃▄▅▆▇█"

#: Sparkline width (samples are re-binned down to this many columns).
SPARK_WIDTH = 60


class ReportError(ValueError):
    """A run directory is missing or malformed for report generation."""


def _rebin(values: Sequence[float], width: int) -> list[float]:
    """Reduce ``values`` to at most ``width`` columns by bucket-averaging."""
    vals = [float(v) for v in values]
    n = len(vals)
    if n <= width:
        return vals
    out = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        chunk = vals[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: Sequence[float], width: int = SPARK_WIDTH) -> str:
    """Render values as a Unicode block-element sparkline.

    Flat series render as all-minimum blocks; empty input renders empty.
    """
    vals = _rebin(values, width)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(vals)
    top = len(_BLOCKS) - 1
    return "".join(_BLOCKS[int((v - lo) / span * top + 0.5)] for v in vals)


def svg_sparkline(
    values: Sequence[float], width: int = 240, height: int = 32
) -> str:
    """Render values as an inline SVG polyline (for the HTML report)."""
    vals = _rebin(values, SPARK_WIDTH)
    if not vals:
        return f'<svg width="{width}" height="{height}"></svg>'
    lo, hi = min(vals), max(vals)
    span = hi - lo
    n = len(vals)
    pts = []
    for i, v in enumerate(vals):
        x = 0.0 if n == 1 else i * width / (n - 1)
        y = height / 2 if span <= 0 else height - (v - lo) / span * height
        pts.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#336" stroke-width="1.5" '
        f'points="{" ".join(pts)}"/></svg>'
    )


# -- run-dir loading ----------------------------------------------------

def _load_json(path: Path, required: bool) -> Optional[dict]:
    if not path.exists():
        if required:
            raise ReportError(f"missing {path.name} in run dir {path.parent}")
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReportError(f"malformed {path}: {exc}") from exc


def _load_spans(path: Path) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ReportError(f"malformed {path}:{i}: {exc}") from exc
    return records


def _fmt(v: object) -> str:
    """Deterministic scalar formatting for table cells."""
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.6g}"
    if isinstance(v, (dict, list)):
        return json.dumps(v, sort_keys=True)
    return str(v)


# -- section renderers --------------------------------------------------

def _render_manifest(manifest: dict, out: list[str]) -> None:
    out.append("## Run manifest")
    out.append("")
    out.append("| key | value |")
    out.append("| --- | --- |")
    for key in sorted(manifest):
        out.append(f"| {key} | `{_fmt(manifest[key])}` |")
    out.append("")


def _render_telemetry(telemetry: Optional[dict], out: list[str]) -> None:
    out.append("## Telemetry timelines")
    out.append("")
    if not telemetry or not telemetry.get("series"):
        out.append("_No time series recorded._")
        out.append("")
        return
    out.append(
        f"Sampled every {_fmt(telemetry.get('stride', 0.0))} s of sim time, "
        f"≤ {telemetry.get('max_samples', 0)} samples/series "
        "(stride-doubling decimation)."
    )
    out.append("")
    out.append("| series | n | min | mean | max | timeline |")
    out.append("| --- | --- | --- | --- | --- | --- |")
    for name in sorted(telemetry["series"]):
        s = telemetry["series"][name]
        vals = s.get("v", [])
        if vals:
            lo, hi = min(vals), max(vals)
            mean = sum(vals) / len(vals)
            spark = sparkline(vals)
        else:
            lo = hi = mean = 0.0
            spark = ""
        out.append(
            f"| `{name}` | {len(vals)} | {_fmt(lo)} | {_fmt(round(mean, 6))} "
            f"| {_fmt(hi)} | `{spark}` |"
        )
    out.append("")


def _render_raster(telemetry: Optional[dict], out: list[str]) -> None:
    out.append("## Loss-event raster")
    out.append("")
    raster = (telemetry or {}).get("raster")
    if not raster:
        out.append("_No drop trace recorded._")
        out.append("")
        return
    counts = raster.get("counts", [])
    out.append(
        f"{raster.get('total', 0)} drops in {raster.get('bins', 0)} bins of "
        f"{_fmt(raster.get('bin_width', 0.0))} s "
        f"(peak {max(counts) if counts else 0} drops/bin):"
    )
    out.append("")
    out.append(f"    {sparkline(counts, width=len(counts) or 1)}")
    out.append("")


def _render_flows(telemetry: Optional[dict], out: list[str]) -> None:
    out.append("## Per-flow throughput")
    out.append("")
    flows = (telemetry or {}).get("flows") or []
    if not flows:
        out.append("_No per-flow summaries recorded._")
        out.append("")
        return
    cols = ["flow_id", "variant", "packets_sent", "acked",
            "retransmissions", "timeouts", "goodput_mbps"]
    out.append("| " + " | ".join(cols) + " |")
    out.append("|" + " --- |" * len(cols))
    for row in sorted(flows, key=lambda r: r.get("flow_id", 0)):
        out.append(
            "| " + " | ".join(_fmt(row.get(c, "")) for c in cols) + " |"
        )
    out.append("")


def _render_metrics(metrics: Optional[dict], out: list[str]) -> None:
    out.append("## Metrics")
    out.append("")
    if not metrics:
        out.append("_No metrics recorded._")
        out.append("")
        return
    # Counters and gauges are seed-deterministic (packet/check counts,
    # occupancies); profiler sections and histograms can carry wall-clock
    # durations, so the report never includes them.
    for kind in ("counters", "gauges"):
        table = metrics.get(kind) or {}
        if not table:
            continue
        out.append(f"### {kind.capitalize()}")
        out.append("")
        out.append("| metric | value |")
        out.append("| --- | --- |")
        for name in sorted(table):
            out.append(f"| `{name}` | {_fmt(table[name])} |")
        out.append("")
    warnings = metrics.get("warnings") or []
    if warnings:
        out.append("### Warnings")
        out.append("")
        for w in warnings:
            out.append(f"- {w}")
        out.append("")
    invariants = metrics.get("invariants")
    if isinstance(invariants, dict):
        out.append("### Invariants")
        out.append("")
        out.append("| key | value |")
        out.append("| --- | --- |")
        for name in sorted(invariants):
            out.append(f"| `{name}` | {_fmt(invariants[name])} |")
        out.append("")


def _render_spans(spans: list[dict], out: list[str]) -> None:
    out.append("## Phase spans")
    out.append("")
    if not spans:
        out.append("_No span trace recorded._")
        out.append("")
        return
    # Aggregate by name so worker completion order (nondeterministic under
    # a process pool) cannot leak into the report bytes.
    span_agg: dict[str, dict] = {}
    event_agg: dict[str, int] = {}
    fault_agg: dict[str, int] = {}
    shard_fates: dict[int, dict] = {}
    for rec in spans:
        name = rec.get("name", "?")
        if rec.get("kind") == "span":
            agg = span_agg.setdefault(name, {"count": 0, "sim_time": 0.0})
            agg["count"] += 1
            t0, t1 = rec.get("sim_start"), rec.get("sim_end")
            if t0 is not None and t1 is not None:
                agg["sim_time"] += t1 - t0
        elif rec.get("kind") == "event":
            event_agg[name] = event_agg.get(name, 0) + 1
            if name.startswith("fault."):
                attrs = rec.get("attrs") or {}
                amount = attrs.get("count", 1)
                kind = name[len("fault."):]
                fault_agg[kind] = fault_agg.get(kind, 0) + int(amount)
            elif name in ("shard.done", "shard.retry", "shard.quarantined"):
                # Supervisor shard-fate events (repro.internet.supervisor):
                # the latest done/quarantined event per shard wins; retry
                # events accumulate into the retries column.
                attrs = rec.get("attrs") or {}
                sid = int(attrs.get("shard", -1))
                fate = shard_fates.setdefault(sid, {"retries": 0})
                if name == "shard.retry":
                    fate["retries"] += 1
                else:
                    fate["fate"] = name.split(".", 1)[1]
                    fate["attempts"] = int(attrs.get("attempts", 1))
    out.append("| span | count | sim time (s) |")
    out.append("| --- | --- | --- |")
    for name in sorted(span_agg):
        agg = span_agg[name]
        out.append(
            f"| `{name}` | {agg['count']} | {_fmt(round(agg['sim_time'], 6))} |"
        )
    out.append("")
    if event_agg:
        out.append("### Events")
        out.append("")
        out.append("| event | count |")
        out.append("| --- | --- |")
        for name in sorted(event_agg):
            out.append(f"| `{name}` | {event_agg[name]} |")
        out.append("")
    if fault_agg:
        out.append("### Fault injections")
        out.append("")
        out.append("| fault | injections |")
        out.append("| --- | --- |")
        for kind in sorted(fault_agg):
            out.append(f"| `{kind}` | {fault_agg[kind]} |")
        out.append("")
    if shard_fates:
        done = sum(
            1 for f in shard_fates.values() if f.get("fate") == "done"
        )
        quarantined = sum(
            1 for f in shard_fates.values() if f.get("fate") == "quarantined"
        )
        retried = sum(1 for f in shard_fates.values() if f["retries"] > 0)
        out.append("### Shard fates")
        out.append("")
        out.append(
            f"{done} done / {retried} retried / {quarantined} quarantined"
        )
        out.append("")
        out.append("| shard | fate | attempts | retries |")
        out.append("| --- | --- | --- | --- |")
        for sid in sorted(shard_fates):
            fate = shard_fates[sid]
            out.append(
                f"| {sid} | {fate.get('fate', 'pending')} "
                f"| {fate.get('attempts', 1)} | {fate['retries']} |"
            )
        out.append("")


# -- public API ---------------------------------------------------------

def generate_report(run_dir: Union[str, Path]) -> str:
    """Render the Markdown flight report for ``run_dir``.

    Requires ``manifest.json``; every other artifact degrades to an
    explicit "not recorded" section so partial runs still report.
    """
    d = Path(run_dir)
    if not d.is_dir():
        raise ReportError(f"run dir does not exist: {d}")
    manifest = _load_json(d / "manifest.json", required=True)
    telemetry = _load_json(d / "telemetry.json", required=False)
    metrics = _load_json(d / "metrics.json", required=False)
    spans = _load_spans(d / "spans.jsonl")

    name = manifest.get("name", d.name)
    out: list[str] = [f"# Flight report: {name}", ""]
    _render_manifest(manifest, out)
    _render_telemetry(telemetry, out)
    _render_raster(telemetry, out)
    _render_flows(telemetry, out)
    _render_metrics(metrics, out)
    _render_spans(spans, out)
    return "\n".join(out).rstrip("\n") + "\n"


def generate_html_report(run_dir: Union[str, Path]) -> str:
    """Render a self-contained HTML report (inline SVG sparklines)."""
    d = Path(run_dir)
    md = generate_report(d)  # validates the dir and gives us the body
    telemetry = _load_json(d / "telemetry.json", required=False)
    manifest = _load_json(d / "manifest.json", required=True)
    rows = []
    for name in sorted((telemetry or {}).get("series") or {}):
        vals = telemetry["series"][name].get("v", [])
        rows.append(
            f"<tr><td><code>{_html.escape(name)}</code></td>"
            f"<td>{svg_sparkline(vals)}</td></tr>"
        )
    title = _html.escape(str(manifest.get("name", d.name)))
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>Flight report: {title}</title>"
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
        "padding:2px 8px}</style></head><body>"
        f"<h1>Flight report: {title}</h1>"
        "<h2>Timelines</h2><table>" + "".join(rows) + "</table>"
        "<h2>Full report</h2><pre>" + _html.escape(md) + "</pre>"
        "</body></html>\n"
    )


def write_report(
    run_dir: Union[str, Path], html: bool = False
) -> Path:
    """Generate and atomically write ``report.md`` (and optionally
    ``report.html``) into ``run_dir``; returns the Markdown path."""
    d = Path(run_dir)
    md_path = atomic_write_text(d / "report.md", generate_report(d))
    if html:
        atomic_write_text(d / "report.html", generate_html_report(d))
    return md_path


#: Section headers every well-formed report must contain, in order.
_REQUIRED_SECTIONS = (
    "# Flight report:",
    "## Run manifest",
    "## Telemetry timelines",
    "## Loss-event raster",
    "## Per-flow throughput",
    "## Metrics",
    "## Phase spans",
)


def validate_report(text: str) -> None:
    """Raise :class:`ReportError` unless ``text`` is a well-formed report
    containing every required section in order."""
    pos = 0
    for section in _REQUIRED_SECTIONS:
        found = text.find(section, pos)
        if found < 0:
            raise ReportError(f"report missing section {section!r}")
        pos = found + len(section)
