"""Observability: metrics, conservation invariants, event-loop profiling.

The paper's headline results (Figures 2-4 loss-interval PDFs, Figure 7
fairness) rest on per-packet drop accounting being exact: one miscounted
drop silently skews the burstiness PDFs.  This package turns the passive
counters the simulator already keeps into an active regression fence:

``MetricsRegistry``
    Named counters / gauges / histograms with JSON export; simulator
    components register themselves via their ``register_metrics`` hooks.
``InvariantChecker``
    Verifies packet-conservation identities per queue, link, and flow —
    ``arrived == enqueued + dropped``, ``enqueued == dequeued + occupancy``,
    ``sent == arrived-at-sink + dropped + in-flight`` — at configurable
    sim-time intervals and at teardown, raising a structured
    :class:`InvariantViolation` carrying a diagnostic snapshot.
``EventLoopProfile``
    Event-loop statistics (events/sec, heap size, cancelled-event ratio,
    per-callback-type timing) captured by ``Simulator.profile()``.

:mod:`repro.obs.runtime` wires all three into experiment drivers and the
``repro`` CLI (``--metrics-out`` / ``--check-invariants``).
"""

from repro.obs.invariants import (
    FlowBinding,
    InvariantChecker,
    InvariantViolation,
    check_link,
    check_queue,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import EventLoopProfile
from repro.obs.runtime import RunObservation, observe_run, observation_config

__all__ = [
    "Counter",
    "EventLoopProfile",
    "FlowBinding",
    "Gauge",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "RunObservation",
    "check_link",
    "check_queue",
    "observation_config",
    "observe_run",
]
