"""Observability: metrics, conservation invariants, event-loop profiling.

The paper's headline results (Figures 2-4 loss-interval PDFs, Figure 7
fairness) rest on per-packet drop accounting being exact: one miscounted
drop silently skews the burstiness PDFs.  This package turns the passive
counters the simulator already keeps into an active regression fence:

``MetricsRegistry``
    Named counters / gauges / histograms with JSON export; simulator
    components register themselves via their ``register_metrics`` hooks.
``InvariantChecker``
    Verifies packet-conservation identities per queue, link, and flow —
    ``arrived == enqueued + dropped``, ``enqueued == dequeued + occupancy``,
    ``sent == arrived-at-sink + dropped + in-flight`` — at configurable
    sim-time intervals and at teardown, raising a structured
    :class:`InvariantViolation` carrying a diagnostic snapshot.
``EventLoopProfile``
    Event-loop statistics (events/sec, heap size, cancelled-event ratio,
    per-callback-type timing) captured by ``Simulator.profile()``.
``FlightRecorder`` / ``TimeSeries``
    Flight-recorder telemetry: fixed-stride samplers off the simulator
    clock into bounded (stride-decimating) time series — per-flow cwnd /
    srtt / pacing rate, queue depth, link state — plus the loss-burst
    raster (:mod:`repro.obs.telemetry`).
``SpanTracer``
    Nested phase/span tracing with point events (fault injections land
    here), exported as JSON-lines (:mod:`repro.obs.spans`).
``generate_report`` / ``write_report``
    Deterministic Markdown/HTML run reports rendered from a telemetry
    run directory — ``python -m repro report <run-dir>``
    (:mod:`repro.obs.report`).

``EventBus`` / ``RunLog``
    Fleet event stream: one append-only, schema-versioned JSON-lines
    feed per campaign/zoo state directory, with torn-tail-tolerant
    tailing and structured ``--log-json`` logging (:mod:`repro.obs.bus`).
``FleetAggregator`` / ``FleetSnapshot``
    Streaming aggregation of a state directory (ledger + heartbeats +
    bus) into a live fleet snapshot — what ``python -m repro top``
    renders and ``/snapshot.json`` serves (:mod:`repro.obs.aggregate`).
``ObsServer`` / ``MetricsRegistry.to_prometheus``
    Opt-in Prometheus text exposition over stdlib HTTP during fleet
    runs — the CLI's ``--metrics-port`` (:mod:`repro.obs.httpd`).

:mod:`repro.obs.runtime` wires everything into experiment drivers and the
``repro`` CLI (``--metrics-out`` / ``--check-invariants`` /
``--telemetry-out`` / ``--report``).
"""

from repro.obs.aggregate import FleetAggregator, FleetSnapshot, UnitHealth
from repro.obs.bus import (
    EventBus,
    RunLog,
    TailState,
    log_mode,
    open_bus,
    read_json_tolerant,
    tail_jsonl,
)
from repro.obs.httpd import ObsServer, snapshot_to_prometheus
from repro.obs.invariants import (
    FlowBinding,
    InvariantChecker,
    InvariantViolation,
    check_link,
    check_queue,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    atomic_write_text,
)
from repro.obs.profiling import EventLoopProfile
from repro.obs.report import (
    ReportError,
    generate_html_report,
    generate_report,
    sparkline,
    validate_report,
    write_report,
)
from repro.obs.runtime import (
    FlightLog,
    RunObservation,
    observation_config,
    observe_run,
    open_flight_log,
    report_enabled,
)
from repro.obs.spans import SpanTracer, maybe_tracer, span
from repro.obs.telemetry import (
    FlightRecorder,
    TimeSeries,
    loss_raster,
    telemetry_config,
)

__all__ = [
    "Counter",
    "EventBus",
    "EventLoopProfile",
    "FleetAggregator",
    "FleetSnapshot",
    "FlightLog",
    "FlightRecorder",
    "FlowBinding",
    "Gauge",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "ObsServer",
    "ReportError",
    "RunLog",
    "RunObservation",
    "SpanTracer",
    "TailState",
    "TimeSeries",
    "UnitHealth",
    "atomic_write_text",
    "check_link",
    "check_queue",
    "generate_html_report",
    "generate_report",
    "log_mode",
    "loss_raster",
    "maybe_tracer",
    "observation_config",
    "observe_run",
    "open_bus",
    "open_flight_log",
    "read_json_tolerant",
    "report_enabled",
    "snapshot_to_prometheus",
    "span",
    "sparkline",
    "tail_jsonl",
    "telemetry_config",
    "validate_report",
    "write_report",
]
