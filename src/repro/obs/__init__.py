"""Observability: metrics, conservation invariants, event-loop profiling.

The paper's headline results (Figures 2-4 loss-interval PDFs, Figure 7
fairness) rest on per-packet drop accounting being exact: one miscounted
drop silently skews the burstiness PDFs.  This package turns the passive
counters the simulator already keeps into an active regression fence:

``MetricsRegistry``
    Named counters / gauges / histograms with JSON export; simulator
    components register themselves via their ``register_metrics`` hooks.
``InvariantChecker``
    Verifies packet-conservation identities per queue, link, and flow —
    ``arrived == enqueued + dropped``, ``enqueued == dequeued + occupancy``,
    ``sent == arrived-at-sink + dropped + in-flight`` — at configurable
    sim-time intervals and at teardown, raising a structured
    :class:`InvariantViolation` carrying a diagnostic snapshot.
``EventLoopProfile``
    Event-loop statistics (events/sec, heap size, cancelled-event ratio,
    per-callback-type timing) captured by ``Simulator.profile()``.
``FlightRecorder`` / ``TimeSeries``
    Flight-recorder telemetry: fixed-stride samplers off the simulator
    clock into bounded (stride-decimating) time series — per-flow cwnd /
    srtt / pacing rate, queue depth, link state — plus the loss-burst
    raster (:mod:`repro.obs.telemetry`).
``SpanTracer``
    Nested phase/span tracing with point events (fault injections land
    here), exported as JSON-lines (:mod:`repro.obs.spans`).
``generate_report`` / ``write_report``
    Deterministic Markdown/HTML run reports rendered from a telemetry
    run directory — ``python -m repro report <run-dir>``
    (:mod:`repro.obs.report`).

:mod:`repro.obs.runtime` wires everything into experiment drivers and the
``repro`` CLI (``--metrics-out`` / ``--check-invariants`` /
``--telemetry-out`` / ``--report``).
"""

from repro.obs.invariants import (
    FlowBinding,
    InvariantChecker,
    InvariantViolation,
    check_link,
    check_queue,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    atomic_write_text,
)
from repro.obs.profiling import EventLoopProfile
from repro.obs.report import (
    ReportError,
    generate_html_report,
    generate_report,
    sparkline,
    validate_report,
    write_report,
)
from repro.obs.runtime import (
    FlightLog,
    RunObservation,
    observation_config,
    observe_run,
    open_flight_log,
    report_enabled,
)
from repro.obs.spans import SpanTracer, maybe_tracer, span
from repro.obs.telemetry import (
    FlightRecorder,
    TimeSeries,
    loss_raster,
    telemetry_config,
)

__all__ = [
    "Counter",
    "EventLoopProfile",
    "FlightLog",
    "FlightRecorder",
    "FlowBinding",
    "Gauge",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "ReportError",
    "RunObservation",
    "SpanTracer",
    "TimeSeries",
    "atomic_write_text",
    "check_link",
    "check_queue",
    "generate_html_report",
    "generate_report",
    "loss_raster",
    "maybe_tracer",
    "observation_config",
    "observe_run",
    "open_flight_log",
    "report_enabled",
    "span",
    "sparkline",
    "telemetry_config",
    "validate_report",
    "write_report",
]
