"""Packet-conservation invariants over queues, links, and flows.

Every queue already counts arrivals, enqueues, dequeues, and drops; every
link counts offered and forwarded packets; every TCP sender/sink pair
counts sent, arrived, and delivered packets.  This module *checks* the
identities those counters must satisfy:

queue
    ``arrived == enqueued + dropped`` and
    ``enqueued == dequeued + dropped_head + occupancy`` (dequeue-time
    drops — CoDel sojourn drops, FQ-CoDel evictions — are counted in
    ``dropped_head``; push-time refusals in ``dropped``).
link
    ``offered == forwarded + transmitting + queued + dropped_total`` (the
    transmitter holds at most one packet; ``dropped_total`` folds both
    drop sites together).
flow
    ``0 <= in-flight``, ``delivered <= unique sends``, and the byte/packet
    conservation ``arrived-at-sink + dropped <= sent`` (with equality once
    the event loop has drained, when the flow's drop traces are complete).

Violations raise :class:`InvariantViolation`, which carries the failed
identity and a full diagnostic snapshot of the subject's counters, so a
broken accounting path is caught at the first check after it diverges —
not as a silently skewed Figure 2 PDF.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator
    from repro.sim.link import Link
    from repro.sim.queues import Queue

__all__ = [
    "InvariantViolation",
    "check_queue",
    "check_link",
    "FlowBinding",
    "InvariantChecker",
]


class InvariantViolation(RuntimeError):
    """A conservation identity failed.

    Attributes
    ----------
    invariant:
        Short name of the failed identity (e.g. ``"queue.arrival"``).
    subject:
        Name of the component that failed (queue/link/flow name).
    detail:
        Human-readable statement of the identity with both sides evaluated.
    snapshot:
        Counter values of the subject at check time (JSON-serializable).
    time:
        Simulation time of the check.
    """

    def __init__(
        self,
        invariant: str,
        subject: str,
        detail: str,
        snapshot: dict,
        time: float = 0.0,
    ):
        self.invariant = invariant
        self.subject = subject
        self.detail = detail
        self.snapshot = snapshot
        self.time = time
        super().__init__(
            f"[t={time:.6f}] {invariant} violated for {subject!r}: {detail}; "
            f"snapshot={snapshot}"
        )


def _queue_snapshot(q: "Queue") -> dict:
    return {
        "name": q.name,
        "arrived": q.arrived,
        "enqueued": q.enqueued,
        "dequeued": q.dequeued,
        "dropped": q.dropped,
        "dropped_head": q.dropped_head,
        "marked": q.marked,
        "occupancy": len(q),
        "bytes": q.bytes,
        "capacity": q.capacity,
    }


def check_queue(q: "Queue", now: float = 0.0) -> dict:
    """Verify the queue conservation identities; returns the snapshot."""
    snap = _queue_snapshot(q)
    if q.arrived != q.enqueued + q.dropped:
        raise InvariantViolation(
            "queue.arrival",
            q.name,
            f"arrived ({q.arrived}) != enqueued ({q.enqueued}) + dropped ({q.dropped})",
            snap,
            now,
        )
    if q.enqueued != q.dequeued + q.dropped_head + len(q):
        raise InvariantViolation(
            "queue.occupancy",
            q.name,
            f"enqueued ({q.enqueued}) != dequeued ({q.dequeued}) + "
            f"dropped_head ({q.dropped_head}) + occupancy ({len(q)})",
            snap,
            now,
        )
    if len(q) > q.capacity:
        raise InvariantViolation(
            "queue.capacity",
            q.name,
            f"occupancy ({len(q)}) exceeds capacity ({q.capacity})",
            snap,
            now,
        )
    return snap


def _link_snapshot(link: "Link") -> dict:
    return {
        "name": link.name,
        "offered": link.packets_offered,
        "forwarded": link.packets_forwarded,
        "bytes_forwarded": link.bytes_forwarded,
        "busy": link.busy,
        "busy_time": link.busy_time,
        "queued": len(link.queue),
        "queue_dropped": link.queue.dropped_total,
        "dropped_down": link.packets_dropped_down,
        "is_up": link.is_up,
    }


def check_link(link: "Link", now: float = 0.0) -> dict:
    """Verify link-level conservation; returns the snapshot.

    Every packet offered to the link is exactly one of: forwarded, in the
    transmitter (at most one, iff ``busy``), waiting in the queue, dropped
    by the queue, or dropped because the link was down (injected faults —
    ``packets_dropped_down`` is how the checker is told about them, so the
    identity holds *modulo* injected drops).
    """
    snap = _link_snapshot(link)
    transmitting = 1 if link.busy else 0
    accounted = (
        link.packets_forwarded + transmitting + len(link.queue)
        + link.queue.dropped_total + link.packets_dropped_down
    )
    if link.packets_offered != accounted:
        raise InvariantViolation(
            "link.conservation",
            link.name,
            f"offered ({link.packets_offered}) != forwarded ({link.packets_forwarded}) "
            f"+ transmitting ({transmitting}) + queued ({len(link.queue)}) "
            f"+ dropped ({link.queue.dropped_total}) "
            f"+ dropped_down ({link.packets_dropped_down})",
            snap,
            now,
        )
    return snap


class FlowBinding:
    """A sender/sink pair plus the drop traces covering its data path.

    ``drop_traces`` should list every :class:`~repro.sim.trace.DropTrace`
    attached to a queue the flow's *data* packets can traverse; set
    ``traces_complete`` when they cover all loss points, which upgrades the
    teardown check from ``arrived + dropped <= sent`` to strict equality
    once the event loop has drained.
    """

    def __init__(
        self,
        sender,
        sink=None,
        drop_traces: Iterable = (),
        traces_complete: bool = False,
        name: Optional[str] = None,
    ):
        self.sender = sender
        self.sink = sink
        self.drop_traces = tuple(drop_traces)
        self.traces_complete = bool(traces_complete)
        self.name = name if name is not None else f"flow{sender.flow_id}"

    # -- helpers --------------------------------------------------------
    def dropped_packets(self) -> int:
        """Recorded true drops (ECN marks excluded) for this flow."""
        fid = self.sender.flow_id
        total = 0
        for tr in self.drop_traces:
            fids = tr.flow_ids
            if len(fids) == 0:
                continue
            total += int(np.sum((fids == fid) & ~tr.marked))
        return total

    def snapshot(self) -> dict:
        """Counter values for diagnostics (JSON-serializable)."""
        snd = self.sender
        snap = {
            "flow_id": snd.flow_id,
            "packets_sent": snd.stats.packets_sent,
            "bytes_sent": snd.stats.bytes_sent,
            "retransmissions": snd.stats.retransmissions,
            "next_seq": snd.next_seq,
            "highest_acked": snd.highest_acked,
            "inflight": snd.inflight,
            "dropped": self.dropped_packets(),
        }
        if self.sink is not None:
            snap["sink_packets_arrived"] = getattr(self.sink, "packets_arrived", None)
            snap["sink_packets_received"] = self.sink.stats.packets_received
            snap["sink_next_expected"] = getattr(self.sink, "next_expected", None)
        return snap

    def check(self, now: float = 0.0, idle: bool = False) -> dict:
        """Verify the flow conservation identities; returns the snapshot."""
        snd = self.sender
        snap = self.snapshot()

        def fail(invariant: str, detail: str) -> None:
            raise InvariantViolation(invariant, self.name, detail, snap, now)

        if snd.inflight < 0:
            fail("flow.inflight", f"negative in-flight count ({snd.inflight})")
        if snd.highest_acked > snd.next_seq:
            fail(
                "flow.sequencing",
                f"highest_acked ({snd.highest_acked}) > next_seq ({snd.next_seq})",
            )
        if snd.stats.retransmissions > snd.stats.packets_sent:
            fail(
                "flow.retransmissions",
                f"retransmissions ({snd.stats.retransmissions}) exceed "
                f"packets_sent ({snd.stats.packets_sent})",
            )
        if snd.stats.bytes_sent != snd.stats.packets_sent * snd.packet_size:
            fail(
                "flow.bytes",
                f"bytes_sent ({snd.stats.bytes_sent}) != packets_sent "
                f"({snd.stats.packets_sent}) * packet_size ({snd.packet_size})",
            )

        if self.sink is not None:
            unique_sent = snd.stats.packets_sent - snd.stats.retransmissions
            delivered = self.sink.stats.packets_received
            if delivered > unique_sent:
                fail(
                    "flow.delivery",
                    f"unique deliveries ({delivered}) exceed unique sends ({unique_sent})",
                )
            arrived = getattr(self.sink, "packets_arrived", None)
            if arrived is not None:
                if delivered > arrived:
                    fail(
                        "flow.sink",
                        f"deduped deliveries ({delivered}) exceed raw arrivals ({arrived})",
                    )
                dropped = self.dropped_packets()
                if arrived + dropped > snd.stats.packets_sent:
                    fail(
                        "flow.conservation",
                        f"arrived ({arrived}) + dropped ({dropped}) > "
                        f"sent ({snd.stats.packets_sent})",
                    )
                if idle and self.traces_complete and arrived + dropped != snd.stats.packets_sent:
                    fail(
                        "flow.conservation",
                        f"with the event loop drained, arrived ({arrived}) + dropped "
                        f"({dropped}) != sent ({snd.stats.packets_sent})",
                    )
        return snap


#: Occupancy histogram resolution: fractions of queue capacity.
_OCCUPANCY_EDGES = (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0 + 1e-9)


class InvariantChecker:
    """Runs conservation checks over registered queues, links, and flows.

    Checks run on demand (:meth:`check_all`), periodically in sim time
    (:meth:`attach`), and at teardown (:meth:`final_check`).  With a
    :class:`~repro.obs.metrics.MetricsRegistry` attached, each sweep also
    samples queue occupancy into a histogram and counts checks/violations.
    """

    def __init__(self, registry: Optional["MetricsRegistry"] = None):
        self.registry = registry
        self.queues: list["Queue"] = []
        self.links: list["Link"] = []
        self.flows: list[FlowBinding] = []
        self.checks_run = 0
        self.violations = 0
        self.last_check_time: Optional[float] = None
        if registry is not None:
            registry.gauge("invariants.checks_run", fn=lambda: self.checks_run)
            registry.gauge("invariants.violations", fn=lambda: self.violations)

    # -- registration ---------------------------------------------------
    def add_queue(self, q: "Queue") -> None:
        """Track a queue (idempotent)."""
        if q not in self.queues:
            self.queues.append(q)

    def add_link(self, link: "Link") -> None:
        """Track a link and its attached queue (idempotent)."""
        if link not in self.links:
            self.links.append(link)
        self.add_queue(link.queue)

    def add_flow(
        self,
        sender,
        sink=None,
        drop_traces: Iterable = (),
        traces_complete: bool = False,
        name: Optional[str] = None,
    ) -> FlowBinding:
        """Track a sender (optionally bound to its sink and drop traces)."""
        binding = FlowBinding(
            sender, sink=sink, drop_traces=drop_traces,
            traces_complete=traces_complete, name=name,
        )
        self.flows.append(binding)
        return binding

    # -- checking -------------------------------------------------------
    def check_all(self, now: float = 0.0, idle: bool = False) -> int:
        """Run every registered check; returns the number of identities
        verified.  Raises :class:`InvariantViolation` on the first failure.
        """
        verified = 0
        try:
            for q in self.queues:
                check_queue(q, now)
                verified += 1
                self._sample_occupancy(q)
            for link in self.links:
                check_link(link, now)
                verified += 1
            for binding in self.flows:
                binding.check(now, idle=idle)
                verified += 1
        except InvariantViolation:
            self.violations += 1
            raise
        finally:
            self.checks_run += 1
            self.last_check_time = now
        return verified

    def _sample_occupancy(self, q: "Queue") -> None:
        if self.registry is None or q.capacity <= 0:
            return
        h = self.registry.histogram(
            f"queue.{q.name}.occupancy_fraction", _OCCUPANCY_EDGES
        )
        h.observe(len(q) / q.capacity)

    # -- scheduling -----------------------------------------------------
    def attach(self, sim: "Simulator", interval: float) -> None:
        """Check every ``interval`` sim-seconds while the sim has work.

        The periodic event (:meth:`Simulator.schedule_every`) re-arms
        itself only while other events are pending, so it never keeps an
        otherwise-finished run alive.
        """
        if interval <= 0:
            raise ValueError(f"check interval must be positive, got {interval}")
        sim.schedule_every(interval, self._periodic, sim)

    def _periodic(self, sim: "Simulator") -> None:
        self.check_all(now=sim.now, idle=False)

    def final_check(self, sim: Optional["Simulator"] = None) -> int:
        """Teardown sweep; flow equality applies if the loop has drained."""
        now = sim.now if sim is not None else 0.0
        idle = sim is not None and sim.pending == 0
        return self.check_all(now=now, idle=idle)

    # -- export ---------------------------------------------------------
    def snapshots(self) -> dict:
        """Structured snapshot of everything tracked (for the metrics JSON)."""
        return {
            "queues": {q.name: _queue_snapshot(q) for q in self.queues},
            "links": {l.name: _link_snapshot(l) for l in self.links},
            "flows": {b.name: b.snapshot() for b in self.flows},
            "checks_run": self.checks_run,
            "violations": self.violations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InvariantChecker {len(self.queues)}q/{len(self.links)}l/"
            f"{len(self.flows)}f checks={self.checks_run}>"
        )
