"""Run-level observability wiring for experiment drivers and the CLI.

:func:`observe_run` is the one-line hook experiment drivers call after
building their scenario: it resolves the observability configuration
(explicit arguments > environment), attaches a
:class:`~repro.obs.metrics.MetricsRegistry` to the simulator / links /
queues / flows, arms periodic conservation checks, and hands back a
:class:`RunObservation` whose ``profiled()`` context wraps the
``sim.run`` call and whose ``finalize()`` performs the teardown invariant
sweep and writes the metrics JSON next to the run's results.

Environment variables (set by ``repro.cli``'s ``--metrics-out`` /
``--check-invariants`` flags, or directly):

``REPRO_METRICS_OUT``
    Path to write the metrics JSON to (empty/unset: no file).
``REPRO_CHECK_INVARIANTS``
    Truthy ("1"/"true"/"yes"/"on") to verify conservation invariants
    periodically and at teardown.
``REPRO_CHECK_INTERVAL``
    Sim-seconds between periodic sweeps (default 1.0).
``REPRO_FAULTS``
    Integer seed arming a sampled :class:`repro.faults.FaultPlan` on the
    run's bottleneck links (reproducible link flaps; the CLI's
    ``--inject-faults``).  Injected drops are accounted separately
    (``packets_dropped_down``, ``faults.injected.*`` counters), so the
    conservation invariants hold with injection armed.

When no knob is on, :func:`observe_run` returns a disabled observation
whose every method is a cheap no-op, so instrumented drivers cost nothing
by default.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.invariants import InvariantChecker
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.topology import Dumbbell

__all__ = ["observation_config", "observe_run", "RunObservation"]

ENV_METRICS_OUT = "REPRO_METRICS_OUT"
ENV_CHECK_INVARIANTS = "REPRO_CHECK_INVARIANTS"
ENV_CHECK_INTERVAL = "REPRO_CHECK_INTERVAL"

#: Default sim-time spacing of periodic conservation sweeps (seconds).
DEFAULT_CHECK_INTERVAL = 1.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def observation_config() -> tuple[Optional[str], bool, float]:
    """Resolve ``(metrics_out, check_invariants, check_interval)`` from the
    environment (the CLI flags set these variables)."""
    out = os.environ.get(ENV_METRICS_OUT) or None
    check = os.environ.get(ENV_CHECK_INVARIANTS, "").strip().lower() in _TRUTHY
    interval = float(os.environ.get(ENV_CHECK_INTERVAL, DEFAULT_CHECK_INTERVAL))
    return out, check, interval


class RunObservation:
    """Handle tying one experiment run to its metrics/invariants/profile.

    Disabled instances (``enabled=False``) are inert: ``profiled()`` is a
    null context and ``finalize()`` returns ``None`` — drivers call both
    unconditionally.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "run",
        registry: Optional[MetricsRegistry] = None,
        checker: Optional[InvariantChecker] = None,
        metrics_path: Optional[Union[str, Path]] = None,
    ):
        self.sim = sim
        self.name = name
        self.registry = registry
        self.checker = checker
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.enabled = registry is not None
        self.profile_stats: Optional[dict] = None
        self.fault_plan = None  # armed by observe_run when $REPRO_FAULTS is set
        self._duration_links: list = []

    # -- wiring ---------------------------------------------------------
    def watch_link(self, link) -> None:
        """Track a link's metrics and conservation (no-op when disabled)."""
        if not self.enabled:
            return
        assert self.registry is not None
        link.attach_metrics(self.registry)
        self._duration_links.append(link)
        if self.checker is not None:
            self.checker.add_link(link)

    def watch_flow(self, sender, sink=None, drop_traces: Iterable = (),
                   traces_complete: bool = False) -> None:
        """Track a TCP flow's metrics and conservation (no-op when disabled)."""
        if not self.enabled:
            return
        assert self.registry is not None
        sender.attach_metrics(self.registry)
        if self.checker is not None:
            self.checker.add_flow(
                sender, sink=sink, drop_traces=drop_traces,
                traces_complete=traces_complete,
            )

    # -- execution ------------------------------------------------------
    def profiled(self):
        """Context manager for the run's main ``sim.run`` call: captures
        event-loop statistics into the metrics export when enabled."""
        if not self.enabled:
            return contextlib.nullcontext()
        return self._profiled_impl()

    @contextlib.contextmanager
    def _profiled_impl(self):
        prof = None
        try:
            with self.sim.profile() as prof:
                yield prof
        finally:
            # Snapshot only after sim.profile() has closed the capture
            # window, so wall-time-derived stats (events/sec) are final.
            if prof is not None:
                self.profile_stats = prof.as_dict()

    def finalize(self, duration: Optional[float] = None) -> Optional[dict]:
        """Teardown: final invariant sweep, utilization gauges, JSON write.

        Raises :class:`~repro.obs.InvariantViolation` if a conservation
        identity fails.  Returns the exported metrics dict (``None`` when
        disabled).
        """
        if not self.enabled:
            return None
        assert self.registry is not None
        if duration is not None and duration > 0:
            for link in self._duration_links:
                self.registry.gauge(f"link.{link.name}.utilization").set(
                    link.utilization(duration)
                )
        if self.checker is not None:
            self.checker.final_check(self.sim)
            self.registry.sections["invariants"] = self.checker.snapshots()
        if self.profile_stats is not None:
            self.registry.sections["event_loop"] = self.profile_stats
        if self.fault_plan is not None:
            self.registry.sections["faults"] = {
                "plan": self.fault_plan.describe(),
                "injected": dict(self.fault_plan.injected),
            }
        data = self.registry.as_dict()
        if self.metrics_path is not None:
            self.registry.write_json(self.metrics_path)
        return data


def observe_run(
    sim: "Simulator",
    db: Optional["Dumbbell"] = None,
    name: str = "run",
    flows: Iterable[tuple] = (),
    metrics_out: Optional[Union[str, Path]] = None,
    check_invariants: Optional[bool] = None,
    check_interval: Optional[float] = None,
) -> RunObservation:
    """Wire observability into one experiment run.

    Call after the scenario is fully built (topology, flows) and before
    ``sim.run``.  ``flows`` is an iterable of ``(sender, sink)`` pairs;
    with a dumbbell they are bound to the forward bottleneck drop trace,
    making their teardown conservation check exact.  Arguments left at
    ``None`` fall back to the environment (see module docstring); when
    everything is off, the returned observation is disabled and free.
    """
    env_out, env_check, env_interval = observation_config()
    if metrics_out is None:
        metrics_out = env_out
    if check_invariants is None:
        check_invariants = env_check
    if check_interval is None:
        check_interval = env_interval

    from repro.faults.plan import FaultPlan, fault_seed_from_env

    fault_seed = fault_seed_from_env()
    fault_plan = None
    if fault_seed is not None and db is not None:
        # Arm reproducible link flaps on the bottleneck pair.  This works
        # with or without the metrics/invariant layer: injection is a
        # scenario input, observability an optional lens on it.
        fault_plan = FaultPlan.sample_sim(fault_seed)
        fault_plan.arm_links(sim, (db.bottleneck_fwd, db.bottleneck_rev))

    if not metrics_out and not check_invariants:
        obs = RunObservation(sim, name=name)
        obs.fault_plan = fault_plan
        return obs

    registry = MetricsRegistry(name)
    if fault_plan is not None:
        fault_plan.attach_metrics(registry)
    sim.attach_metrics(registry)
    checker = InvariantChecker(registry) if check_invariants else None
    obs = RunObservation(
        sim, name=name, registry=registry, checker=checker, metrics_path=metrics_out
    )
    obs.fault_plan = fault_plan

    if db is not None:
        obs.watch_link(db.bottleneck_fwd)
        obs.watch_link(db.bottleneck_rev)
        if checker is not None:
            for pair in db.pairs:
                for link in pair.links:
                    checker.add_link(link)
        for sender, sink in flows:
            obs.watch_flow(
                sender, sink=sink,
                drop_traces=(db.drop_trace,),
                # The forward bottleneck is the only finite buffer on the
                # data path, so its trace covers every possible data drop.
                traces_complete=True,
            )
    else:
        for sender, sink in flows:
            obs.watch_flow(sender, sink=sink)

    if checker is not None and check_interval and check_interval > 0:
        checker.attach(sim, check_interval)
    return obs
