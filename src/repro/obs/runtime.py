"""Run-level observability wiring for experiment drivers and the CLI.

:func:`observe_run` is the one-line hook experiment drivers call after
building their scenario: it resolves the observability configuration
(explicit arguments > environment), attaches a
:class:`~repro.obs.metrics.MetricsRegistry` to the simulator / links /
queues / flows, arms periodic conservation checks, optionally arms the
:class:`~repro.obs.telemetry.FlightRecorder` samplers and a
:class:`~repro.obs.spans.SpanTracer`, and hands back a
:class:`RunObservation` whose ``profiled()`` context wraps the
``sim.run`` call and whose ``finalize()`` performs the teardown invariant
sweep and writes the metrics JSON — and, when telemetry is armed, the
full flight record (``manifest.json`` / ``telemetry.json`` /
``spans.jsonl`` / ``metrics.json``) into the run directory, plus
``report.md`` when auto-reporting is on.

Drivers with no single simulator (the fig8 grid, Internet campaigns) use
:func:`open_flight_log` instead: a parent-side :class:`FlightLog` that
carries the manifest and span tracer and writes the same run-directory
layout at the end.

Environment variables (set by ``repro.cli``'s flags, or directly):

``REPRO_METRICS_OUT``
    Path to write the metrics JSON to (empty/unset: no file).
``REPRO_CHECK_INVARIANTS``
    Truthy ("1"/"true"/"yes"/"on") to verify conservation invariants
    periodically and at teardown.
``REPRO_CHECK_INTERVAL``
    Sim-seconds between periodic sweeps (default 1.0).
``REPRO_FAULTS``
    Integer seed arming a sampled :class:`repro.faults.FaultPlan` on the
    run's bottleneck links (reproducible link flaps; the CLI's
    ``--inject-faults``).  Injected drops are accounted separately
    (``packets_dropped_down``, ``faults.injected.*`` counters), so the
    conservation invariants hold with injection armed.
``REPRO_TELEMETRY_OUT`` / ``REPRO_TELEMETRY`` /
``REPRO_TELEMETRY_STRIDE`` / ``REPRO_TELEMETRY_SAMPLES``
    Flight-recorder knobs — see :mod:`repro.obs.telemetry`.  The CLI's
    ``--telemetry-out`` sets the first.
``REPRO_REPORT``
    Truthy to auto-render ``report.md`` into the telemetry run directory
    at finalize (the CLI's ``--report``).

When no knob is on, :func:`observe_run` returns a disabled observation
whose every method is a cheap no-op, so instrumented drivers cost nothing
by default (bound enforced by ``benchmarks/test_perf_micro.py``).
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.invariants import InvariantChecker
from repro.obs.metrics import MetricsRegistry, atomic_write_text
from repro.obs.spans import SpanTracer
from repro.obs.telemetry import FlightRecorder, telemetry_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.topology import Dumbbell

__all__ = [
    "observation_config",
    "observe_run",
    "RunObservation",
    "FlightLog",
    "open_flight_log",
    "report_enabled",
    "ENV_REPORT",
]

ENV_METRICS_OUT = "REPRO_METRICS_OUT"
ENV_CHECK_INVARIANTS = "REPRO_CHECK_INVARIANTS"
ENV_CHECK_INTERVAL = "REPRO_CHECK_INTERVAL"
ENV_REPORT = "REPRO_REPORT"

#: Default sim-time spacing of periodic conservation sweeps (seconds).
DEFAULT_CHECK_INTERVAL = 1.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: REPRO_* knobs snapshotted into run manifests.  Path-valued knobs
#: (REPRO_*_OUT, REPRO_CHECKPOINT_DIR) are deliberately excluded: the
#: report must be byte-identical for the same seed regardless of where
#: the artifacts land.
_MANIFEST_KNOBS = (
    "REPRO_SCALE",
    "REPRO_FAULTS",
    "REPRO_CHECK_INVARIANTS",
    "REPRO_CHECK_INTERVAL",
    "REPRO_TELEMETRY_STRIDE",
    "REPRO_TELEMETRY_SAMPLES",
)


def observation_config() -> tuple[Optional[str], bool, float]:
    """Resolve ``(metrics_out, check_invariants, check_interval)`` from the
    environment (the CLI flags set these variables)."""
    out = os.environ.get(ENV_METRICS_OUT) or None
    check = os.environ.get(ENV_CHECK_INVARIANTS, "").strip().lower() in _TRUTHY
    interval = float(os.environ.get(ENV_CHECK_INTERVAL, DEFAULT_CHECK_INTERVAL))
    return out, check, interval


def report_enabled() -> bool:
    """True when ``$REPRO_REPORT`` asks for auto-rendered run reports."""
    return os.environ.get(ENV_REPORT, "").strip().lower() in _TRUTHY


def _knob_snapshot() -> dict[str, str]:
    """The manifest's view of the non-path REPRO_* environment knobs."""
    return {k: os.environ[k] for k in _MANIFEST_KNOBS if os.environ.get(k)}


def _write_run_dir(
    run_dir: Path,
    manifest: dict,
    telemetry: Optional[dict],
    tracer: Optional[SpanTracer],
    registry: Optional[MetricsRegistry],
) -> Path:
    """Write the flight-record artifacts (each one atomically)."""
    atomic_write_text(
        run_dir / "manifest.json",
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )
    if telemetry is not None:
        atomic_write_text(
            run_dir / "telemetry.json",
            json.dumps(telemetry, indent=2, sort_keys=True) + "\n",
        )
    if tracer is not None:
        tracer.write_jsonl(run_dir / "spans.jsonl")
    if registry is not None:
        registry.write_json(run_dir / "metrics.json")
    if report_enabled():
        from repro.obs.report import write_report

        write_report(run_dir)
    return run_dir


class RunObservation:
    """Handle tying one experiment run to its metrics/invariants/profile
    and (when telemetry is armed) its flight record.

    Disabled instances (``enabled=False``) are inert: ``profiled()`` is a
    null context and ``finalize()`` returns ``None`` — drivers call both
    unconditionally.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "run",
        registry: Optional[MetricsRegistry] = None,
        checker: Optional[InvariantChecker] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        recorder: Optional[FlightRecorder] = None,
        tracer: Optional[SpanTracer] = None,
        run_dir: Optional[Union[str, Path]] = None,
        manifest: Optional[dict] = None,
    ):
        self.sim = sim
        self.name = name
        self.registry = registry
        self.checker = checker
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.enabled = registry is not None
        self.profile_stats: Optional[dict] = None
        self.fault_plan = None  # armed by observe_run when $REPRO_FAULTS is set
        self._duration_links: list = []
        self.recorder = recorder
        self.tracer = tracer
        self.run_dir = Path(run_dir) if run_dir else None
        self.manifest = dict(manifest or {})
        self._flows: list[tuple] = []
        self.db: Optional["Dumbbell"] = None  # set by observe_run

    # -- wiring ---------------------------------------------------------
    def watch_link(self, link) -> None:
        """Track a link's metrics and conservation (no-op when disabled)."""
        if not self.enabled:
            return
        assert self.registry is not None
        link.attach_metrics(self.registry)
        self._duration_links.append(link)
        if self.checker is not None:
            self.checker.add_link(link)
        if self.recorder is not None:
            self.recorder.watch_link(link)
            self.recorder.watch_queue(link.queue)

    def watch_flow(self, sender, sink=None, drop_traces: Iterable = (),
                   traces_complete: bool = False) -> None:
        """Track a TCP flow's metrics and conservation (no-op when disabled)."""
        if not self.enabled:
            return
        assert self.registry is not None
        sender.attach_metrics(self.registry)
        self._flows.append((sender, sink))
        if self.checker is not None:
            self.checker.add_flow(
                sender, sink=sink, drop_traces=drop_traces,
                traces_complete=traces_complete,
            )
        if self.recorder is not None:
            self.recorder.watch_flow(sender)

    def span(self, name: str, **attrs):
        """A tracer span when tracing is armed, else a null context."""
        if self.tracer is None:
            return contextlib.nullcontext()
        return self.tracer.span(name, **attrs)

    # -- execution ------------------------------------------------------
    def profiled(self):
        """Context manager for the run's main ``sim.run`` call: captures
        event-loop statistics into the metrics export when enabled."""
        if not self.enabled:
            return contextlib.nullcontext()
        return self._profiled_impl()

    @contextlib.contextmanager
    def _profiled_impl(self):
        if self.recorder is not None:
            self.recorder.start()
        prof = None
        try:
            with self.sim.profile() as prof:
                yield prof
        finally:
            # Snapshot only after sim.profile() has closed the capture
            # window, so wall-time-derived stats (events/sec) are final.
            if prof is not None:
                self.profile_stats = prof.as_dict()

    def finalize(
        self, duration: Optional[float] = None, db: Optional["Dumbbell"] = None
    ) -> Optional[dict]:
        """Teardown: final invariant sweep, utilization gauges, JSON write,
        and (telemetry armed) the flight-record run directory.

        Raises :class:`~repro.obs.InvariantViolation` if a conservation
        identity fails.  Returns the exported metrics dict (``None`` when
        disabled).
        """
        if not self.enabled:
            return None
        assert self.registry is not None
        if duration is not None and duration > 0:
            for link in self._duration_links:
                self.registry.gauge(f"link.{link.name}.utilization").set(
                    link.utilization(duration)
                )
        if self.checker is not None:
            self.checker.final_check(self.sim)
            self.registry.sections["invariants"] = self.checker.snapshots()
        if self.profile_stats is not None:
            self.registry.sections["event_loop"] = self.profile_stats
        if self.fault_plan is not None:
            self.registry.sections["faults"] = {
                "plan": self.fault_plan.describe(),
                "injected": dict(self.fault_plan.injected),
            }
        if self.recorder is not None:
            self.recorder.stop()
            if db is None:
                db = self.db
            trace = db.drop_trace if db is not None else None
            if trace is not None and duration is not None and duration > 0:
                self.recorder.set_raster(trace.drop_times(), duration)
            for sender, sink in self._flows:
                self.recorder.add_flow_summary(sender, sink=sink, duration=duration)
        data = self.registry.as_dict()
        if self.metrics_path is not None:
            self.registry.write_json(self.metrics_path)
        if self.run_dir is not None:
            manifest = {
                "name": self.name,
                "duration": duration,
                "env": _knob_snapshot(),
                **self.manifest,
            }
            if self.fault_plan is not None:
                manifest["fault_plan"] = self.fault_plan.describe()
            _write_run_dir(
                self.run_dir,
                manifest,
                self.recorder.as_dict() if self.recorder is not None else None,
                self.tracer,
                self.registry,
            )
        return data


class FlightLog:
    """Parent-side flight record for drivers without a single simulator.

    The fig8 grid and Internet campaigns run many short simulations in a
    process pool; no one :class:`Simulator` clock spans the whole driver.
    A ``FlightLog`` carries the run manifest and a wall-clock-only
    :class:`SpanTracer` (one span per cell / pool item, fault events from
    workers relayed parent-side) and writes the same run-directory layout
    as :meth:`RunObservation.finalize`.

    Disabled instances (telemetry off) are inert, mirroring
    :class:`RunObservation`.
    """

    def __init__(
        self,
        name: str,
        manifest: Optional[dict] = None,
        run_dir: Optional[Union[str, Path]] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.name = name
        self.manifest = dict(manifest or {})
        self.run_dir = Path(run_dir) if run_dir else None
        self.tracer = tracer
        self.enabled = tracer is not None or self.run_dir is not None
        #: Optional telemetry payload (e.g. aggregated per-cell series)
        #: exported as ``telemetry.json`` when set.
        self.telemetry: Optional[dict] = None

    def span(self, name: str, **attrs):
        """A tracer span when tracing is armed, else a null context."""
        if self.tracer is None:
            return contextlib.nullcontext()
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point event (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    def finalize(self) -> Optional[Path]:
        """Write the run directory (``None`` when disabled or in-memory)."""
        if self.run_dir is None:
            return None
        manifest = {"name": self.name, "env": _knob_snapshot(), **self.manifest}
        return _write_run_dir(
            self.run_dir, manifest, self.telemetry, self.tracer, registry=None
        )


def open_flight_log(name: str, manifest: Optional[dict] = None) -> FlightLog:
    """Env-gated :class:`FlightLog` constructor for parent-side drivers.

    Returns a disabled (inert) log unless telemetry is armed — the same
    zero-cost contract as :func:`observe_run`'s disabled path.
    """
    cfg = telemetry_config()
    if not cfg.enabled:
        return FlightLog(name)
    return FlightLog(
        name, manifest=manifest, run_dir=cfg.out_dir, tracer=SpanTracer(name)
    )


def observe_run(
    sim: "Simulator",
    db: Optional["Dumbbell"] = None,
    name: str = "run",
    flows: Iterable[tuple] = (),
    metrics_out: Optional[Union[str, Path]] = None,
    check_invariants: Optional[bool] = None,
    check_interval: Optional[float] = None,
    tracer: Optional[SpanTracer] = None,
    manifest: Optional[dict] = None,
) -> RunObservation:
    """Wire observability into one experiment run.

    Call after the scenario is fully built (topology, flows) and before
    ``sim.run``.  ``flows`` is an iterable of ``(sender, sink)`` pairs;
    with a dumbbell they are bound to the forward bottleneck drop trace,
    making their teardown conservation check exact.  Arguments left at
    ``None`` fall back to the environment (see module docstring); when
    everything is off, the returned observation is disabled and free.

    ``tracer`` (usually from :func:`repro.obs.spans.maybe_tracer`) attaches
    phase tracing; fault injections recorded by the armed plan become span
    events on it.  ``manifest`` seeds the run manifest written alongside
    the telemetry export (drivers put seed/scale/parameters there).
    """
    env_out, env_check, env_interval = observation_config()
    if metrics_out is None:
        metrics_out = env_out
    if check_invariants is None:
        check_invariants = env_check
    if check_interval is None:
        check_interval = env_interval
    tcfg = telemetry_config()

    from repro.faults.plan import FaultPlan, fault_seed_from_env

    fault_seed = fault_seed_from_env()
    fault_plan = None
    if fault_seed is not None and db is not None:
        # Arm reproducible link flaps on the bottleneck pair.  This works
        # with or without the metrics/invariant layer: injection is a
        # scenario input, observability an optional lens on it.
        fault_plan = FaultPlan.sample_sim(fault_seed)
        fault_plan.arm_links(sim, (db.bottleneck_fwd, db.bottleneck_rev))
        if tracer is not None:
            # Every injection the plan records becomes a span event,
            # stamped with the tracer's (sim) clock at injection time.
            fault_plan.add_observer(
                lambda kind, amount: tracer.event(f"fault.{kind}", count=amount)
            )

    if not metrics_out and not check_invariants and not tcfg.enabled:
        obs = RunObservation(sim, name=name, tracer=tracer)
        obs.fault_plan = fault_plan
        return obs

    run_dir = tcfg.out_dir
    if run_dir is not None and not metrics_out:
        metrics_out = run_dir / "metrics.json"

    registry = MetricsRegistry(name)
    if fault_plan is not None:
        fault_plan.attach_metrics(registry)
    sim.attach_metrics(registry)
    checker = InvariantChecker(registry) if check_invariants else None
    recorder = (
        FlightRecorder(sim, stride=tcfg.stride, max_samples=tcfg.max_samples)
        if tcfg.enabled
        else None
    )
    obs = RunObservation(
        sim, name=name, registry=registry, checker=checker,
        metrics_path=metrics_out, recorder=recorder, tracer=tracer,
        run_dir=run_dir, manifest=manifest,
    )
    obs.fault_plan = fault_plan
    obs.db = db

    if db is not None:
        obs.watch_link(db.bottleneck_fwd)
        obs.watch_link(db.bottleneck_rev)
        if checker is not None:
            for pair in db.pairs:
                for link in pair.links:
                    checker.add_link(link)
        for sender, sink in flows:
            obs.watch_flow(
                sender, sink=sink,
                drop_traces=(db.drop_trace,),
                # The forward bottleneck is the only finite buffer on the
                # data path, so its trace covers every possible data drop.
                traces_complete=True,
            )
    else:
        for sender, sink in flows:
            obs.watch_flow(sender, sink=sink)

    if checker is not None and check_interval and check_interval > 0:
        checker.attach(sim, check_interval)
    return obs
