"""Event-loop profiling for the discrete-event engine.

``Simulator.profile()`` installs an :class:`EventLoopProfile` for the
duration of a ``with`` block; while installed, the run loop reports every
executed callback (with its wall-clock duration), every cancelled event it
discards, and the heap size, so a finished profile answers the questions
that matter for paper-scale runs: events/sec, where the time goes
per callback type, and how much of the heap is dead (cancelled) weight.

The profile is plain data — it never touches the engine, so importing
this module from :mod:`repro.sim.engine` lazily keeps the dependency
one-way (engine -> obs only inside ``profile()``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["EventLoopProfile", "callback_name"]


def callback_name(fn: Callable) -> str:
    """Stable, human-readable label for an event callback."""
    name = getattr(fn, "__qualname__", None)
    if name is None:  # partials, callables without introspection
        name = type(fn).__name__
    return name


class CallbackStats:
    """Aggregate count and wall time of one callback type."""

    __slots__ = ("count", "total_time")

    def __init__(self) -> None:
        self.count = 0
        self.total_time = 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary of this callback type."""
        return {
            "count": self.count,
            "total_time_s": self.total_time,
            "mean_time_us": (self.total_time / self.count * 1e6) if self.count else 0.0,
        }


class EventLoopProfile:
    """Statistics captured while installed on a :class:`Simulator`.

    Populated by the engine's run loop; read after the ``with`` block via
    the properties or :meth:`as_dict`.
    """

    def __init__(self) -> None:
        self.events = 0
        self.cancelled_popped = 0
        self.max_heap_size = 0
        self.callbacks: dict[str, CallbackStats] = {}
        self.wall_start: Optional[float] = None
        self.wall_time = 0.0
        self.sim_start = 0.0
        self.sim_end = 0.0
        self.compactions = 0
        self._compactions_at_start = 0

    # -- engine-facing hooks (hot path) ---------------------------------
    def record_event(self, fn: Callable, duration: float, heap_size: int) -> None:
        """Account one executed callback."""
        self.events += 1
        if heap_size > self.max_heap_size:
            self.max_heap_size = heap_size
        name = callback_name(fn)
        stats = self.callbacks.get(name)
        if stats is None:
            stats = CallbackStats()
            self.callbacks[name] = stats
        stats.count += 1
        stats.total_time += duration

    def record_cancelled_pop(self) -> None:
        """Account one cancelled event discarded by the run loop."""
        self.cancelled_popped += 1

    # -- lifecycle ------------------------------------------------------
    def start(self, sim) -> None:
        """Begin the capture window (called by ``Simulator.profile()``)."""
        self.wall_start = time.perf_counter()
        self.sim_start = sim.now
        self._compactions_at_start = sim.compactions

    def stop(self, sim) -> None:
        """Close the capture window and freeze derived totals."""
        if self.wall_start is not None:
            self.wall_time += time.perf_counter() - self.wall_start
            self.wall_start = None
        self.sim_end = sim.now
        self.compactions = sim.compactions - self._compactions_at_start

    # -- derived --------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        """Executed events per wall-clock second (0 before any capture)."""
        if self.wall_time <= 0:
            return 0.0
        return self.events / self.wall_time

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of popped events that were cancelled corpses."""
        popped = self.events + self.cancelled_popped
        if popped == 0:
            return 0.0
        return self.cancelled_popped / popped

    def as_dict(self, top: int = 20) -> dict:
        """JSON-ready profile; callbacks sorted by total time, top ``top``."""
        ranked = sorted(
            self.callbacks.items(), key=lambda kv: kv[1].total_time, reverse=True
        )
        return {
            "events": self.events,
            "wall_time_s": self.wall_time,
            "events_per_sec": self.events_per_sec,
            "sim_time_advanced_s": self.sim_end - self.sim_start,
            "cancelled_popped": self.cancelled_popped,
            "cancelled_ratio": self.cancelled_ratio,
            "max_heap_size": self.max_heap_size,
            "heap_compactions": self.compactions,
            "callbacks": {name: cs.as_dict() for name, cs in ranked[:top]},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventLoopProfile events={self.events} "
            f"rate={self.events_per_sec:.0f}/s "
            f"cancelled_ratio={self.cancelled_ratio:.3f}>"
        )
