"""Queue disciplines: DropTail, RED, CoDel, and FQ-CoDel.

The paper identifies the DropTail bottleneck as the primary source of
sub-RTT loss burstiness (§3.3): once the FIFO buffer fills, *every* arrival
is dropped until the senders back off roughly half an RTT later, producing
a dense cluster of drops.  RED spreads drops out by dropping probabilistically
as a function of the EWMA queue length; the repository's ablation benches
quantify how much burstiness RED removes (§5).  CoDel and FQ-CoDel are the
2012-era sequels (the "modern AQM zoo" the zoo-grid experiment sweeps):
they drop on *sojourn time* at dequeue, which changes both the burstiness
of the loss process and which flow classes sample it.

All disciplines share one interface so links and traces are agnostic:

``push(pkt, now)`` returns an :class:`EnqueueResult` — ``ENQUEUED``,
``DROPPED``, or ``MARKED`` (enqueued with the ECN congestion-experienced
codepoint set).  Disciplines that drop or mark at *dequeue* time (CoDel,
FQ-CoDel) report those outcomes through the ``head_drop_hook`` /
``mark_hook`` callbacks the owning :class:`~repro.sim.link.Link` installs,
and count them in ``dropped_head`` so the conservation identities stay
checkable: ``arrived == enqueued + dropped`` and
``enqueued == dequeued + dropped_head + occupancy``.

Disciplines are also exposed through a named factory
(:func:`make_queue` / :func:`register_queue` / :func:`queue_kinds`) so
experiment drivers resolve AQMs by string key — the queue half of the
protocol/AQM zoo registry.

Each discipline may additionally register a *fluid drop law*
(:func:`register_fluid_law` / :func:`make_fluid_law`): the deterministic
drop-probability coupling the mean-field backend
(:mod:`repro.sim.fluid`) integrates instead of per-packet coin flips.
DropTail and RED have laws (RED's reuses the exact
:func:`red_drop_probability` ramp the packet queue samples); sojourn-time
disciplines (CoDel, FQ-CoDel) have no mean-field reduction here and
raise :class:`FluidNotSupported` with the supported alternatives listed.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EnqueueResult",
    "Queue",
    "DropTailQueue",
    "REDQueue",
    "REDParams",
    "CoDelParams",
    "CoDelQueue",
    "FqCoDelQueue",
    "make_queue",
    "register_queue",
    "queue_kinds",
    "red_drop_probability",
    "FluidNotSupported",
    "FluidQueueLaw",
    "DropTailFluidLaw",
    "RedFluidLaw",
    "register_fluid_law",
    "make_fluid_law",
    "fluid_law_kinds",
]


class EnqueueResult(enum.Enum):
    """Outcome of offering a packet to a queue."""

    ENQUEUED = "enqueued"
    DROPPED = "dropped"
    MARKED = "marked"  # enqueued, ECN congestion-experienced set


class Queue:
    """Abstract FIFO buffer with a capacity in packets and, optionally,
    bytes.

    Capacity is in packets by default (the NS-2 convention the paper's
    scenarios use: buffer sizes are quoted in fractions of the
    bandwidth-delay product measured in packets).  Pass ``capacity_bytes``
    for a byte-limited buffer (real routers limit memory, not slots); when
    both are set the stricter one applies.
    """

    def __init__(
        self,
        capacity_pkts: int,
        name: str = "queue",
        capacity_bytes: Optional[int] = None,
    ):
        if capacity_pkts < 1:
            raise ValueError(f"queue capacity must be >= 1 packet, got {capacity_pkts}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(f"byte capacity must be >= 1, got {capacity_bytes}")
        self.capacity = int(capacity_pkts)
        self.capacity_bytes = None if capacity_bytes is None else int(capacity_bytes)
        self.name = name
        self._q: deque[Packet] = deque()
        self.bytes = 0
        # Counters for conservation checks: arrived == enqueued + dropped,
        # enqueued == dequeued + len(queue).
        self.arrived = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        #: Packets dropped at *dequeue* time after having been enqueued
        #: (CoDel's sojourn drops, FQ-CoDel's fat-flow evictions).  Kept
        #: separate from ``dropped`` so ``arrived == enqueued + dropped``
        #: stays an arrival-side identity for every discipline.
        self.dropped_head = 0
        self.marked = 0
        #: Terminal consumer for head-dropped packets: the owning Link
        #: installs a callback that records the drop trace entry and
        #: recycles the packet.  ``None`` means the queue discards silently.
        self.head_drop_hook: Optional[Callable[[Packet, float], None]] = None
        #: Observer for dequeue-time ECN marks (CoDel with ``ecn=True``):
        #: the packet is still delivered, but the mark needs a trace entry.
        self.mark_hook: Optional[Callable[[Packet, float], None]] = None
        #: High-water mark of the instantaneous occupancy (packets); the
        #: telemetry/report layer uses it to tell "buffer never filled"
        #: from "buffer sat full" without sampling every enqueue.
        self.peak_occupancy = 0

    def _fits(self, pkt: Packet) -> bool:
        if len(self._q) >= self.capacity:
            return False
        if self.capacity_bytes is not None and self.bytes + pkt.size > self.capacity_bytes:
            return False
        return True

    # -- interface ------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        raise NotImplementedError

    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None when empty)."""
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        self.dequeued += 1
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    @property
    def dropped_total(self) -> int:
        """All losses this queue inflicted: push-time plus dequeue-time."""
        return self.dropped + self.dropped_head

    # -- shared helpers ---------------------------------------------------
    def _accept(self, pkt: Packet) -> None:
        self._q.append(pkt)
        self.bytes += pkt.size
        self.enqueued += 1
        if len(self._q) > self.peak_occupancy:
            self.peak_occupancy = len(self._q)

    # -- observability ----------------------------------------------------
    def conservation_residuals(self) -> dict[str, int]:
        """Deviation of each conservation identity from zero.

        All-zero residuals mean the counters balance; any non-zero entry is
        an accounting bug (:func:`repro.obs.invariants.check_queue` raises
        on it with a full snapshot).
        """
        return {
            "arrival": self.arrived - self.enqueued - self.dropped,
            "occupancy": self.enqueued - self.dequeued - self.dropped_head - len(self),
        }

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live conservation counters as callback gauges in
        ``registry`` under ``queue.<name>.*``."""
        prefix = f"queue.{self.name}"
        registry.gauge(f"{prefix}.arrived", fn=lambda: self.arrived)
        registry.gauge(f"{prefix}.enqueued", fn=lambda: self.enqueued)
        registry.gauge(f"{prefix}.dequeued", fn=lambda: self.dequeued)
        registry.gauge(f"{prefix}.dropped", fn=lambda: self.dropped)
        registry.gauge(f"{prefix}.dropped_head", fn=lambda: self.dropped_head)
        registry.gauge(f"{prefix}.marked", fn=lambda: self.marked)
        registry.gauge(f"{prefix}.occupancy", fn=lambda: len(self))
        registry.gauge(f"{prefix}.peak_occupancy", fn=lambda: self.peak_occupancy)
        registry.gauge(f"{prefix}.bytes", fn=lambda: self.bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} {len(self._q)}/{self.capacity} pkts "
            f"dropped={self.dropped}>"
        )


class DropTailQueue(Queue):
    """Plain FIFO: accept until full, then drop every arrival."""

    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        if not self._fits(pkt):
            self.dropped += 1
            return EnqueueResult.DROPPED
        self._accept(pkt)
        return EnqueueResult.ENQUEUED


class REDParams:
    """Random Early Detection parameters (Floyd & Jacobson 1993).

    Defaults follow the classic recommendations: ``min_th`` = 5 packets,
    ``max_th`` = 3 * ``min_th``, ``weight`` = 0.002, ``max_p`` = 0.1.  The
    paper's §5 caveat — "the parameter tunings of RED are difficult" — is
    exactly why these are explicit and swept by the ablation bench.
    """

    __slots__ = ("min_th", "max_th", "weight", "max_p", "ecn", "gentle")

    def __init__(
        self,
        min_th: float = 5.0,
        max_th: float = 15.0,
        weight: float = 0.002,
        max_p: float = 0.1,
        ecn: bool = False,
        gentle: bool = True,
    ):
        if not (0 < min_th < max_th):
            raise ValueError(f"need 0 < min_th < max_th, got {min_th}, {max_th}")
        if not (0 < weight <= 1):
            raise ValueError(f"EWMA weight must be in (0, 1], got {weight}")
        if not (0 < max_p <= 1):
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.weight = float(weight)
        self.max_p = float(max_p)
        self.ecn = bool(ecn)
        self.gentle = bool(gentle)


def red_drop_probability(avg: float, params: REDParams) -> float:
    """The RED early-action probability ``p_b`` for an average queue
    length ``avg`` (Floyd & Jacobson's linear ramp, plus the "gentle"
    extension).  Shared verbatim by the packet queue's per-arrival coin
    flip (:meth:`REDQueue.push`) and the fluid backend's deterministic
    drop-rate coupling (:class:`RedFluidLaw`), so the two backends
    integrate the *same* control law."""
    if avg < params.min_th:
        return 0.0
    if avg < params.max_th:
        return params.max_p * (avg - params.min_th) / (params.max_th - params.min_th)
    if params.gentle and avg < 2.0 * params.max_th:
        return params.max_p + (1.0 - params.max_p) * (avg - params.max_th) / params.max_th
    return 1.0


class REDQueue(Queue):
    """Random Early Detection gateway.

    Implements the original algorithm: an EWMA of the instantaneous queue
    length (with the idle-period correction), early drop/mark probability
    ramping linearly from 0 at ``min_th`` to ``max_p`` at ``max_th``, the
    ``1/(1 - count * p_b)`` inter-drop spreading, and (optionally) the
    "gentle" extension ramping from ``max_p`` to 1 between ``max_th`` and
    ``2 * max_th``.

    With ``params.ecn`` set, early notifications *mark* ECN-capable packets
    instead of dropping them (hard overflow still drops).
    """

    def __init__(
        self,
        capacity_pkts: int,
        params: Optional[REDParams] = None,
        rng: Optional[np.random.Generator] = None,
        mean_pkt_size: int = 1000,
        service_rate_pps: float = 0.0,
        name: str = "red",
    ):
        super().__init__(capacity_pkts, name=name)
        self.params = params or REDParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.avg = 0.0
        self._count = -1  # packets since last early drop/mark
        self._idle_since: Optional[float] = 0.0
        # Estimated service rate (packets/sec) for the idle-time correction;
        # 0 disables the correction.
        self.service_rate_pps = float(service_rate_pps)
        self.mean_pkt_size = int(mean_pkt_size)

    # -- EWMA -------------------------------------------------------------
    def _update_avg(self, now: float) -> None:
        q = len(self._q)
        w = self.params.weight
        if q == 0 and self._idle_since is not None and self.service_rate_pps > 0:
            # Queue has been idle: decay the average as if m small packets
            # had been serviced during the idle period.
            m = max(0.0, (now - self._idle_since) * self.service_rate_pps)
            self.avg *= (1.0 - w) ** m
            self.avg += w * q  # q == 0 here; kept for symmetry
        else:
            self.avg = (1.0 - w) * self.avg + w * q

    def _early_probability(self) -> float:
        return red_drop_probability(self.avg, self.params)

    # -- interface ----------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        self._update_avg(now)
        self._idle_since = None

        if not self._fits(pkt):
            # Hard overflow: behaves like DropTail regardless of the average.
            self.dropped += 1
            self._count = 0
            return EnqueueResult.DROPPED

        p_b = self._early_probability()
        if p_b > 0.0:
            self._count += 1
            if p_b >= 1.0:
                take = True
            else:
                # Spread early actions out: with count packets since the last
                # action, act with probability p_b / (1 - count * p_b).
                denom = 1.0 - self._count * p_b
                p_a = 1.0 if denom <= 0 else min(1.0, p_b / denom)
                take = bool(self.rng.random() < p_a)
            if take:
                self._count = 0
                if self.params.ecn and pkt.ecn_capable and self.avg < self.params.max_th:
                    pkt.ecn_marked = True
                    self.marked += 1
                    self._accept(pkt)
                    return EnqueueResult.MARKED
                self.dropped += 1
                return EnqueueResult.DROPPED
        else:
            self._count = -1

        self._accept(pkt)
        return EnqueueResult.ENQUEUED

    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None when empty)."""
        pkt = super().pop(now)
        if pkt is not None and not self._q:
            self._idle_since = now
        return pkt


# ---------------------------------------------------------------------------
# CoDel (Nichols & Jacobson 2012) and FQ-CoDel (RFC 8290)
# ---------------------------------------------------------------------------


class CoDelParams:
    """Controlled-Delay AQM parameters.

    ``target`` is the acceptable standing sojourn time (5 ms), ``interval``
    the window over which it must be exceeded before dropping starts
    (100 ms, a worst-case RTT).  With ``ecn`` set, sojourn violations mark
    ECN-capable packets instead of dropping them.
    """

    __slots__ = ("target", "interval", "ecn")

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 ecn: bool = False):
        if target <= 0:
            raise ValueError(f"target must be positive, got {target}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.target = float(target)
        self.interval = float(interval)
        self.ecn = bool(ecn)


class _CoDelLaw:
    """The CoDel control-law state machine, shared by :class:`CoDelQueue`
    and each FQ-CoDel bucket.

    ``dequeue(now, pull, backlog, consume)`` implements the ACM Queue
    pseudocode: ``pull()`` removes and returns ``(pkt, enqueue_time)`` or
    ``None``; ``backlog()`` is the owner's byte backlog (no dropping below
    one max-size packet); ``consume(pkt, now)`` disposes of a
    sojourn-dropped packet (accounting + hooks live with the owner).
    Returns the packet to deliver (possibly ECN-marked) or ``None``.
    """

    __slots__ = ("first_above", "dropping", "drop_next", "count",
                 "last_sojourn", "maxpacket", "params", "_mark")

    def __init__(self, params: CoDelParams,
                 mark: Callable[[Packet, float], bool]):
        self.params = params
        self.first_above = 0.0
        self.dropping = False
        self.drop_next = 0.0
        self.count = 0
        self.last_sojourn = 0.0
        self.maxpacket = 0
        self._mark = mark

    def _dodequeue(self, now, pull, backlog):
        """Returns ``(pkt, ok_to_drop)``; updates the first-above clock."""
        item = pull()
        if item is None:
            self.first_above = 0.0
            return None, False
        pkt, enq = item
        sojourn = now - enq
        self.last_sojourn = sojourn
        p = self.params
        if sojourn < p.target or backlog() < self.maxpacket:
            self.first_above = 0.0
            return pkt, False
        if self.first_above == 0.0:
            self.first_above = now + p.interval
            return pkt, False
        return pkt, now >= self.first_above

    def dequeue(self, now, pull, backlog, consume):
        interval = self.params.interval
        pkt, ok = self._dodequeue(now, pull, backlog)
        if pkt is None:
            self.dropping = False
            return None
        if self.dropping:
            if not ok:
                self.dropping = False
            else:
                while self.dropping and now >= self.drop_next:
                    self.count += 1
                    if self._mark(pkt, now):
                        # ECN: deliver the marked packet; the control law
                        # advances exactly as if it had been dropped.
                        self.drop_next += interval / math.sqrt(self.count)
                        break
                    consume(pkt, now)
                    pkt, ok = self._dodequeue(now, pull, backlog)
                    if pkt is None:
                        self.dropping = False
                        break
                    if not ok:
                        self.dropping = False
                    else:
                        self.drop_next += interval / math.sqrt(self.count)
        elif ok:
            # Enter the dropping state: one immediate drop (or mark), then
            # the count-controlled schedule, resumed near the prior rate if
            # we left the state recently.
            if not self._mark(pkt, now):
                consume(pkt, now)
                pkt, _ = self._dodequeue(now, pull, backlog)
            self.dropping = True
            if self.count > 2 and now - self.drop_next < 16.0 * interval:
                self.count -= 2
            else:
                self.count = 1
            self.drop_next = now + interval / math.sqrt(self.count)
        return pkt


class CoDelQueue(Queue):
    """Controlled-Delay queue: drop (or ECN-mark) on standing sojourn time.

    Arrivals are only dropped on hard overflow (``capacity_pkts`` /
    ``capacity_bytes``), like DropTail; congestion control happens at
    *dequeue*, where packets whose sojourn exceeded ``target`` for at
    least one ``interval`` are dropped on the ``1/sqrt(count)`` schedule.
    Dequeue drops are counted in ``dropped_head`` and reported through
    ``head_drop_hook`` (the Link installs the trace/recycle consumer).
    """

    def __init__(
        self,
        capacity_pkts: int,
        params: Optional[CoDelParams] = None,
        name: str = "codel",
        capacity_bytes: Optional[int] = None,
    ):
        super().__init__(capacity_pkts, name=name, capacity_bytes=capacity_bytes)
        self.params = params or CoDelParams()
        self._enq_times: deque[float] = deque()
        self._law = _CoDelLaw(self.params, self._try_mark)
        # Sojourn statistics over *delivered* packets (tests + telemetry).
        self.sojourn_sum = 0.0
        self.sojourn_peak = 0.0

    @property
    def last_sojourn(self) -> float:
        """Sojourn time of the most recently examined head packet."""
        return self._law.last_sojourn

    # -- interface ------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        if not self._fits(pkt):
            self.dropped += 1
            return EnqueueResult.DROPPED
        if pkt.size > self._law.maxpacket:
            self._law.maxpacket = pkt.size
        self._accept(pkt)
        self._enq_times.append(now)
        return EnqueueResult.ENQUEUED

    def _pull(self):
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        return pkt, self._enq_times.popleft()

    def _consume(self, pkt: Packet, now: float) -> None:
        self.dropped_head += 1
        if self.head_drop_hook is not None:
            self.head_drop_hook(pkt, now)

    def _try_mark(self, pkt: Packet, now: float) -> bool:
        if self.params.ecn and pkt.ecn_capable:
            pkt.ecn_marked = True
            self.marked += 1
            if self.mark_hook is not None:
                self.mark_hook(pkt, now)
            return True
        return False

    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None when empty),
        applying the CoDel control law first."""
        pkt = self._law.dequeue(now, self._pull, lambda: self.bytes,
                                self._consume)
        if pkt is not None:
            self.dequeued += 1
            s = self._law.last_sojourn
            self.sojourn_sum += s
            if s > self.sojourn_peak:
                self.sojourn_peak = s
        return pkt

    def mean_sojourn(self) -> float:
        """Mean sojourn time over delivered packets (NaN before any)."""
        if self.dequeued == 0:
            return float("nan")
        return self.sojourn_sum / self.dequeued


class _FqBucket:
    """One FQ-CoDel flow bucket: its backlog, DRR deficit, CoDel state."""

    __slots__ = ("q", "byte_backlog", "deficit", "law", "active")

    def __init__(self, params: CoDelParams, mark):
        self.q: deque[tuple[Packet, float]] = deque()
        self.byte_backlog = 0
        self.deficit = 0
        self.law = _CoDelLaw(params, mark)
        self.active = False

    def pull(self):
        if not self.q:
            return None
        pkt, enq = self.q.popleft()
        self.byte_backlog -= pkt.size
        return pkt, enq


class FqCoDelQueue(Queue):
    """Flow-queueing CoDel (RFC 8290).

    Packets hash by ``flow_id`` into ``n_buckets`` sub-queues, each
    running its own CoDel law; a deficit-round-robin scheduler with
    ``quantum`` bytes per visit serves them, giving new (thin) flows
    scheduling priority.  On overflow the *fattest* bucket's head is
    evicted — so an aggressive flow's backlog, not the arriving packet,
    pays for the shared buffer.  Evictions and sojourn drops both count
    in ``dropped_head`` (they removed packets that were enqueued).
    """

    def __init__(
        self,
        capacity_pkts: int,
        params: Optional[CoDelParams] = None,
        n_buckets: int = 64,
        quantum: int = 1514,
        name: str = "fq-codel",
    ):
        super().__init__(capacity_pkts, name=name)
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1 byte, got {quantum}")
        self.params = params or CoDelParams()
        self.n_buckets = int(n_buckets)
        self.quantum = int(quantum)
        self._buckets = [_FqBucket(self.params, self._try_mark)
                         for _ in range(self.n_buckets)]
        self._new: deque[_FqBucket] = deque()
        self._old: deque[_FqBucket] = deque()
        self._occupancy = 0

    def __len__(self) -> int:
        return self._occupancy

    def __bool__(self) -> bool:
        return self._occupancy > 0

    # -- interface ------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome.

        Always enqueues; when over capacity the longest bucket is then
        shortened from the head (``dropped_head``), which usually punishes
        a different flow than the one that arrived.
        """
        self.arrived += 1
        b = self._buckets[pkt.flow_id % self.n_buckets]
        if pkt.size > b.law.maxpacket:
            b.law.maxpacket = pkt.size
        b.q.append((pkt, now))
        b.byte_backlog += pkt.size
        self.bytes += pkt.size
        self._occupancy += 1
        self.enqueued += 1
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy
        if not b.active:
            b.active = True
            b.deficit = self.quantum
            self._new.append(b)
        if self._occupancy > self.capacity:
            self._evict_from_fattest(now)
        return EnqueueResult.ENQUEUED

    def _evict_from_fattest(self, now: float) -> None:
        fat = max(self._buckets, key=lambda b: b.byte_backlog)
        item = fat.pull()
        if item is None:  # pragma: no cover - occupancy > 0 implies a head
            return
        pkt, _ = item
        self.bytes -= pkt.size
        self._occupancy -= 1
        self.dropped_head += 1
        if self.head_drop_hook is not None:
            self.head_drop_hook(pkt, now)

    def _try_mark(self, pkt: Packet, now: float) -> bool:
        if self.params.ecn and pkt.ecn_capable:
            pkt.ecn_marked = True
            self.marked += 1
            if self.mark_hook is not None:
                self.mark_hook(pkt, now)
            return True
        return False

    def _bucket_consume(self, pkt: Packet, now: float) -> None:
        self._occupancy -= 1
        self.bytes -= pkt.size
        self.dropped_head += 1
        if self.head_drop_hook is not None:
            self.head_drop_hook(pkt, now)

    def pop(self, now: float) -> Optional[Packet]:
        """DRR scheduling over the buckets, CoDel law per bucket."""
        while True:
            if self._new:
                lst = self._new
            elif self._old:
                lst = self._old
            else:
                return None
            b = lst[0]
            if b.deficit <= 0:
                b.deficit += self.quantum
                lst.popleft()
                self._old.append(b)
                continue
            pkt = b.law.dequeue(now, b.pull,
                                lambda b=b: b.byte_backlog,
                                self._bucket_consume)
            if pkt is None:
                # Bucket drained: a new bucket gets one pass through the
                # old list (RFC 8290 §4.2); an old bucket deactivates.
                lst.popleft()
                if lst is self._new:
                    self._old.append(b)
                else:
                    b.active = False
                continue
            b.deficit -= pkt.size
            self._occupancy -= 1
            self.bytes -= pkt.size
            self.dequeued += 1
            return pkt

    def backlog_of(self, flow_id: int) -> int:
        """Byte backlog of the bucket ``flow_id`` hashes into (tests)."""
        return self._buckets[flow_id % self.n_buckets].byte_backlog


# ---------------------------------------------------------------------------
# Named queue factory — the AQM half of the protocol/AQM zoo registry
# ---------------------------------------------------------------------------

#: kind -> factory(capacity_pkts, *, rng, name, service_rate_pps, **kwargs).
_QUEUE_REGISTRY: dict[str, Callable[..., Queue]] = {}


def register_queue(kind: str):
    """Decorator: register a queue factory under a string key.

    The factory signature is ``factory(capacity_pkts, *, rng=None,
    name="...", service_rate_pps=0.0, **kwargs) -> Queue``; factories
    ignore the keywords they have no use for.  Registering an existing
    kind replaces it (extensions may refine a core discipline).
    """

    def deco(factory: Callable[..., Queue]):
        _QUEUE_REGISTRY[kind] = factory
        return factory

    return deco


def queue_kinds() -> tuple[str, ...]:
    """Registered AQM kind keys, sorted."""
    return tuple(sorted(_QUEUE_REGISTRY))


def make_queue(
    kind: str,
    capacity_pkts: int,
    *,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
    service_rate_pps: float = 0.0,
    **kwargs,
) -> Queue:
    """Build a queue discipline by registry key.

    ``rng`` feeds probabilistic disciplines (RED); ``service_rate_pps``
    feeds idle-decay corrections; both are ignored by disciplines that
    have no use for them, so drivers can pass everything uniformly.
    """
    try:
        factory = _QUEUE_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown queue kind {kind!r}; registered: {', '.join(queue_kinds())}"
        ) from None
    return factory(
        capacity_pkts,
        rng=rng,
        name=name if name is not None else kind,
        service_rate_pps=service_rate_pps,
        **kwargs,
    )


@register_queue("droptail")
def _make_droptail(capacity_pkts, *, rng=None, name="droptail",
                   service_rate_pps=0.0, **kwargs) -> DropTailQueue:
    return DropTailQueue(capacity_pkts, name=name, **kwargs)


@register_queue("red")
def _make_red(capacity_pkts, *, rng=None, name="red", service_rate_pps=0.0,
              params: Optional[REDParams] = None, **kwargs) -> REDQueue:
    return REDQueue(capacity_pkts, params=params, rng=rng, name=name,
                    service_rate_pps=service_rate_pps, **kwargs)


@register_queue("codel")
def _make_codel(capacity_pkts, *, rng=None, name="codel",
                service_rate_pps=0.0, params: Optional[CoDelParams] = None,
                **kwargs) -> CoDelQueue:
    return CoDelQueue(capacity_pkts, params=params, name=name, **kwargs)


@register_queue("fq-codel")
def _make_fq_codel(capacity_pkts, *, rng=None, name="fq-codel",
                   service_rate_pps=0.0, params: Optional[CoDelParams] = None,
                   **kwargs) -> FqCoDelQueue:
    return FqCoDelQueue(capacity_pkts, params=params, name=name, **kwargs)


# ---------------------------------------------------------------------------
# Fluid drop laws — the queue half of the mean-field backend
# ---------------------------------------------------------------------------


class FluidNotSupported(NotImplementedError):
    """A scenario component has no mean-field reduction.

    Raised with an explicit message naming the unsupported component and
    the supported alternatives, so ``backend="fluid"`` failures are
    diagnosable from the exception text alone (the drivers surface it
    verbatim rather than degrading silently).
    """


class FluidQueueLaw:
    """Deterministic drop-probability coupling of one AQM kind.

    The fluid backend (:mod:`repro.sim.fluid`) integrates a shared
    queue-occupancy ODE; once per step it asks the law for the *early*
    (pre-enqueue) drop probability given the instantaneous occupancy and
    aggregate arrival rate.  Hard overflow above ``capacity_pkts`` is
    handled by the queue ODE's clamp for every law, exactly as
    :meth:`Queue._fits` backstops every packet discipline.

    Laws are stateful (RED carries its EWMA average) and are reset per
    run; ``drop_probability`` is called exactly once per step in time
    order.
    """

    kind = "fluid"

    def __init__(self, capacity_pkts: int, service_rate_pps: float):
        if capacity_pkts < 1:
            raise ValueError(f"queue capacity must be >= 1 packet, got {capacity_pkts}")
        if service_rate_pps <= 0:
            raise ValueError(f"service rate must be positive, got {service_rate_pps}")
        self.capacity = int(capacity_pkts)
        self.service_rate_pps = float(service_rate_pps)

    def reset(self) -> None:
        """Clear per-run state (called by the fluid engine before t=0)."""

    def drop_probability(self, q: float, arrival_rate_pps: float,
                         dt: float) -> float:
        """Early drop probability for arrivals during the next ``dt``."""
        raise NotImplementedError


class DropTailFluidLaw(FluidQueueLaw):
    """DropTail's mean-field law: no early drops, ever.

    All loss comes from the queue ODE saturating at ``capacity`` — the
    fluid analogue of "once the FIFO fills, every arrival is dropped
    until the senders back off" (§3.3), and the source of the
    synchronized loss *episodes* the convergence suite counts.
    """

    kind = "droptail"

    def drop_probability(self, q: float, arrival_rate_pps: float,
                         dt: float) -> float:
        """Early drop probability for arrivals during the next ``dt``."""
        return 0.0


class RedFluidLaw(FluidQueueLaw):
    """RED's mean-field law (McDonald–Reynier's coupling).

    Evolves the same EWMA average the packet queue keeps — the
    per-arrival update ``avg <- (1-w)*avg + w*q`` applied ``A*dt`` times
    has the closed form ``q + (avg-q)*(1-w)**(A*dt)`` — and maps it
    through the exact :func:`red_drop_probability` ramp.  The packet
    queue's ``1/(1 - count*p_b)`` inter-drop spreading shapes *when*
    drops land, not their mean rate, so the mean-field rate is ``p_b``
    itself.
    """

    kind = "red"

    def __init__(self, capacity_pkts: int, service_rate_pps: float,
                 params: Optional[REDParams] = None):
        super().__init__(capacity_pkts, service_rate_pps)
        self.params = params or REDParams()
        self.avg = 0.0

    def reset(self) -> None:
        """Clear per-run state (called by the fluid engine before t=0)."""
        self.avg = 0.0

    def drop_probability(self, q: float, arrival_rate_pps: float,
                         dt: float) -> float:
        """Early drop probability for arrivals during the next ``dt``."""
        m = arrival_rate_pps * dt
        if m > 0.0:
            self.avg = q + (self.avg - q) * (1.0 - self.params.weight) ** m
        return red_drop_probability(self.avg, self.params)


#: kind -> factory(capacity_pkts, *, service_rate_pps, **kwargs).
_FLUID_LAW_REGISTRY: dict[str, Callable[..., FluidQueueLaw]] = {}


def register_fluid_law(kind: str):
    """Decorator: register a fluid drop law under a queue-kind key."""

    def deco(factory: Callable[..., FluidQueueLaw]):
        _FLUID_LAW_REGISTRY[kind] = factory
        return factory

    return deco


def fluid_law_kinds() -> tuple[str, ...]:
    """Queue kinds with a registered fluid drop law, sorted."""
    return tuple(sorted(_FLUID_LAW_REGISTRY))


def make_fluid_law(
    kind: str,
    capacity_pkts: int,
    *,
    service_rate_pps: float,
    **kwargs,
) -> FluidQueueLaw:
    """Build the fluid drop law for a registered queue kind.

    Unknown kinds raise ``ValueError`` (same contract as
    :func:`make_queue`); known kinds without a mean-field reduction
    raise :class:`FluidNotSupported` naming the supported set.
    """
    if kind not in _QUEUE_REGISTRY:
        raise ValueError(
            f"unknown queue kind {kind!r}; registered: {', '.join(queue_kinds())}"
        )
    try:
        factory = _FLUID_LAW_REGISTRY[kind]
    except KeyError:
        raise FluidNotSupported(
            f"queue kind {kind!r} has no fluid drop law (sojourn-time "
            "control has no mean-field reduction here); fluid-supported "
            f"kinds: {', '.join(fluid_law_kinds())}"
        ) from None
    return factory(capacity_pkts, service_rate_pps=service_rate_pps, **kwargs)


@register_fluid_law("droptail")
def _make_droptail_law(capacity_pkts, *, service_rate_pps,
                       **kwargs) -> DropTailFluidLaw:
    return DropTailFluidLaw(capacity_pkts, service_rate_pps)


@register_fluid_law("red")
def _make_red_law(capacity_pkts, *, service_rate_pps,
                  params: Optional[REDParams] = None,
                  **kwargs) -> RedFluidLaw:
    return RedFluidLaw(capacity_pkts, service_rate_pps, params=params)
