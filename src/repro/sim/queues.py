"""Queue disciplines: DropTail (FIFO) and RED, with optional ECN marking.

The paper identifies the DropTail bottleneck as the primary source of
sub-RTT loss burstiness (§3.3): once the FIFO buffer fills, *every* arrival
is dropped until the senders back off roughly half an RTT later, producing
a dense cluster of drops.  RED spreads drops out by dropping probabilistically
as a function of the EWMA queue length; the repository's ablation benches
quantify how much burstiness RED removes (§5).

All disciplines share one interface so links and traces are agnostic:

``push(pkt, now)`` returns an :class:`EnqueueResult` — ``ENQUEUED``,
``DROPPED``, or ``MARKED`` (enqueued with the ECN congestion-experienced
codepoint set).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["EnqueueResult", "Queue", "DropTailQueue", "REDQueue", "REDParams"]


class EnqueueResult(enum.Enum):
    """Outcome of offering a packet to a queue."""

    ENQUEUED = "enqueued"
    DROPPED = "dropped"
    MARKED = "marked"  # enqueued, ECN congestion-experienced set


class Queue:
    """Abstract FIFO buffer with a capacity in packets and, optionally,
    bytes.

    Capacity is in packets by default (the NS-2 convention the paper's
    scenarios use: buffer sizes are quoted in fractions of the
    bandwidth-delay product measured in packets).  Pass ``capacity_bytes``
    for a byte-limited buffer (real routers limit memory, not slots); when
    both are set the stricter one applies.
    """

    def __init__(
        self,
        capacity_pkts: int,
        name: str = "queue",
        capacity_bytes: Optional[int] = None,
    ):
        if capacity_pkts < 1:
            raise ValueError(f"queue capacity must be >= 1 packet, got {capacity_pkts}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(f"byte capacity must be >= 1, got {capacity_bytes}")
        self.capacity = int(capacity_pkts)
        self.capacity_bytes = None if capacity_bytes is None else int(capacity_bytes)
        self.name = name
        self._q: deque[Packet] = deque()
        self.bytes = 0
        # Counters for conservation checks: arrived == enqueued + dropped,
        # enqueued == dequeued + len(queue).
        self.arrived = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.marked = 0
        #: High-water mark of the instantaneous occupancy (packets); the
        #: telemetry/report layer uses it to tell "buffer never filled"
        #: from "buffer sat full" without sampling every enqueue.
        self.peak_occupancy = 0

    def _fits(self, pkt: Packet) -> bool:
        if len(self._q) >= self.capacity:
            return False
        if self.capacity_bytes is not None and self.bytes + pkt.size > self.capacity_bytes:
            return False
        return True

    # -- interface ------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        raise NotImplementedError

    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None when empty)."""
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        self.dequeued += 1
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    # -- shared helpers ---------------------------------------------------
    def _accept(self, pkt: Packet) -> None:
        self._q.append(pkt)
        self.bytes += pkt.size
        self.enqueued += 1
        if len(self._q) > self.peak_occupancy:
            self.peak_occupancy = len(self._q)

    # -- observability ----------------------------------------------------
    def conservation_residuals(self) -> dict[str, int]:
        """Deviation of each conservation identity from zero.

        All-zero residuals mean the counters balance; any non-zero entry is
        an accounting bug (:func:`repro.obs.invariants.check_queue` raises
        on it with a full snapshot).
        """
        return {
            "arrival": self.arrived - self.enqueued - self.dropped,
            "occupancy": self.enqueued - self.dequeued - len(self._q),
        }

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live conservation counters as callback gauges in
        ``registry`` under ``queue.<name>.*``."""
        prefix = f"queue.{self.name}"
        registry.gauge(f"{prefix}.arrived", fn=lambda: self.arrived)
        registry.gauge(f"{prefix}.enqueued", fn=lambda: self.enqueued)
        registry.gauge(f"{prefix}.dequeued", fn=lambda: self.dequeued)
        registry.gauge(f"{prefix}.dropped", fn=lambda: self.dropped)
        registry.gauge(f"{prefix}.marked", fn=lambda: self.marked)
        registry.gauge(f"{prefix}.occupancy", fn=lambda: len(self._q))
        registry.gauge(f"{prefix}.peak_occupancy", fn=lambda: self.peak_occupancy)
        registry.gauge(f"{prefix}.bytes", fn=lambda: self.bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} {len(self._q)}/{self.capacity} pkts "
            f"dropped={self.dropped}>"
        )


class DropTailQueue(Queue):
    """Plain FIFO: accept until full, then drop every arrival."""

    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        if not self._fits(pkt):
            self.dropped += 1
            return EnqueueResult.DROPPED
        self._accept(pkt)
        return EnqueueResult.ENQUEUED


class REDParams:
    """Random Early Detection parameters (Floyd & Jacobson 1993).

    Defaults follow the classic recommendations: ``min_th`` = 5 packets,
    ``max_th`` = 3 * ``min_th``, ``weight`` = 0.002, ``max_p`` = 0.1.  The
    paper's §5 caveat — "the parameter tunings of RED are difficult" — is
    exactly why these are explicit and swept by the ablation bench.
    """

    __slots__ = ("min_th", "max_th", "weight", "max_p", "ecn", "gentle")

    def __init__(
        self,
        min_th: float = 5.0,
        max_th: float = 15.0,
        weight: float = 0.002,
        max_p: float = 0.1,
        ecn: bool = False,
        gentle: bool = True,
    ):
        if not (0 < min_th < max_th):
            raise ValueError(f"need 0 < min_th < max_th, got {min_th}, {max_th}")
        if not (0 < weight <= 1):
            raise ValueError(f"EWMA weight must be in (0, 1], got {weight}")
        if not (0 < max_p <= 1):
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.weight = float(weight)
        self.max_p = float(max_p)
        self.ecn = bool(ecn)
        self.gentle = bool(gentle)


class REDQueue(Queue):
    """Random Early Detection gateway.

    Implements the original algorithm: an EWMA of the instantaneous queue
    length (with the idle-period correction), early drop/mark probability
    ramping linearly from 0 at ``min_th`` to ``max_p`` at ``max_th``, the
    ``1/(1 - count * p_b)`` inter-drop spreading, and (optionally) the
    "gentle" extension ramping from ``max_p`` to 1 between ``max_th`` and
    ``2 * max_th``.

    With ``params.ecn`` set, early notifications *mark* ECN-capable packets
    instead of dropping them (hard overflow still drops).
    """

    def __init__(
        self,
        capacity_pkts: int,
        params: Optional[REDParams] = None,
        rng: Optional[np.random.Generator] = None,
        mean_pkt_size: int = 1000,
        service_rate_pps: float = 0.0,
        name: str = "red",
    ):
        super().__init__(capacity_pkts, name=name)
        self.params = params or REDParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.avg = 0.0
        self._count = -1  # packets since last early drop/mark
        self._idle_since: Optional[float] = 0.0
        # Estimated service rate (packets/sec) for the idle-time correction;
        # 0 disables the correction.
        self.service_rate_pps = float(service_rate_pps)
        self.mean_pkt_size = int(mean_pkt_size)

    # -- EWMA -------------------------------------------------------------
    def _update_avg(self, now: float) -> None:
        q = len(self._q)
        w = self.params.weight
        if q == 0 and self._idle_since is not None and self.service_rate_pps > 0:
            # Queue has been idle: decay the average as if m small packets
            # had been serviced during the idle period.
            m = max(0.0, (now - self._idle_since) * self.service_rate_pps)
            self.avg *= (1.0 - w) ** m
            self.avg += w * q  # q == 0 here; kept for symmetry
        else:
            self.avg = (1.0 - w) * self.avg + w * q

    def _early_probability(self) -> float:
        p = self.params
        if self.avg < p.min_th:
            return 0.0
        if self.avg < p.max_th:
            return p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th)
        if p.gentle and self.avg < 2.0 * p.max_th:
            return p.max_p + (1.0 - p.max_p) * (self.avg - p.max_th) / p.max_th
        return 1.0

    # -- interface ----------------------------------------------------------
    def push(self, pkt: Packet, now: float) -> EnqueueResult:
        """Offer a packet to the buffer; returns the enqueue outcome."""
        self.arrived += 1
        self._update_avg(now)
        self._idle_since = None

        if not self._fits(pkt):
            # Hard overflow: behaves like DropTail regardless of the average.
            self.dropped += 1
            self._count = 0
            return EnqueueResult.DROPPED

        p_b = self._early_probability()
        if p_b > 0.0:
            self._count += 1
            if p_b >= 1.0:
                take = True
            else:
                # Spread early actions out: with count packets since the last
                # action, act with probability p_b / (1 - count * p_b).
                denom = 1.0 - self._count * p_b
                p_a = 1.0 if denom <= 0 else min(1.0, p_b / denom)
                take = bool(self.rng.random() < p_a)
            if take:
                self._count = 0
                if self.params.ecn and pkt.ecn_capable and self.avg < self.params.max_th:
                    pkt.ecn_marked = True
                    self.marked += 1
                    self._accept(pkt)
                    return EnqueueResult.MARKED
                self.dropped += 1
                return EnqueueResult.DROPPED
        else:
            self._count = -1

        self._accept(pkt)
        return EnqueueResult.ENQUEUED

    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None when empty)."""
        pkt = super().pop(now)
        if pkt is not None and not self._q:
            self._idle_since = now
        return pkt
