"""Reference (pre-optimization) event scheduler.

:class:`ReferenceSimulator` preserves the original engine verbatim: an
``Event``-object heap ordered by Python-level ``__lt__`` calls, a fresh
``Event`` per schedule, and a fresh ``Packet`` per allocation — no free
lists, no tuple-keyed entries, no slot-free fast path.  It exists for two
jobs:

* **Benchmark baseline.**  ``python -m repro bench`` runs the same pinned
  workloads on this class and on :class:`~repro.sim.engine.Simulator`, so
  every ``BENCH_<n>.json`` records the speedup against the pre-PR engine
  measured on the same machine, same interpreter, same run.
* **Equivalence oracle.**  The scheduler property tests drive both
  engines with identical seeded schedule/cancel workloads and assert
  identical firing order and timestamps
  (``tests/sim/test_scheduler_equivalence.py``).

The optimized API surface (``schedule_fast``, ``alloc_packet``,
``free_packet``) is shimmed onto the reference semantics — same observable
behaviour, original cost model — so any scenario built for ``Simulator``
runs unchanged on ``ReferenceSimulator``.

Do not use this class for real experiments; it is deliberately slow.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.sim.engine import COMPACT_MIN_HEAP, Event, RepeatingEvent, SimulationError
from repro.sim.packet import DATA, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import EventLoopProfile

__all__ = ["ReferenceSimulator"]


class ReferenceSimulator:
    """Pre-optimization simulator: Event-object heap, no pooling.

    Drop-in API-compatible with :class:`~repro.sim.engine.Simulator`;
    see the module docstring for why it is kept.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False
        self._cancelled = 0
        self.compactions = 0
        self._profiler: Optional["EventLoopProfile"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        self._id_counters: dict[str, Iterator[int]] = {}
        self._packet_uid = itertools.count()

    def next_id(self, kind: str) -> int:
        """Next id in this simulator's ``kind`` sequence (1-based)."""
        counter = self._id_counters.get(kind)
        if counter is None:
            counter = itertools.count(1)
            self._id_counters[kind] = counter
        return next(counter)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time:.9f} < now={self.now:.9f}"
            )
        ev = Event(time, next(self._seq), fn, args)
        ev.owner = self
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Shim: the reference engine has no fast path, so this is plain
        ``schedule`` with the handle discarded (original cost model)."""
        if not 0.0 <= delay < math.inf:
            raise SimulationError(f"fast-path delay must be finite and >= 0: {delay!r}")
        self.schedule_at(self.now + delay, fn, *args)

    def schedule_every(self, interval: float, fn: Callable[..., Any], *args: Any) -> RepeatingEvent:
        """Run ``fn(*args)`` every ``interval`` sim-seconds while other
        pending work exists; see :meth:`Simulator.schedule_every`."""
        return RepeatingEvent(self, interval, fn, args)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # packet shims (no pooling)
    # ------------------------------------------------------------------
    def alloc_packet(
        self,
        flow_id: int,
        seq: int,
        size: int,
        kind: str = DATA,
        src: int = -1,
        dst: int = -1,
        created: float = 0.0,
        ecn_capable: bool = False,
        tx_id: int = 0,
        meta: Optional[object] = None,
    ) -> Packet:
        """Allocate a fresh :class:`~repro.sim.packet.Packet` (never pooled),
        with the same per-simulator uid sequence as the optimized engine."""
        return Packet(
            flow_id, seq, size, kind=kind, src=src, dst=dst, created=created,
            ecn_capable=ecn_capable, tx_id=tx_id, meta=meta,
            uid=next(self._packet_uid),
        )

    def free_packet(self, pkt: Packet) -> None:
        """Shim: the reference engine never recycles packets."""

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        heap = self._heap
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have been processed (``until`` inclusive)."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            budget = math.inf if max_events is None else max_events
            while heap and budget > 0:
                ev = heap[0]
                if ev.time > until:
                    break
                heapq.heappop(heap)
                ev.owner = None
                if ev.cancelled:
                    self._cancelled -= 1
                    if self._profiler is not None:
                        self._profiler.record_cancelled_pop()
                    continue
                self.now = ev.time
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()  # release references
                assert fn is not None
                prof = self._profiler
                if prof is None:
                    fn(*args)
                else:
                    t0 = perf_counter()
                    fn(*args)
                    prof.record_event(fn, perf_counter() - t0, len(heap))
                self.events_processed += 1
                budget -= 1
            if math.isfinite(until) and self.now < until and not (heap and budget <= 0):
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if idle."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            ev.owner = None
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self.now = ev.time
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def peek_time(self) -> float:
        """Timestamp of the next pending event, or ``inf`` when idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap).owner = None
            self._cancelled -= 1
        return heap[0].time if heap else math.inf

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of the heap occupied by cancelled corpses."""
        if not self._heap:
            return 0.0
        return self._cancelled / len(self._heap)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def profile(self) -> Iterator["EventLoopProfile"]:
        """Profile the event loop for the duration of a ``with`` block."""
        from repro.obs.profiling import EventLoopProfile

        prof = EventLoopProfile()
        previous = self._profiler
        self._profiler = prof
        prof.start(self)
        try:
            yield prof
        finally:
            prof.stop(self)
            self._profiler = previous

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live engine state as callback gauges in ``registry``."""
        self.metrics = registry
        registry.gauge("engine.events_processed", fn=lambda: self.events_processed)
        registry.gauge("engine.heap_size", fn=lambda: len(self._heap))
        registry.gauge("engine.pending", fn=lambda: self.pending)
        registry.gauge("engine.cancelled_in_heap", fn=lambda: self._cancelled)
        registry.gauge("engine.cancelled_ratio", fn=lambda: self.cancelled_ratio)
        registry.gauge("engine.compactions", fn=lambda: self.compactions)
        registry.gauge("engine.sim_time", fn=lambda: self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReferenceSimulator now={self.now:.6f} pending={self.pending}>"
