"""Trace persistence: save/load drop traces and loss-interval datasets.

Measurement campaigns are expensive; analysis is cheap and iterative.
These helpers archive a drop trace (or any loss-timestamp dataset) to a
compressed ``.npz`` with its metadata, so the analysis side —
:mod:`repro.core` — can be re-run offline without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.sim.trace import DropTrace

__all__ = [
    "save_drop_trace",
    "load_drop_trace",
    "LoadedDropTrace",
    "export_ns2_drops",
    "import_ns2_drops",
]

_FORMAT_VERSION = 1


@dataclass
class LoadedDropTrace:
    """A drop trace re-hydrated from disk (read-only array view)."""

    times: np.ndarray
    flow_ids: np.ndarray
    seqs: np.ndarray
    sizes: np.ndarray
    marked: np.ndarray
    rtt: float  # normalization constant recorded at save time (0 = unset)
    name: str

    def __len__(self) -> int:
        return len(self.times)

    def drop_times(self) -> np.ndarray:
        """Timestamps of true drops only (ECN marks excluded)."""
        return self.times[~self.marked]

    def intervals_rtt(self) -> np.ndarray:
        """RTT-normalized inter-loss intervals (requires a recorded RTT)."""
        if self.rtt <= 0:
            raise ValueError("trace was saved without an RTT; pass one explicitly")
        from repro.core.intervals import intervals_from_trace

        return intervals_from_trace(self.drop_times(), self.rtt)


def save_drop_trace(
    trace: DropTrace, path: Union[str, Path], rtt: float = 0.0
) -> Path:
    """Archive ``trace`` to ``path`` (``.npz`` appended if missing).

    ``rtt`` records the scenario's normalization constant alongside the
    data so later analysis cannot mix up units.
    """
    if rtt < 0:
        raise ValueError(f"rtt must be non-negative, got {rtt}")
    p = Path(path)
    if p.suffix != ".npz":
        p = p.with_suffix(p.suffix + ".npz")
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        p,
        version=np.int64(_FORMAT_VERSION),
        times=trace.times,
        flow_ids=trace.flow_ids,
        seqs=trace.seqs,
        sizes=trace.sizes,
        marked=trace.marked,
        rtt=np.float64(rtt),
        name=np.str_(trace.name),
    )
    return p


def load_drop_trace(path: Union[str, Path]) -> LoadedDropTrace:
    """Re-hydrate a trace archived by :func:`save_drop_trace`."""
    with np.load(Path(path), allow_pickle=False) as z:
        version = int(z["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        return LoadedDropTrace(
            times=z["times"],
            flow_ids=z["flow_ids"],
            seqs=z["seqs"],
            sizes=z["sizes"],
            marked=z["marked"].astype(bool),
            rtt=float(z["rtt"]),
            name=str(z["name"]),
        )


def export_ns2_drops(trace: DropTrace, path: Union[str, Path]) -> Path:
    """Write drops in NS-2 ASCII trace style.

    One line per record::

        d <time> 0 1 tcp <size> ---- <flow_id> 0.0 1.0 <seq> <uid>

    (event, time, from-node, to-node, type, size, flags, flow id, src,
    dst, seq, unique id — the classic ns trace columns).  Marked (ECN)
    records are omitted: NS-2 logs them as separate mark events.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    times = trace.times
    fids = trace.flow_ids
    seqs = trace.seqs
    sizes = trace.sizes
    marked = trace.marked
    with p.open("w") as fh:
        uid = 0
        for t, f, s, z, m in zip(times, fids, seqs, sizes, marked):
            if m:
                continue
            fh.write(f"d {t:.6f} 0 1 tcp {z} ---- {f} 0.0 1.0 {s} {uid}\n")
            uid += 1
    return p


def import_ns2_drops(path: Union[str, Path]) -> LoadedDropTrace:
    """Parse an NS-2 ASCII trace's drop ('d') events into a trace view.

    Only ``d`` lines are read; other event types ('+', '-', 'r') are
    skipped, so a full ns trace file works as input.
    """
    times: list[float] = []
    fids: list[int] = []
    seqs: list[int] = []
    sizes: list[int] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            parts = line.split()
            if not parts or parts[0] != "d":
                continue
            if len(parts) < 12:
                raise ValueError(f"{path}:{lineno}: short ns-2 drop record")
            times.append(float(parts[1]))
            sizes.append(int(parts[5]))
            fids.append(int(parts[7]))
            seqs.append(int(parts[10]))
    n = len(times)
    return LoadedDropTrace(
        times=np.asarray(times),
        flow_ids=np.asarray(fids, dtype=np.int64),
        seqs=np.asarray(seqs, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        marked=np.zeros(n, dtype=bool),
        rtt=0.0,
        name=str(Path(path).name),
    )
