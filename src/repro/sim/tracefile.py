"""Trace persistence: save/load drop traces and loss-interval datasets.

Measurement campaigns are expensive; analysis is cheap and iterative.
These helpers archive a drop trace (or any loss-timestamp dataset) to a
compressed ``.npz`` with its metadata, so the analysis side —
:mod:`repro.core` — can be re-run offline without re-simulating.

Writes are **atomic** (tmp file + fsync + rename): a crash mid-save
leaves either the previous file or nothing, never a half-written archive.
Loads detect truncation/corruption and raise a structured
:class:`TraceCorruptError` (carrying path and reason) instead of leaking
a raw numpy/zipfile exception into analysis code.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.sim.trace import DropTrace

__all__ = [
    "save_drop_trace",
    "load_drop_trace",
    "LoadedDropTrace",
    "TraceCorruptError",
    "export_ns2_drops",
    "import_ns2_drops",
]

_FORMAT_VERSION = 1

#: Arrays a trace archive must carry, all of equal length.
_RECORD_KEYS = ("times", "flow_ids", "seqs", "sizes", "marked")


class TraceCorruptError(RuntimeError):
    """A trace archive is truncated or corrupt.

    Attributes
    ----------
    path:
        The offending file.
    reason:
        What failed (bad container, missing field, length mismatch).
    """

    def __init__(self, path: Union[str, Path], reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt trace archive {self.path}: {reason}")


@dataclass
class LoadedDropTrace:
    """A drop trace re-hydrated from disk (read-only array view)."""

    times: np.ndarray
    flow_ids: np.ndarray
    seqs: np.ndarray
    sizes: np.ndarray
    marked: np.ndarray
    rtt: float  # normalization constant recorded at save time (0 = unset)
    name: str

    def __len__(self) -> int:
        return len(self.times)

    def drop_times(self) -> np.ndarray:
        """Timestamps of true drops only (ECN marks excluded)."""
        return self.times[~self.marked]

    def intervals_rtt(self) -> np.ndarray:
        """RTT-normalized inter-loss intervals (requires a recorded RTT)."""
        if self.rtt <= 0:
            raise ValueError("trace was saved without an RTT; pass one explicitly")
        from repro.core.intervals import intervals_from_trace

        return intervals_from_trace(self.drop_times(), self.rtt)


def save_drop_trace(
    trace: DropTrace, path: Union[str, Path], rtt: float = 0.0
) -> Path:
    """Archive ``trace`` to ``path`` (``.npz`` appended if missing).

    ``rtt`` records the scenario's normalization constant alongside the
    data so later analysis cannot mix up units.  The write is atomic:
    data lands in a same-directory temp file, is fsynced, and is renamed
    into place — a crash mid-save never leaves a truncated archive.
    """
    if rtt < 0:
        raise ValueError(f"rtt must be non-negative, got {rtt}")
    p = Path(path)
    if p.suffix != ".npz":
        p = p.with_suffix(p.suffix + ".npz")
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(f".{p.name}.tmp-{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            np.savez_compressed(
                fh,
                version=np.int64(_FORMAT_VERSION),
                times=trace.times,
                flow_ids=trace.flow_ids,
                seqs=trace.seqs,
                sizes=trace.sizes,
                marked=trace.marked,
                rtt=np.float64(rtt),
                name=np.str_(trace.name),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, p)
    finally:
        if tmp.exists():  # a failed write: leave no temp litter behind
            tmp.unlink()
    return p


def load_drop_trace(path: Union[str, Path]) -> LoadedDropTrace:
    """Re-hydrate a trace archived by :func:`save_drop_trace`.

    Raises :class:`TraceCorruptError` on a truncated or corrupt archive
    (bad zip container, missing fields, mismatched array lengths) and
    ``ValueError`` on an honest version mismatch.
    """
    p = Path(path)
    try:
        z = np.load(p, allow_pickle=False)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        # ValueError here is numpy failing to parse the container (e.g.
        # random bytes hit its pickle fallback), never a version issue —
        # the version check below runs on successfully opened archives.
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceCorruptError(p, f"unreadable npz container ({exc})") from exc
    with z:
        try:
            version = int(z["version"])
        except KeyError:
            raise TraceCorruptError(p, "missing 'version' field") from None
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise TraceCorruptError(p, f"truncated archive ({exc})") from exc
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        try:
            arrays = {k: z[k] for k in _RECORD_KEYS}
            rtt = float(z["rtt"])
            name = str(z["name"])
        except KeyError as exc:
            raise TraceCorruptError(p, f"missing field {exc.args[0]!r}") from None
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise TraceCorruptError(p, f"truncated archive ({exc})") from exc
        lengths = {k: len(v) for k, v in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise TraceCorruptError(p, f"mismatched record lengths {lengths}")
        return LoadedDropTrace(
            times=arrays["times"],
            flow_ids=arrays["flow_ids"],
            seqs=arrays["seqs"],
            sizes=arrays["sizes"],
            marked=arrays["marked"].astype(bool),
            rtt=rtt,
            name=name,
        )


def export_ns2_drops(trace: DropTrace, path: Union[str, Path]) -> Path:
    """Write drops in NS-2 ASCII trace style.

    One line per record::

        d <time> 0 1 tcp <size> ---- <flow_id> 0.0 1.0 <seq> <uid>

    (event, time, from-node, to-node, type, size, flags, flow id, src,
    dst, seq, unique id — the classic ns trace columns).  Marked (ECN)
    records are omitted: NS-2 logs them as separate mark events.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    times = trace.times
    fids = trace.flow_ids
    seqs = trace.seqs
    sizes = trace.sizes
    marked = trace.marked
    with p.open("w") as fh:
        uid = 0
        for t, f, s, z, m in zip(times, fids, seqs, sizes, marked):
            if m:
                continue
            fh.write(f"d {t:.6f} 0 1 tcp {z} ---- {f} 0.0 1.0 {s} {uid}\n")
            uid += 1
    return p


def import_ns2_drops(path: Union[str, Path]) -> LoadedDropTrace:
    """Parse an NS-2 ASCII trace's drop ('d') events into a trace view.

    Only ``d`` lines are read; other event types ('+', '-', 'r') are
    skipped, so a full ns trace file works as input.
    """
    times: list[float] = []
    fids: list[int] = []
    seqs: list[int] = []
    sizes: list[int] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            parts = line.split()
            if not parts or parts[0] != "d":
                continue
            if len(parts) < 12:
                raise ValueError(f"{path}:{lineno}: short ns-2 drop record")
            times.append(float(parts[1]))
            sizes.append(int(parts[5]))
            fids.append(int(parts[7]))
            seqs.append(int(parts[10]))
    n = len(times)
    return LoadedDropTrace(
        times=np.asarray(times),
        flow_ids=np.asarray(fids, dtype=np.int64),
        seqs=np.asarray(seqs, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        marked=np.zeros(n, dtype=bool),
        rtt=0.0,
        name=str(Path(path).name),
    )
