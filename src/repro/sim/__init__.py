"""Discrete-event network simulator substrate (NS-2 equivalent).

The paper's measurements require a packet-level simulator with:

* an event scheduler with deterministic ordering,
* store-and-forward links (transmission + propagation delay),
* finite-buffer queues (DropTail and RED, optionally ECN-marking),
* a dumbbell topology builder matching the paper's Figure 1,
* per-drop timestamped traces and per-flow throughput accounting.

Everything here is self-contained Python; see ``repro.tcp`` for the
transport protocols that run on top of it.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.fluid import FluidClass, FluidResult, FluidScenario, run_fluid
from repro.sim.link import Link
from repro.sim.reference import ReferenceSimulator
from repro.sim.node import Host, Node, Router
from repro.sim.packet import Packet
from repro.sim.queues import (
    DropTailQueue,
    EnqueueResult,
    FluidNotSupported,
    Queue,
    REDQueue,
)
from repro.sim.rng import RngStreams
from repro.sim.topology import (
    Dumbbell,
    DumbbellConfig,
    Star,
    StarConfig,
    StarHost,
    build_dumbbell,
    build_star,
)
from repro.sim.trace import DelayTrace, DropTrace, FlowStats, ThroughputTrace
from repro.sim.tracefile import LoadedDropTrace, load_drop_trace, save_drop_trace

__all__ = [
    "DelayTrace",
    "DropTailQueue",
    "DropTrace",
    "LoadedDropTrace",
    "Dumbbell",
    "DumbbellConfig",
    "EnqueueResult",
    "Event",
    "FlowStats",
    "FluidClass",
    "FluidNotSupported",
    "FluidResult",
    "FluidScenario",
    "Host",
    "Link",
    "Node",
    "Packet",
    "Queue",
    "REDQueue",
    "ReferenceSimulator",
    "RngStreams",
    "Router",
    "Simulator",
    "Star",
    "StarConfig",
    "StarHost",
    "ThroughputTrace",
    "build_dumbbell",
    "build_star",
    "load_drop_trace",
    "run_fluid",
    "save_drop_trace",
]
