"""Mean-field fluid backend: O(classes)-per-step many-flows engine.

The packet engine (:mod:`repro.sim.engine`) costs O(N) events per RTT
for N flows; at the populations where the paper's *implications* live
(thousands to millions of flows sharing one buffer) that is the wall
BENCH_3 left standing.  This module steps the mean-field limit instead,
following the two PAPERS.md oracles:

* **McDonald–Reynier** — as N grows, per-flow windows decouple and the
  queue sees only the *aggregate* arrival rate, so one window ODE per
  flow *class* plus one queue-occupancy ODE captures the system
  (propagation of chaos).
* **Lautenschlaeger** — under the weak-convergence scaling (capacity
  and buffer grown proportionally to N) the stochastic packet system
  converges to this deterministic fluid limit, which is exactly what
  the convergence suite in ``tests/experiments/test_manyflows.py``
  measures over N = 100 → 1k → 10k.

Per step the engine computes, for class arrays ``W``/``ssthresh`` and
scalar queue ``q``:

1. effective RTT ``R = R0 + q/C`` and per-flow rate ``a = W/R``;
2. the queue's early-drop probability from its registered fluid law
   (:func:`repro.sim.queues.make_fluid_law` — the *same* RED ramp the
   packet queue flips coins against);
3. an exact-per-step queue update (drain-to-empty and overflow handled
   in closed form, not by clamping after the fact) so the conservation
   identity *offered = delivered + dropped + Δq* holds to float
   rounding at every step — the fluid analogue of the packet engine's
   ``arrived == enqueued + dropped`` invariant;
4. per-class loss feedback delayed by one propagation RTT, thinned to
   *loss events* via ``eta = (1 - exp(-delta R)) / R`` (a window halves
   at most once per RTT however many drops land in it — the fluid form
   of NewReno's per-window cut), driving the AIMD decrease from the
   protocol's :class:`~repro.tcp.fluid_maps.FluidWindowMap`.

Everything is deterministic: no RNG, so identical scenarios produce
identical bytes, and halving ``dt`` must move results only within the
integrator's tolerance (property-tested).

>>> scn = FluidScenario(
...     classes=(FluidClass("near", "newreno", n=500, rtt=0.06),
...              FluidClass("far", "newreno", n=500, rtt=0.14)),
...     capacity_bps=500 * 400e3, buffer_pkts=2500)
>>> res = run_fluid(scn)
>>> res.flows, round(sum(res.throughput_share), 6)
(1000, 1.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.queues import FluidQueueLaw, make_fluid_law
from repro.tcp.fluid_maps import FluidWindowMap, make_fluid_map

__all__ = [
    "FluidClass",
    "FluidScenario",
    "FluidResult",
    "run_fluid",
]


@dataclass(frozen=True)
class FluidClass:
    """One homogeneous flow population sharing the bottleneck.

    ``sender`` is a :mod:`repro.tcp.registry` name with a registered
    fluid window map (reno/newreno/paced); ``rtt`` is the two-way
    propagation delay excluding queueing; ``start`` staggers class
    activation; ``w0`` seeds the mean window (packets).  ``w_max`` is
    the receiver-window cap and ``ssthresh0`` the initial slow-start
    threshold — both default to effectively unbounded, and both map
    one-to-one onto the packet senders' ``max_cwnd`` /
    ``initial_ssthresh`` so a convergence pair runs identical caps.
    """

    name: str
    sender: str
    n: int
    rtt: float
    start: float = 0.0
    w0: float = 2.0
    w_max: float = 1e9
    ssthresh0: float = 1e9

    def __post_init__(self):
        if self.n < 1:
            raise ValueError(f"class {self.name!r} needs n >= 1, got {self.n}")
        if self.rtt <= 0:
            raise ValueError(f"class {self.name!r} needs rtt > 0, got {self.rtt}")
        if self.w0 < 1.0:
            raise ValueError(f"class {self.name!r} needs w0 >= 1, got {self.w0}")
        if self.w_max < self.w0:
            raise ValueError(
                f"class {self.name!r} needs w_max >= w0, got {self.w_max}"
            )


@dataclass(frozen=True)
class FluidScenario:
    """A many-flows bottleneck scenario for the fluid backend.

    Mirrors the packet drivers' dumbbell vocabulary: ``capacity_bps``
    and ``buffer_pkts`` describe the shared bottleneck, ``queue`` is a
    :func:`repro.sim.queues.make_queue` kind (resolved through
    :func:`~repro.sim.queues.make_fluid_law`, so kinds without a
    mean-field reduction raise
    :class:`~repro.sim.queues.FluidNotSupported` at validation time,
    not mid-run).  ``warmup`` defaults to 30% of ``duration``; measured
    quantities (throughput share, loss-event rate) cover
    ``[warmup, duration]`` only.
    """

    classes: tuple[FluidClass, ...]
    capacity_bps: float
    buffer_pkts: int
    queue: str = "droptail"
    queue_kwargs: dict = field(default_factory=dict)
    packet_size: int = 1000
    duration: float = 5.0
    dt: float = 0.005
    warmup: Optional[float] = None

    def __post_init__(self):
        if not self.classes:
            raise ValueError("scenario needs at least one flow class")
        if self.capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bps}")
        if self.dt <= 0 or self.dt > min(c.rtt for c in self.classes):
            raise ValueError(
                f"dt={self.dt} must be positive and <= the smallest class "
                f"RTT ({min(c.rtt for c in self.classes)})"
            )
        if self.duration <= self.dt:
            raise ValueError("duration must exceed dt")

    @property
    def capacity_pps(self) -> float:
        """Bottleneck service rate in packets per second."""
        return self.capacity_bps / (8.0 * self.packet_size)

    @property
    def warmup_s(self) -> float:
        """Effective warmup (explicit value or 30% of duration)."""
        return 0.3 * self.duration if self.warmup is None else self.warmup

    @property
    def flows(self) -> int:
        """Total flow count across classes."""
        return sum(c.n for c in self.classes)

    def window_maps(self) -> tuple[FluidWindowMap, ...]:
        """Resolve per-class window maps (raises FluidNotSupported early)."""
        return tuple(make_fluid_map(c.sender) for c in self.classes)

    def queue_law(self) -> FluidQueueLaw:
        """Resolve the queue's fluid drop law (raises FluidNotSupported early)."""
        return make_fluid_law(
            self.queue, self.buffer_pkts,
            service_rate_pps=self.capacity_pps, **self.queue_kwargs,
        )

    def validate(self) -> None:
        """Fail fast on any component without a mean-field reduction."""
        self.window_maps()
        self.queue_law()


@dataclass
class FluidResult:
    """Outputs of one fluid run, aligned with the packet-engine metrics.

    ``throughput_share`` and ``class_loss_event_rate`` (per-flow loss
    *events* — window cuts — per second, the mean of the thinned
    feedback rate ``eta`` over the measurement window) are the two
    convergence observables; ``residuals`` is the per-step conservation
    defect
    (packets) that the invariant tests pin to float rounding.  Traces
    (``times``/``q_trace``/``w_trace``/``drop_rate_trace``) are full
    resolution — one entry per step — for plotting and the tutorial.
    """

    class_names: tuple[str, ...]
    class_n: tuple[int, ...]
    flows: int
    steps: int
    dt: float
    duration: float
    warmup: float
    throughput_pps: tuple[float, ...]
    throughput_share: tuple[float, ...]
    class_loss_event_rate: tuple[float, ...]
    loss_event_count: int
    loss_event_rate: float
    loss_rate: float
    offered_pkts: float
    delivered_pkts: float
    dropped_pkts: float
    max_residual: float
    residuals: np.ndarray
    times: np.ndarray
    q_trace: np.ndarray
    w_trace: np.ndarray
    drop_rate_trace: np.ndarray
    #: Per-class delivered rate (packets/s), shape (steps, classes).
    x_trace: np.ndarray


def _loss_events(times: np.ndarray, drop_rate: np.ndarray, *,
                 min_gap: float, t_lo: float) -> int:
    """Count drop episodes, merging gaps shorter than ``min_gap``.

    The fluid twin of ``repro.analysis`` ``event_spans``: a loss *event*
    is a maximal span of positive aggregate drop rate, with sub-RTT
    lulls merged, counted if it starts after ``t_lo``.
    """
    active = drop_rate > 0.0
    if not active.any():
        return 0
    idx = np.flatnonzero(active)
    t = times[idx]
    # A new event starts wherever the gap to the previous active step
    # exceeds min_gap; the first active step always starts one.
    starts = np.empty(len(t), dtype=bool)
    starts[0] = True
    np.greater(t[1:] - t[:-1], min_gap, out=starts[1:])
    return int(np.count_nonzero(t[starts] >= t_lo))


def run_fluid(scenario: FluidScenario) -> FluidResult:
    """Integrate the mean-field ODE system and measure the observables."""
    classes = scenario.classes
    K = len(classes)
    maps = scenario.window_maps()
    law = scenario.queue_law()
    law.reset()

    dt = scenario.dt
    steps = int(round(scenario.duration / dt))
    C = scenario.capacity_pps
    B = float(scenario.buffer_pkts)
    warmup = scenario.warmup_s

    n = np.array([c.n for c in classes], dtype=np.float64)
    rtt0 = np.array([c.rtt for c in classes], dtype=np.float64)
    start = np.array([c.start for c in classes], dtype=np.float64)
    W = np.array([c.w0 for c in classes], dtype=np.float64)
    w_max = np.array([c.w_max for c in classes], dtype=np.float64)
    ssthresh = np.array([c.ssthresh0 for c in classes], dtype=np.float64)
    beta = np.array([m.beta for m in maps], dtype=np.float64)
    # One propagation RTT of feedback delay, at least one step.
    delay = np.maximum(1, np.rint(rtt0 / dt).astype(np.int64))

    # Per-class per-flow drop-rate history for delayed feedback.
    H = np.zeros((steps + 1, K))
    residuals = np.empty(steps)
    q_trace = np.empty(steps)
    w_trace = np.empty((steps, K))
    drop_rate_trace = np.empty(steps)
    x_trace = np.empty((steps, K))
    times = (np.arange(steps, dtype=np.float64) + 1.0) * dt

    q = 0.0
    offered_t = delivered_t = dropped_t = 0.0
    delivered_k = np.zeros(K)
    eta_sum = np.zeros(K)
    measure_steps = 0
    row = np.arange(K)
    growth_fns = [m.growth for m in maps]
    shared_growth = growth_fns[0] if all(
        g is growth_fns[0] for g in growth_fns) else None

    for i in range(steps):
        t = i * dt
        active = t >= start
        R = rtt0 + q / C
        A_k = np.where(active, n * W / R, 0.0)
        A = float(A_k.sum())

        p = law.drop_probability(q, A, dt) if A > 0.0 else 0.0
        I = (1.0 - p) * A

        # Exact per-step queue bookkeeping (packets).
        overflow = 0.0
        if q <= 0.0 and I <= C:
            served = I * dt
            q_new = 0.0
        else:
            q_raw = q + (I - C) * dt
            if q_raw < 0.0:
                served = q + I * dt
                q_new = 0.0
            elif q_raw > B:
                overflow = (q_raw - B) / dt
                served = C * dt
                q_new = B
            else:
                served = C * dt
                q_new = q_raw

        offered = A * dt
        early = p * A * dt
        over = overflow * dt
        residuals[i] = offered - early - over - served - (q_new - q)

        if A > 0.0:
            share = A_k / A
            delta = (p * A_k + overflow * share) / n
        else:
            share = np.zeros(K)
            delta = np.zeros(K)
        H[i + 1] = delta

        offered_t += offered
        dropped_t += early + over
        delivered_t += served
        if t >= warmup:
            delivered_k += served * share
            measure_steps += 1

        # Delayed loss feedback, thinned to at most one event per RTT.
        delta_d = H[np.maximum(i + 1 - delay, 0), row]
        eta = -np.expm1(-delta_d * R) / R
        if t >= warmup:
            eta_sum += eta
        if shared_growth is not None:
            growth = shared_growth(W, ssthresh, R)
        else:
            growth = np.empty(K)
            for k in range(K):
                growth[k] = growth_fns[k](W[k:k + 1], ssthresh[k:k + 1],
                                          R[k:k + 1])[0]
        growth = np.where(active, growth, 0.0)
        hit = active & (delta_d > 0.0)
        ssthresh = np.where(hit, np.maximum(2.0, beta * W), ssthresh)
        W = np.clip(W + (growth - (1.0 - beta) * W * eta) * dt, 1.0, w_max)

        q_trace[i] = q_new
        w_trace[i] = W
        drop_rate_trace[i] = p * A + overflow
        x_trace[i] = served * share / dt
        q = q_new

    measured = max(measure_steps * dt, dt)
    total_delivered = float(delivered_k.sum())
    share_out = (delivered_k / total_delivered if total_delivered > 0
                 else np.zeros(K))
    events = _loss_events(times, drop_rate_trace,
                          min_gap=float(rtt0.min()), t_lo=warmup)

    return FluidResult(
        class_names=tuple(c.name for c in classes),
        class_n=tuple(c.n for c in classes),
        flows=scenario.flows,
        steps=steps,
        dt=dt,
        duration=scenario.duration,
        warmup=warmup,
        throughput_pps=tuple(float(delivered_k[k] / measured / n[k])
                             for k in range(K)),
        throughput_share=tuple(float(s) for s in share_out),
        class_loss_event_rate=tuple(
            float(e) for e in eta_sum / max(measure_steps, 1)),
        loss_event_count=events,
        loss_event_rate=events / measured,
        loss_rate=(dropped_t / offered_t if offered_t > 0 else 0.0),
        offered_pkts=offered_t,
        delivered_pkts=delivered_t,
        dropped_pkts=dropped_t,
        max_residual=float(np.abs(residuals).max()) if steps else 0.0,
        residuals=residuals,
        times=times,
        q_trace=q_trace,
        w_trace=w_trace,
        drop_rate_trace=drop_rate_trace,
        x_trace=x_trace,
    )
