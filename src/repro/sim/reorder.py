"""Reordering link: delivery-order perturbation for robustness studies.

The paper's loss-detection story assumes FIFO paths, where three duplicate
ACKs imply a drop.  Real Internet paths occasionally reorder packets
(parallel router fabrics, route changes), producing dupACK runs *without*
loss — spurious fast retransmits that window-based TCP must survive.
:class:`ReorderingLink` adds an independent random extra delay to a
fraction of packets so later packets can overtake them, letting the test
suite inject exactly that failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.sim.link import Link
from repro.sim.packet import Packet

__all__ = ["ReorderingLink"]


class ReorderingLink(Link):
    """Link that delays a random subset of packets by an extra lag.

    Parameters (beyond :class:`repro.sim.link.Link`'s):

    reorder_prob:
        Per-packet probability of receiving the extra lag.
    extra_delay:
        Additional propagation delay (seconds) for lagged packets — set it
        above a few serialization times to make overtaking likely.
    """

    def __init__(
        self,
        *args,
        rng: np.random.Generator,
        reorder_prob: float = 0.01,
        extra_delay: float = 0.005,
        **kw,
    ):
        super().__init__(*args, **kw)
        if not (0.0 <= reorder_prob <= 1.0):
            raise ValueError(f"reorder_prob must be in [0, 1], got {reorder_prob}")
        if extra_delay <= 0:
            raise ValueError(f"extra_delay must be positive, got {extra_delay}")
        self.rng = rng
        self.reorder_prob = float(reorder_prob)
        self.extra_delay = float(extra_delay)
        self.reordered = 0

    def _transmission_done(self, pkt: Packet) -> None:
        self.bytes_forwarded += pkt.size
        self.packets_forwarded += 1
        lag = 0.0
        if self.reorder_prob > 0.0 and self.rng.random() < self.reorder_prob:
            lag = self.extra_delay
            self.reordered += 1
        self.sim.schedule_fast(self.delay + lag, self.dst.receive, pkt, self)
        nxt = self.queue.pop(self.sim.now)
        if nxt is not None:
            self._transmit(nxt)
        else:
            self.busy = False
