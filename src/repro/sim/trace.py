"""Measurement instrumentation: drop traces, throughput series, flow stats.

The paper's primary dataset is the router drop trace — a timestamp for every
packet dropped at the bottleneck (§3.1: "We record traces from the simulated
routers for each event in which a packet is dropped").  Traces are stored
**columnar**: fields accumulate in typed ``array.array`` columns (~8 bytes
per value instead of a per-record Python object) behind a small
write-behind stage of plain lists that is folded in vectorized on first
read, and convert to NumPy arrays on demand, following the HPC guides'
"simulate in objects, analyze in arrays" split.  The row-record view is
kept as a lazy iterator (:meth:`DropTrace.records`) for debugging and
tests; analysis code should use the column properties.
"""

from __future__ import annotations

from array import array
from typing import Iterator, NamedTuple, Optional

import numpy as np

from repro.sim.packet import Packet

__all__ = [
    "DropTrace",
    "DropRecord",
    "ThroughputTrace",
    "FlowStats",
    "ArrivalTrace",
    "DelayTrace",
]

#: Kind codes in a drop trace's ``kinds`` column.
KIND_DROP = 0
KIND_MARK = 1


def _col_f64(col: array) -> np.ndarray:
    """Materialize a float64 ``array('d')`` column as an owning ndarray.

    The copy matters: ``np.frombuffer`` exports the column's buffer, and a
    live export would lock the ``array.array`` against further appends
    (``BufferError`` in the hot path).
    """
    return np.frombuffer(col, dtype=np.float64).copy()


def _col_i64(col: array) -> np.ndarray:
    """Materialize an int64 ``array('q')`` column as an owning ndarray."""
    return np.frombuffer(col, dtype=np.int64).copy()


class DropRecord(NamedTuple):
    """One row of a :class:`DropTrace`, materialized on demand."""

    time: float
    flow_id: int
    seq: int
    size: int
    marked: bool


class DropTrace:
    """Timestamped record of every packet dropped (or ECN-marked) at a queue.

    Storage is columnar with a write-behind stage: records land in plain
    Python lists (the fastest append CPython offers), and the first *read*
    folds the staged rows into the typed ``array.array`` columns in one
    vectorized pass per column.  Steady-state footprint is the typed
    columns (~33 bytes per record); the stage only holds rows appended
    since the last read.  ECN marks are staged sparsely (marks are rare —
    most records are drops), so the hot path is four list appends and a
    branch.  The ``times``/``flow_ids``/``seqs``/``sizes``/``marked``
    properties return fresh NumPy arrays; iterate :meth:`records` for a
    row view.
    """

    def __init__(self, name: str = "drops"):
        self.name = name
        self._times = array("d")
        self._flow_ids = array("q")
        self._seqs = array("q")
        self._sizes = array("q")
        # Kind codes (KIND_DROP / KIND_MARK): one signed byte per record.
        self._kinds = array("b")
        # Write-behind stage: rows since the last read, one list per
        # column, plus the absolute indices of ECN-marked records.
        self._stage_times: list[float] = []
        self._stage_flow_ids: list[int] = []
        self._stage_seqs: list[int] = []
        self._stage_sizes: list[int] = []
        self._stage_marks: list[int] = []
        self._bind_record()

    def _bind_record(self) -> None:
        # Hot-path closure: ``record`` is called once per drop from inside
        # the event loop, so the per-call attribute lookups
        # (self._stage_times.append, ...) are hoisted into closure
        # defaults, bound once here.  The instance attribute shadows the
        # class method; the lists the defaults capture are the live ones,
        # so ``_flush`` must clear them in place, never replace them.
        # Subclasses that override ``record`` (e.g. QuantizedDropTrace)
        # must keep their override visible, so skip the binding for them —
        # their ``super().record(...)`` lands on the class-level fallback.
        if type(self).record is not DropTrace.record:
            return
        def record(
            pkt: Packet,
            now: float,
            marked: bool = False,
            _t=self._stage_times.append,
            _f=self._stage_flow_ids.append,
            _s=self._stage_seqs.append,
            _z=self._stage_sizes.append,
        ) -> None:
            """Append one record at the given timestamp."""
            _t(now)
            _f(pkt.flow_id)
            _s(pkt.seq)
            _z(pkt.size)
            if marked:
                self._stage_marks.append(
                    len(self._times) + len(self._stage_times) - 1
                )

        self.record = record

    def record(self, pkt: Packet, now: float, marked: bool = False) -> None:
        """Append one record at the given timestamp (class-level fallback;
        instances carry a bound fast path installed by ``_bind_record``)."""
        self._stage_times.append(now)
        self._stage_flow_ids.append(pkt.flow_id)
        self._stage_seqs.append(pkt.seq)
        self._stage_sizes.append(pkt.size)
        if marked:
            self._stage_marks.append(
                len(self._times) + len(self._stage_times) - 1
            )

    def _flush(self) -> None:
        """Fold staged rows into the typed columns (one pass per column)."""
        staged = self._stage_times
        if not staged:
            return
        kinds = np.zeros(len(staged), dtype=np.int8)
        if self._stage_marks:
            idx = np.asarray(self._stage_marks, dtype=np.int64)
            kinds[idx - len(self._kinds)] = KIND_MARK
            self._stage_marks.clear()
        self._times.frombytes(np.asarray(staged, dtype=np.float64).tobytes())
        self._flow_ids.frombytes(
            np.asarray(self._stage_flow_ids, dtype=np.int64).tobytes()
        )
        self._seqs.frombytes(
            np.asarray(self._stage_seqs, dtype=np.int64).tobytes()
        )
        self._sizes.frombytes(
            np.asarray(self._stage_sizes, dtype=np.int64).tobytes()
        )
        self._kinds.frombytes(kinds.tobytes())
        staged.clear()
        self._stage_flow_ids.clear()
        self._stage_seqs.clear()
        self._stage_sizes.clear()

    # Closures don't pickle: drop the bound fast path for transport (the
    # multiprocessing drivers ship traces between workers) and re-bind on
    # arrival.  Flush first so the pickle carries compact typed columns.
    def __getstate__(self) -> dict:
        self._flush()
        state = self.__dict__.copy()
        state.pop("record", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._bind_record()

    def __len__(self) -> int:
        return len(self._times) + len(self._stage_times)

    # -- array views --------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Drop timestamps (seconds), in event order (non-decreasing)."""
        self._flush()
        return _col_f64(self._times)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        self._flush()
        return _col_i64(self._flow_ids)

    @property
    def seqs(self) -> np.ndarray:
        """Per-record sequence numbers as an int64 array."""
        self._flush()
        return _col_i64(self._seqs)

    @property
    def sizes(self) -> np.ndarray:
        """Per-record packet sizes (bytes) as an int64 array."""
        self._flush()
        return _col_i64(self._sizes)

    @property
    def kinds(self) -> np.ndarray:
        """Per-record kind codes (:data:`KIND_DROP` / :data:`KIND_MARK`)."""
        self._flush()
        return np.frombuffer(self._kinds, dtype=np.int8).copy()

    @property
    def marked(self) -> np.ndarray:
        """Per-record ECN-marked flags as a bool array."""
        self._flush()
        return np.frombuffer(self._kinds, dtype=np.int8) == KIND_MARK

    def records(self) -> Iterator[DropRecord]:
        """Lazy row view: yield one :class:`DropRecord` per record."""
        self._flush()
        for i in range(len(self._times)):
            yield DropRecord(
                self._times[i],
                self._flow_ids[i],
                self._seqs[i],
                self._sizes[i],
                self._kinds[i] == KIND_MARK,
            )

    def drop_times(self) -> np.ndarray:
        """Timestamps of true drops only (ECN marks excluded)."""
        t = self.times
        m = self.marked
        return t[~m]

    def flows_hit(self) -> np.ndarray:
        """Distinct flow ids that lost at least one packet."""
        return np.unique(self.flow_ids)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DropTrace {self.name}: {len(self)} records>"


class ArrivalTrace:
    """Timestamped record of packet arrivals at a queue (for burstiness
    analysis of the *arrival* process, e.g. validating Figures 5/6).
    Columnar storage, like :class:`DropTrace`."""

    def __init__(self, name: str = "arrivals"):
        self.name = name
        self._times = array("d")
        self._flow_ids = array("q")

    def record(self, pkt: Packet, now: float) -> None:
        """Append one record at the given timestamp."""
        self._times.append(now)
        self._flow_ids.append(pkt.flow_id)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Record timestamps (seconds) in event order."""
        return _col_f64(self._times)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        return _col_i64(self._flow_ids)


class DelayTrace:
    """Per-packet one-way delays observed at a receiver.

    Records ``arrival_time - pkt.created``; the queueing component is the
    excess over the observed minimum (propagation + serialization floor).
    The direct observable behind bufferbloat and the delay-based control
    of :mod:`repro.tcp.fast`.  Columnar storage, like :class:`DropTrace`.
    """

    def __init__(self, name: str = "delay"):
        self.name = name
        self._times = array("d")
        self._delays = array("d")
        self._flow_ids = array("q")

    def record(self, pkt: Packet, now: float) -> None:
        """Append one record at the given timestamp."""
        self._times.append(now)
        self._delays.append(now - pkt.created)
        self._flow_ids.append(pkt.flow_id)

    def __len__(self) -> int:
        return len(self._delays)

    @property
    def times(self) -> np.ndarray:
        """Record timestamps (seconds) in event order."""
        return _col_f64(self._times)

    @property
    def delays(self) -> np.ndarray:
        """Per-packet one-way delays (seconds)."""
        return _col_f64(self._delays)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        return _col_i64(self._flow_ids)

    def queueing_delays(self) -> np.ndarray:
        """Delays minus the observed floor (per-trace propagation bound)."""
        d = self.delays
        if len(d) == 0:
            return d
        return d - d.min()

    def percentile(self, q: float) -> float:
        """Delay percentile (NaN on an empty trace)."""
        d = self.delays
        if len(d) == 0:
            return float("nan")
        return float(np.percentile(d, q))


class ThroughputTrace:
    """Bytes delivered per fixed-width time bin, per flow group.

    Used for the paper's Figure 7 (aggregate throughput of the paced group
    vs. the NewReno group over time).  Flows are assigned to integer groups;
    per-bin byte counts convert to Mbps series on demand.
    """

    def __init__(self, bin_width: float = 0.5, name: str = "throughput"):
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        self.bin_width = float(bin_width)
        self.name = name
        self._groups: dict[int, dict[int, int]] = {}  # group -> bin -> bytes
        self._flow_group: dict[int, int] = {}

    def assign(self, flow_id: int, group: int) -> None:
        """Assign ``flow_id`` to throughput group ``group``."""
        self._flow_group[flow_id] = group
        self._groups.setdefault(group, {})

    def record(self, flow_id: int, nbytes: int, now: float) -> None:
        """Append one record at the given timestamp."""
        group = self._flow_group.get(flow_id)
        if group is None:
            return
        b = int(now / self.bin_width)
        bins = self._groups[group]
        bins[b] = bins.get(b, 0) + nbytes

    def groups(self) -> list[int]:
        """Sorted group ids with recorded throughput."""
        return sorted(self._groups)

    def series(self, group: int, until: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(bin_centers_seconds, mbps)`` for a group."""
        bins = self._groups.get(group, {})
        if until is None:
            last = max(bins) if bins else 0
        else:
            last = int(until / self.bin_width)
        idx = np.arange(last + 1)
        counts = np.zeros(last + 1, dtype=np.float64)
        for b, nbytes in bins.items():
            if b <= last:
                counts[b] = nbytes
        mbps = counts * 8.0 / self.bin_width / 1e6
        centers = (idx + 0.5) * self.bin_width
        return centers, mbps

    def total_bytes(self, group: int) -> int:
        """Total bytes delivered to the given group."""
        return sum(self._groups.get(group, {}).values())

    def mean_mbps(self, group: int, duration: float) -> float:
        """Mean delivered rate of a group over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_bytes(group) * 8.0 / duration / 1e6


class FlowStats:
    """Per-flow accounting kept by sources and sinks."""

    __slots__ = (
        "flow_id",
        "packets_sent",
        "bytes_sent",
        "packets_received",
        "bytes_received",
        "retransmissions",
        "timeouts",
        "fast_retransmits",
        "start_time",
        "finish_time",
        "rtt_samples",
    )

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.rtt_samples: list[float] = []

    @property
    def completion_time(self) -> Optional[float]:
        """Transfer duration (None until the flow finishes)."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def mean_rtt(self) -> float:
        """Mean of the flow's RTT samples (NaN if none were taken)."""
        if not self.rtt_samples:
            return float("nan")
        return float(np.mean(self.rtt_samples))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FlowStats flow={self.flow_id} sent={self.packets_sent} "
            f"recv={self.packets_received} retx={self.retransmissions}>"
        )
