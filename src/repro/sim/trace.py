"""Measurement instrumentation: drop traces, throughput series, flow stats.

The paper's primary dataset is the router drop trace — a timestamp for every
packet dropped at the bottleneck (§3.1: "We record traces from the simulated
routers for each event in which a packet is dropped").  Traces accumulate in
plain Python lists during the simulation (cheap appends) and convert to NumPy
arrays once for analysis, following the HPC guides' "simulate in objects,
analyze in arrays" split.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.packet import Packet

__all__ = ["DropTrace", "ThroughputTrace", "FlowStats", "ArrivalTrace", "DelayTrace"]


class DropTrace:
    """Timestamped record of every packet dropped (or ECN-marked) at a queue."""

    def __init__(self, name: str = "drops"):
        self.name = name
        self._times: list[float] = []
        self._flow_ids: list[int] = []
        self._seqs: list[int] = []
        self._sizes: list[int] = []
        self._marked: list[bool] = []

    def record(self, pkt: Packet, now: float, marked: bool = False) -> None:
        """Append one record at the given timestamp."""
        self._times.append(now)
        self._flow_ids.append(pkt.flow_id)
        self._seqs.append(pkt.seq)
        self._sizes.append(pkt.size)
        self._marked.append(marked)

    def __len__(self) -> int:
        return len(self._times)

    # -- array views --------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Drop timestamps (seconds), in event order (non-decreasing)."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        return np.asarray(self._flow_ids, dtype=np.int64)

    @property
    def seqs(self) -> np.ndarray:
        """Per-record sequence numbers as an int64 array."""
        return np.asarray(self._seqs, dtype=np.int64)

    @property
    def sizes(self) -> np.ndarray:
        """Per-record packet sizes (bytes) as an int64 array."""
        return np.asarray(self._sizes, dtype=np.int64)

    @property
    def marked(self) -> np.ndarray:
        """Per-record ECN-marked flags as a bool array."""
        return np.asarray(self._marked, dtype=bool)

    def drop_times(self) -> np.ndarray:
        """Timestamps of true drops only (ECN marks excluded)."""
        t = self.times
        m = self.marked
        return t[~m]

    def flows_hit(self) -> np.ndarray:
        """Distinct flow ids that lost at least one packet."""
        return np.unique(self.flow_ids)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DropTrace {self.name}: {len(self)} records>"


class ArrivalTrace:
    """Timestamped record of packet arrivals at a queue (for burstiness
    analysis of the *arrival* process, e.g. validating Figures 5/6)."""

    def __init__(self, name: str = "arrivals"):
        self.name = name
        self._times: list[float] = []
        self._flow_ids: list[int] = []

    def record(self, pkt: Packet, now: float) -> None:
        """Append one record at the given timestamp."""
        self._times.append(now)
        self._flow_ids.append(pkt.flow_id)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Record timestamps (seconds) in event order."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        return np.asarray(self._flow_ids, dtype=np.int64)


class DelayTrace:
    """Per-packet one-way delays observed at a receiver.

    Records ``arrival_time - pkt.created``; the queueing component is the
    excess over the observed minimum (propagation + serialization floor).
    The direct observable behind bufferbloat and the delay-based control
    of :mod:`repro.tcp.fast`.
    """

    def __init__(self, name: str = "delay"):
        self.name = name
        self._times: list[float] = []
        self._delays: list[float] = []
        self._flow_ids: list[int] = []

    def record(self, pkt: Packet, now: float) -> None:
        """Append one record at the given timestamp."""
        self._times.append(now)
        self._delays.append(now - pkt.created)
        self._flow_ids.append(pkt.flow_id)

    def __len__(self) -> int:
        return len(self._delays)

    @property
    def times(self) -> np.ndarray:
        """Record timestamps (seconds) in event order."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def delays(self) -> np.ndarray:
        """Per-packet one-way delays (seconds)."""
        return np.asarray(self._delays, dtype=np.float64)

    @property
    def flow_ids(self) -> np.ndarray:
        """Per-record flow ids as an int64 array."""
        return np.asarray(self._flow_ids, dtype=np.int64)

    def queueing_delays(self) -> np.ndarray:
        """Delays minus the observed floor (per-trace propagation bound)."""
        d = self.delays
        if len(d) == 0:
            return d
        return d - d.min()

    def percentile(self, q: float) -> float:
        """Delay percentile (NaN on an empty trace)."""
        d = self.delays
        if len(d) == 0:
            return float("nan")
        return float(np.percentile(d, q))


class ThroughputTrace:
    """Bytes delivered per fixed-width time bin, per flow group.

    Used for the paper's Figure 7 (aggregate throughput of the paced group
    vs. the NewReno group over time).  Flows are assigned to integer groups;
    per-bin byte counts convert to Mbps series on demand.
    """

    def __init__(self, bin_width: float = 0.5, name: str = "throughput"):
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        self.bin_width = float(bin_width)
        self.name = name
        self._groups: dict[int, dict[int, int]] = {}  # group -> bin -> bytes
        self._flow_group: dict[int, int] = {}

    def assign(self, flow_id: int, group: int) -> None:
        """Assign ``flow_id`` to throughput group ``group``."""
        self._flow_group[flow_id] = group
        self._groups.setdefault(group, {})

    def record(self, flow_id: int, nbytes: int, now: float) -> None:
        """Append one record at the given timestamp."""
        group = self._flow_group.get(flow_id)
        if group is None:
            return
        b = int(now / self.bin_width)
        bins = self._groups[group]
        bins[b] = bins.get(b, 0) + nbytes

    def groups(self) -> list[int]:
        """Sorted group ids with recorded throughput."""
        return sorted(self._groups)

    def series(self, group: int, until: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(bin_centers_seconds, mbps)`` for a group."""
        bins = self._groups.get(group, {})
        if until is None:
            last = max(bins) if bins else 0
        else:
            last = int(until / self.bin_width)
        idx = np.arange(last + 1)
        counts = np.zeros(last + 1, dtype=np.float64)
        for b, nbytes in bins.items():
            if b <= last:
                counts[b] = nbytes
        mbps = counts * 8.0 / self.bin_width / 1e6
        centers = (idx + 0.5) * self.bin_width
        return centers, mbps

    def total_bytes(self, group: int) -> int:
        """Total bytes delivered to the given group."""
        return sum(self._groups.get(group, {}).values())

    def mean_mbps(self, group: int, duration: float) -> float:
        """Mean delivered rate of a group over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_bytes(group) * 8.0 / duration / 1e6


class FlowStats:
    """Per-flow accounting kept by sources and sinks."""

    __slots__ = (
        "flow_id",
        "packets_sent",
        "bytes_sent",
        "packets_received",
        "bytes_received",
        "retransmissions",
        "timeouts",
        "fast_retransmits",
        "start_time",
        "finish_time",
        "rtt_samples",
    )

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.rtt_samples: list[float] = []

    @property
    def completion_time(self) -> Optional[float]:
        """Transfer duration (None until the flow finishes)."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def mean_rtt(self) -> float:
        """Mean of the flow's RTT samples (NaN if none were taken)."""
        if not self.rtt_samples:
            return float("nan")
        return float(np.mean(self.rtt_samples))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FlowStats flow={self.flow_id} sent={self.packets_sent} "
            f"recv={self.packets_received} retx={self.retransmissions}>"
        )
