"""Unidirectional store-and-forward links.

A link models a transmission line with a service rate (bits/sec), a
propagation delay (seconds), and an attached queue discipline.  A packet
offered to a busy link waits in the queue; the head-of-line packet occupies
the transmitter for ``size * 8 / rate`` seconds and arrives at the far node
one propagation delay after its last bit leaves.

Full-duplex connectivity is modelled as two independent ``Link`` objects
(see :func:`repro.sim.topology.connect`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, EnqueueResult, Queue
from repro.sim.trace import ArrivalTrace, DropTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["Link"]


class Link:
    """One direction of a wire between two nodes.

    Parameters
    ----------
    sim:
        The event engine.
    dst:
        Receiving node; packets are delivered to ``dst.receive``.
    rate_bps:
        Transmission rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Queue discipline; defaults to a large DropTail buffer (effectively
        infinite for access links).
    drop_trace / arrival_trace:
        Optional instrumentation shared across links.
    """

    def __init__(
        self,
        sim: "Simulator",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue: Optional[Queue] = None,
        name: Optional[str] = None,
        drop_trace: Optional[DropTrace] = None,
        arrival_trace: Optional[ArrivalTrace] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        # Auto-generated names draw from a per-simulator sequence so
        # back-to-back runs in one process get identical metric/trace keys.
        self.name = name if name is not None else f"link{sim.next_id('link')}"
        self.sim = sim
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue(10**9, name=self.name)
        self.drop_trace = drop_trace
        self.arrival_trace = arrival_trace
        self._install_queue_hooks()
        self.busy = False
        #: Fault-injection state: a downed link drops every offered packet.
        self.is_up = True
        # Accounting: offered == forwarded + transmitting + queued +
        # queue-dropped + dropped-down (the conservation identity
        # repro.obs.invariants.check_link verifies; down-drops are counted
        # separately so invariants hold modulo *injected* faults).
        self.packets_offered = 0
        self.packets_dropped_down = 0
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self.busy_time = 0.0
        self.utilization_overruns = 0
        self.flap_count = 0
        self.registry: Optional["MetricsRegistry"] = None

    # ------------------------------------------------------------------
    def attach_queue(self, queue: Queue) -> None:
        """Swap in a queue discipline and take ownership of its head-drop
        and mark hooks (the link is the terminal consumer for dequeue-time
        drops: it records the trace entry and recycles the packet)."""
        self.queue = queue
        self._install_queue_hooks()

    def _install_queue_hooks(self) -> None:
        self.queue.head_drop_hook = self._on_head_drop
        self.queue.mark_hook = self._on_dequeue_mark

    def _on_head_drop(self, pkt: Packet, now: float) -> None:
        if self.drop_trace is not None:
            self.drop_trace.record(pkt, now, marked=False)
        self.sim.free_packet(pkt)

    def _on_dequeue_mark(self, pkt: Packet, now: float) -> None:
        if self.drop_trace is not None:
            self.drop_trace.record(pkt, now, marked=True)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> EnqueueResult:
        """Offer a packet to the link.

        If the transmitter is idle and the queue empty the packet starts
        transmitting immediately; otherwise it is offered to the queue,
        which may drop or ECN-mark it.
        """
        now = self.sim.now
        self.packets_offered += 1
        if self.arrival_trace is not None:
            self.arrival_trace.record(pkt, now)
        if not self.is_up:
            self.packets_dropped_down += 1
            if self.drop_trace is not None:
                self.drop_trace.record(pkt, now, marked=False)
            self.sim.free_packet(pkt)
            return EnqueueResult.DROPPED
        if not self.busy and not self.queue:
            self._transmit(pkt)
            return EnqueueResult.ENQUEUED
        result = self.queue.push(pkt, now)
        if result is EnqueueResult.DROPPED:
            if self.drop_trace is not None:
                self.drop_trace.record(pkt, now, marked=False)
            # The link is the dropped packet's terminal consumer: recycle it.
            self.sim.free_packet(pkt)
        elif result is EnqueueResult.MARKED:
            if self.drop_trace is not None:
                self.drop_trace.record(pkt, now, marked=True)
        return result

    # ------------------------------------------------------------------
    def _transmit(self, pkt: Packet) -> None:
        self.busy = True
        tx_time = pkt.size * 8.0 / self.rate_bps
        self.busy_time += tx_time
        # Transmission/delivery timers are never cancelled: slot-free path.
        self.sim.schedule_fast(tx_time, self._transmission_done, pkt)

    def _transmission_done(self, pkt: Packet) -> None:
        self.bytes_forwarded += pkt.size
        self.packets_forwarded += 1
        self.sim.schedule_fast(self.delay, self.dst.receive, pkt, self)
        nxt = self.queue.pop(self.sim.now)
        if nxt is not None:
            self._transmit(nxt)
        else:
            self.busy = False

    # ------------------------------------------------------------------
    def take_down(self) -> None:
        """Fault injection: the link stops accepting packets.

        Packets already transmitting or queued continue to drain (the far
        end of a cut fiber still receives bits in flight); every *new*
        offer is dropped and counted in ``packets_dropped_down``.
        Idempotent.
        """
        if self.is_up:
            self.is_up = False
            self.flap_count += 1
            if self.registry is not None:
                self.registry.counter(f"link.{self.name}.flaps").inc()

    def bring_up(self) -> None:
        """Fault injection: the link accepts packets again.  Idempotent."""
        self.is_up = True

    # ------------------------------------------------------------------
    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the transmitter was busy.

        Returns the *raw* busy-time ratio.  A value above 1.0 means the
        link's busy-time accounting over-counted — a conservation bug the
        invariant layer should surface, never something to clamp away —
        so overruns are counted and reported as a metrics warning.  (Busy
        time is booked at transmission start, so a run cut off mid-packet
        can legitimately read one packet's tx time above 1.0; anything
        beyond that is an accounting error.)
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        ratio = self.busy_time / duration
        if ratio > 1.0:
            self.utilization_overruns += 1
            if self.registry is not None:
                self.registry.counter(f"link.{self.name}.utilization_overruns").inc()
                self.registry.warn(
                    f"link {self.name}: utilization {ratio:.6f} exceeds 1.0 over "
                    f"{duration:.6f}s (busy_time={self.busy_time:.6f}s)"
                )
        return ratio

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live link accounting as callback gauges in ``registry``."""
        self.registry = registry
        prefix = f"link.{self.name}"
        registry.gauge(f"{prefix}.packets_offered", fn=lambda: self.packets_offered)
        registry.gauge(f"{prefix}.packets_forwarded", fn=lambda: self.packets_forwarded)
        registry.gauge(f"{prefix}.bytes_forwarded", fn=lambda: self.bytes_forwarded)
        registry.gauge(f"{prefix}.busy_time", fn=lambda: self.busy_time)
        registry.gauge(
            f"{prefix}.packets_dropped_down", fn=lambda: self.packets_dropped_down
        )
        self.queue.attach_metrics(registry)

    def tx_time(self, size_bytes: int) -> float:
        """Transmission time for a packet of ``size_bytes``."""
        return size_bytes * 8.0 / self.rate_bps

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} ->{self.dst!r} {self.rate_bps/1e6:.1f}Mbps {self.delay*1e3:.1f}ms>"
