"""Packet records.

Packets are deliberately lightweight ``__slots__`` objects: the paper-scale
scenarios push millions of packets through the bottleneck, so per-packet
allocation cost dominates.  Anything analytical happens *after* the
simulation on NumPy arrays extracted from traces, never per packet.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Packet", "DATA", "ACK", "PROBE", "NOISE"]

# Packet kinds.  Plain string constants keep per-packet cost minimal while
# staying readable in traces.
DATA = "data"
ACK = "ack"
PROBE = "probe"
NOISE = "noise"


class Packet:
    """A single packet in flight.

    Attributes
    ----------
    flow_id:
        Integer identifier of the flow this packet belongs to.  ACKs carry
        the same ``flow_id`` as the data packets they acknowledge.
    seq:
        Sequence number in packets (data) or the cumulative ACK number
        (acks): the next expected data sequence number.
    size:
        Wire size in bytes (headers included; the simulator does not model
        header overhead separately).
    kind:
        One of :data:`DATA`, :data:`ACK`, :data:`PROBE`, :data:`NOISE`.
    src, dst:
        Endpoint node identifiers used by routers for forwarding.
    created:
        Simulation timestamp at which the packet was handed to the network;
        used for RTT sampling and one-way-delay analysis.
    ecn_capable / ecn_marked:
        Explicit Congestion Notification transport capability and
        congestion-experienced codepoint (set by RED/ECN queues).
    ecn_echo:
        On ACKs: receiver echoes the congestion-experienced signal.
    sack / meta:
        Optional protocol-specific payloads (kept as plain attributes so the
        hot path never allocates a dict).
    uid:
        Unique packet id.  Scoped per :class:`~repro.sim.engine.Simulator`
        (assigned by ``Simulator.alloc_packet``) so back-to-back seeded runs
        in one interpreter number packets identically; directly constructed
        packets carry the ``uid`` passed in (default ``-1``, unassigned).
    """

    __slots__ = (
        "uid",
        "flow_id",
        "seq",
        "size",
        "kind",
        "src",
        "dst",
        "created",
        "ecn_capable",
        "ecn_marked",
        "ecn_echo",
        "tx_id",
        "meta",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        size: int,
        kind: str = DATA,
        src: int = -1,
        dst: int = -1,
        created: float = 0.0,
        ecn_capable: bool = False,
        tx_id: int = 0,
        meta: Optional[object] = None,
        uid: int = -1,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.uid = uid
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.kind = kind
        self.src = src
        self.dst = dst
        self.created = created
        self.ecn_capable = ecn_capable
        self.ecn_marked = False
        self.ecn_echo = False
        # Transmission id distinguishes retransmissions of the same seq so
        # RTT samples obey Karn's algorithm.
        self.tx_id = tx_id
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.kind} flow={self.flow_id} seq={self.seq} "
            f"size={self.size}B {self.src}->{self.dst}>"
        )
