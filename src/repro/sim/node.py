"""Nodes: hosts (protocol endpoints) and routers (forwarders).

A :class:`Host` demultiplexes received packets to protocol *agents* by flow
id; a :class:`Router` forwards packets toward their destination via a static
routing table (destination node id -> outgoing link).  Routing is static
because the paper's topologies (dumbbell, probe paths) never reroute.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Protocol

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

__all__ = ["Agent", "Node", "Host", "Router"]

_node_ids = itertools.count()


class Agent(Protocol):
    """Protocol endpoint attached to a host.

    Implementations (TCP senders, sinks, CBR sources, ...) receive packets
    addressed to their flow and send via ``host.send``.
    """

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - protocol
        """Agent/node entry point: process an incoming packet."""
        ...


class Node:
    """Base node: owns an id and a routing table."""

    def __init__(self, sim: "Simulator", name: Optional[str] = None):
        self.sim = sim
        self.node_id = next(_node_ids)
        self.name = name if name is not None else f"node{self.node_id}"
        self.routes: dict[int, "Link"] = {}
        self.default_route: Optional["Link"] = None

    def add_route(self, dst_node_id: int, link: "Link") -> None:
        """Install a static route: destination node id -> outgoing link."""
        self.routes[dst_node_id] = link

    def route_for(self, pkt: Packet) -> Optional["Link"]:
        """Outgoing link for a packet (falls back to the default route)."""
        return self.routes.get(pkt.dst, self.default_route)

    def receive(self, pkt: Packet, link: Optional["Link"] = None) -> None:
        """Agent/node entry point: process an incoming packet."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}#{self.node_id}>"


class Router(Node):
    """Store-and-forward router: looks up the route and relays the packet.

    Packets with no route are counted in ``no_route_drops`` (a configuration
    error in the paper's topologies, surfaced loudly by tests).
    """

    def __init__(self, sim: "Simulator", name: Optional[str] = None):
        super().__init__(sim, name=name)
        self.packets_forwarded = 0
        self.no_route_drops = 0

    def receive(self, pkt: Packet, link: Optional["Link"] = None) -> None:
        """Agent/node entry point: process an incoming packet."""
        out = self.route_for(pkt)
        if out is None:
            self.no_route_drops += 1
            self.sim.free_packet(pkt)
            return
        self.packets_forwarded += 1
        out.send(pkt)


class Host(Node):
    """End host: demultiplexes packets to agents by flow id.

    ``uplink`` is the host's access link; ``send`` pushes a packet onto it
    (or onto an explicit route when one exists, which general topologies
    use).
    """

    def __init__(self, sim: "Simulator", name: Optional[str] = None):
        super().__init__(sim, name=name)
        self.agents: dict[int, Agent] = {}
        self.uplink: Optional["Link"] = None
        self.unclaimed_packets = 0

    def attach(self, flow_id: int, agent: Agent) -> None:
        """Register ``agent`` as the endpoint for ``flow_id`` on this host."""
        if flow_id in self.agents:
            raise ValueError(f"flow {flow_id} already attached to {self.name}")
        self.agents[flow_id] = agent

    def detach(self, flow_id: int) -> None:
        """Remove the agent registered under ``flow_id`` (idempotent)."""
        self.agents.pop(flow_id, None)

    def send(self, pkt: Packet) -> None:
        """Offer a packet to this component for forwarding."""
        out = self.route_for(pkt)
        if out is None:
            out = self.uplink
        if out is None:
            raise RuntimeError(f"host {self.name} has no uplink or route for {pkt!r}")
        out.send(pkt)

    def receive(self, pkt: Packet, link: Optional["Link"] = None) -> None:
        """Agent/node entry point: process an incoming packet."""
        agent = self.agents.get(pkt.flow_id)
        if agent is None:
            # Packets for unknown flows (e.g. noise sinks that don't track
            # sequence state) are counted, not raised: a trace-level check.
            self.unclaimed_packets += 1
            self.sim.free_packet(pkt)
            return
        agent.receive(pkt)
