"""Topology builders.

The central scenario is the paper's Figure 1 dumbbell: a set of senders and
receivers on 1 Gbps access links sharing one bottleneck (c = 100 Mbps)
between two routers.  Per-pair round-trip times are realized by splitting
the pair's propagation delay evenly across its four access-link directions,
so the configured RTT is exact regardless of direction.

General topologies (used by the Internet substrate for multi-hop paths) can
be assembled from :func:`connect` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Host, Node, Router
from repro.sim.queues import DropTailQueue, Queue
from repro.sim.trace import ArrivalTrace, DropTrace

__all__ = ["connect", "DumbbellConfig", "Dumbbell", "HostPair", "build_dumbbell"]


def connect(
    sim: Simulator,
    a: Node,
    b: Node,
    rate_bps: float,
    delay: float,
    queue_ab: Optional[Queue] = None,
    queue_ba: Optional[Queue] = None,
    **link_kwargs,
) -> tuple[Link, Link]:
    """Create a full-duplex connection: returns ``(link_a_to_b, link_b_to_a)``."""
    ab = Link(sim, b, rate_bps, delay, queue=queue_ab, **link_kwargs)
    ba = Link(sim, a, rate_bps, delay, queue=queue_ba, **link_kwargs)
    return ab, ba


@dataclass
class DumbbellConfig:
    """Parameters of the Figure 1 dumbbell.

    ``buffer_pkts`` is the bottleneck FIFO size in packets.  The paper sweeps
    it from 1/8 to 2 BDP; :meth:`bdp_packets` converts for a given RTT.
    """

    bottleneck_rate_bps: float = 100e6
    access_rate_bps: float = 1e9
    bottleneck_delay: float = 0.0
    buffer_pkts: int = 100
    reverse_buffer_pkts: Optional[int] = None  # default: same as forward
    packet_size: int = 1000
    trace_arrivals: bool = False

    def bdp_packets(self, rtt: float) -> int:
        """Bandwidth-delay product in packets for a path of ``rtt`` seconds."""
        return max(1, int(round(self.bottleneck_rate_bps * rtt / 8.0 / self.packet_size)))


@dataclass
class HostPair:
    """A sender/receiver host pair attached to the dumbbell."""

    left: Host
    right: Host
    rtt: float
    index: int
    links: tuple[Link, ...] = field(default_factory=tuple, repr=False)


class Dumbbell:
    """A built dumbbell: two routers, a traced bottleneck, attachable pairs."""

    def __init__(self, sim: Simulator, config: DumbbellConfig):
        self.sim = sim
        self.config = config
        self.left_router = Router(sim, name="L")
        self.right_router = Router(sim, name="R")
        self.drop_trace = DropTrace("bottleneck")
        self.reverse_drop_trace = DropTrace("bottleneck-reverse")
        self.arrival_trace = ArrivalTrace("bottleneck") if config.trace_arrivals else None

        rev_buf = (
            config.reverse_buffer_pkts
            if config.reverse_buffer_pkts is not None
            else config.buffer_pkts
        )
        self.forward_queue: Queue = DropTailQueue(config.buffer_pkts, name="bottleneck")
        self.reverse_queue: Queue = DropTailQueue(rev_buf, name="bottleneck-rev")
        self.bottleneck_fwd = Link(
            sim,
            self.right_router,
            config.bottleneck_rate_bps,
            config.bottleneck_delay,
            queue=self.forward_queue,
            name="bottleneck",
            drop_trace=self.drop_trace,
            arrival_trace=self.arrival_trace,
        )
        self.bottleneck_rev = Link(
            sim,
            self.left_router,
            config.bottleneck_rate_bps,
            config.bottleneck_delay,
            queue=self.reverse_queue,
            name="bottleneck-rev",
            drop_trace=self.reverse_drop_trace,
        )
        self.pairs: list[HostPair] = []

    def set_forward_queue(self, queue: Queue) -> None:
        """Swap the bottleneck discipline (e.g. DropTail -> RED) pre-run."""
        self.forward_queue = queue
        self.bottleneck_fwd.attach_queue(queue)

    def add_pair(self, rtt: float, name: Optional[str] = None) -> HostPair:
        """Attach a sender (left) / receiver (right) host pair with the given
        propagation RTT.

        The RTT is split as four equal access-link delays; the bottleneck's
        own propagation delay (usually 0) adds on top in both directions.
        """
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        cfg = self.config
        idx = len(self.pairs)
        tag = name if name is not None else f"pair{idx}"
        left = Host(self.sim, name=f"{tag}.snd")
        right = Host(self.sim, name=f"{tag}.rcv")
        d = max(0.0, rtt - 2.0 * cfg.bottleneck_delay) / 4.0

        l_up, l_down = connect(self.sim, left, self.left_router, cfg.access_rate_bps, d)
        r_up, r_down = connect(self.sim, right, self.right_router, cfg.access_rate_bps, d)
        left.uplink = l_up
        right.uplink = r_up

        # Forward: left host -> left router -> bottleneck -> right router -> right host
        self.left_router.add_route(right.node_id, self.bottleneck_fwd)
        self.right_router.add_route(right.node_id, r_down)
        # Reverse: right host -> right router -> bottleneck_rev -> left router -> left host
        self.right_router.add_route(left.node_id, self.bottleneck_rev)
        self.left_router.add_route(left.node_id, l_down)

        pair = HostPair(left=left, right=right, rtt=rtt, index=idx,
                        links=(l_up, l_down, r_up, r_down))
        self.pairs.append(pair)
        return pair

    # -- conveniences used by experiments --------------------------------
    @property
    def capacity_bps(self) -> float:
        """Bottleneck service rate in bits per second."""
        return self.config.bottleneck_rate_bps

    def mean_rtt(self) -> float:
        """Mean propagation RTT over attached pairs (normalization constant
        for router-trace analysis; see DESIGN.md)."""
        if not self.pairs:
            raise ValueError("no pairs attached")
        return sum(p.rtt for p in self.pairs) / len(self.pairs)

    def conservation_ok(self) -> bool:
        """Bottleneck packet conservation: arrived == enqueued + dropped and
        enqueued == dequeued + queued, in both directions.

        Boolean convenience; :class:`repro.obs.InvariantChecker` raises a
        diagnostic :class:`~repro.obs.InvariantViolation` instead.
        """
        return not any(
            residual
            for q in (self.forward_queue, self.reverse_queue)
            for residual in q.conservation_residuals().values()
        )


def build_dumbbell(sim: Simulator, config: Optional[DumbbellConfig] = None) -> Dumbbell:
    """Build an empty dumbbell; attach host pairs with :meth:`Dumbbell.add_pair`."""
    return Dumbbell(sim, config or DumbbellConfig())


# ---------------------------------------------------------------------------
# Star / complete-graph topology (paper future work: MapReduce shuffles)
# ---------------------------------------------------------------------------


@dataclass
class StarConfig:
    """Parameters of a star topology: N hosts around one switch.

    Every host gets an uplink and a downlink at ``access_rate_bps``; the
    *downlink* is where a many-to-one shuffle congests, so it carries the
    finite ``buffer_pkts`` FIFO and a drop trace.  Any host pair can talk:
    the complete traffic graph the paper's future work calls for.
    """

    access_rate_bps: float = 1e9
    downlink_rate_bps: Optional[float] = None  # default: same as access
    buffer_pkts: int = 100
    packet_size: int = 1000

    def bdp_packets(self, rtt: float) -> int:
        """Bandwidth-delay product in packets for a path of ``rtt``."""
        rate = self.downlink_rate_bps or self.access_rate_bps
        return max(1, int(round(rate * rtt / 8.0 / self.packet_size)))


@dataclass
class StarHost:
    """One host on the star with its attachment metadata."""

    host: Host
    delay: float  # one-way propagation to the switch
    uplink: Link = field(repr=False, default=None)  # type: ignore[assignment]
    downlink: Link = field(repr=False, default=None)  # type: ignore[assignment]
    drop_trace: DropTrace = field(repr=False, default=None)  # type: ignore[assignment]


class Star:
    """A built star: one switch, per-host traced downlinks."""

    def __init__(self, sim: Simulator, config: Optional[StarConfig] = None):
        self.sim = sim
        self.config = config or StarConfig()
        self.switch = Router(sim, name="SW")
        self.hosts: list[StarHost] = []

    def add_host(self, delay: float, name: Optional[str] = None) -> StarHost:
        """Attach a host whose one-way propagation to the switch is
        ``delay`` seconds (RTT between hosts a and b = 2*(d_a + d_b))."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        cfg = self.config
        tag = name if name is not None else f"h{len(self.hosts)}"
        host = Host(self.sim, name=tag)
        trace = DropTrace(f"{tag}.down")
        up = Link(self.sim, self.switch, cfg.access_rate_bps, delay,
                  name=f"{tag}.up")
        down_rate = cfg.downlink_rate_bps or cfg.access_rate_bps
        down = Link(
            self.sim, host, down_rate, delay,
            queue=DropTailQueue(cfg.buffer_pkts, name=f"{tag}.down"),
            name=f"{tag}.down", drop_trace=trace,
        )
        host.uplink = up
        self.switch.add_route(host.node_id, down)
        sh = StarHost(host=host, delay=delay, uplink=up, downlink=down,
                      drop_trace=trace)
        self.hosts.append(sh)
        return sh

    def rtt(self, a: StarHost, b: StarHost) -> float:
        """Propagation RTT between two attached hosts."""
        return 2.0 * (a.delay + b.delay)


def build_star(sim: Simulator, config: Optional[StarConfig] = None) -> Star:
    """Build an empty star; attach hosts with :meth:`Star.add_host`."""
    return Star(sim, config)
