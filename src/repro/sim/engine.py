"""Event scheduler for the discrete-event network simulator.

The engine is a classic binary-heap event loop.  Determinism matters for
reproducing the paper's traces, so events scheduled for the same timestamp
are executed in scheduling order (a monotonically increasing sequence
number breaks ties), and all randomness lives in named RNG streams
(:mod:`repro.sim.rng`), never in the engine.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only public operation is
    :meth:`cancel`, which is O(1) (the heap entry is left in place and
    skipped when popped).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers do not pin packets/agents.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulator clock and event queue.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time:.9f} < now={self.now:.9f}"
            )
        ev = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events at exactly ``until`` execute, and the
        clock is left at ``min(until, last event time)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            budget = math.inf if max_events is None else max_events
            while heap and budget > 0:
                ev = heap[0]
                if ev.time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()  # release references
                assert fn is not None
                fn(*args)
                self.events_processed += 1
                budget -= 1
            if math.isfinite(until) and self.now < until and not (heap and budget <= 0):
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if idle."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def peek_time(self) -> float:
        """Timestamp of the next pending event, or ``inf`` when idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else math.inf

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"
