"""Event scheduler for the discrete-event network simulator.

The engine is a classic binary-heap event loop with two hot-path
refinements (see ``docs/PERFORMANCE.md``):

* **Tuple-keyed heap entries.**  The heap holds plain tuples
  ``(time, seq, payload, ...)`` instead of ``Event`` objects, so every
  sift comparison is a C-level tuple comparison; the scheduling sequence
  number is unique, which makes the ``(time, seq)`` prefix a total order
  and guarantees the payload slots are never compared.  This is the
  "precomputed sort key": it is built once at schedule time, never per
  comparison.
* **A slot-free fast path.**  :meth:`Simulator.schedule_fast` covers the
  dominant "delay from now, will never be cancelled" case (packet
  transmission/delivery timers) with no handle allocation at all, while
  :meth:`Simulator.schedule` keeps returning a cancellable
  :class:`Event` drawn from a per-simulator free list.

Determinism matters for reproducing the paper's traces, so events
scheduled for the same timestamp are executed in scheduling order (the
monotonically increasing sequence number breaks ties — identically on
both the fast and the slotted path, which share one counter), and all
randomness lives in named RNG streams (:mod:`repro.sim.rng`), never in
the engine.  A reference implementation of the original, pre-optimization
engine is kept in :mod:`repro.sim.reference` as the benchmark baseline
and the oracle for scheduler-equivalence tests.
"""

from __future__ import annotations

import contextlib
import heapq
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.sim.packet import DATA, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import EventLoopProfile

__all__ = ["Event", "RepeatingEvent", "Simulator", "SimulationError"]

#: Compaction is skipped below this heap size: rebuilding a tiny heap
#: costs more bookkeeping than the cancelled corpses ever will.
COMPACT_MIN_HEAP = 64

#: Free-list bounds: pools never grow past these, so a burst of activity
#: cannot pin an unbounded amount of memory after it drains.
EVENT_POOL_MAX = 4096
PACKET_POOL_MAX = 4096


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only public operation is
    :meth:`cancel`, which is O(1) (the heap entry is left in place and
    skipped when popped, though the owning simulator compacts the heap
    once cancelled corpses outnumber live events).

    Handles are **single-use**: once the callback has fired (or the
    cancelled corpse has been discarded) the engine recycles the object
    through a free list, so a stale handle must not be cancelled after a
    *new* event has been scheduled — the standard discipline (followed by
    every timer in this repository) is to null the stored handle inside
    the callback.  Cancelling a handle that has fired but not yet been
    reused is a safe no-op.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in its heap; cleared on pop
        # so late cancels do not skew the in-heap cancellation count.
        self.owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled timers do not pin packets/agents.
        self.fn = None
        self.args = ()
        if self.owner is not None:
            self.owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Events are no longer heap-compared (the heap orders tuples); this
        # stays for external code sorting handles by firing order.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class RepeatingEvent:
    """Handle to a self-rearming periodic callback (see
    :meth:`Simulator.schedule_every`).

    The underlying event re-arms itself after every firing *only while the
    simulator has other pending work*, so a recurring sampler or checker
    never keeps an otherwise-finished run alive.  :meth:`cancel` stops the
    recurrence permanently (idempotent).
    """

    __slots__ = ("sim", "interval", "fn", "args", "fires", "cancelled", "_event")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SimulationError(f"repeat interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.fires = 0
        self.cancelled = False
        self._event: Optional[Event] = sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        self._event = None
        if self.cancelled:
            return
        self.fires += 1
        self.fn(*self.args)
        # Re-arm only while other live events exist: once the scenario's
        # own work drains, the recurrence dies with it.
        if not self.cancelled and self.sim.pending > 0:
            self._event = self.sim.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<RepeatingEvent every={self.interval:.6f}s fires={self.fires} {state}>"


class Simulator:
    """Discrete-event simulator clock and event queue.

    Heap entries are 4-tuples.  ``(time, seq, fn, args)`` is a slot-free
    fast-path entry; ``(time, seq, event, None)`` carries a cancellable
    :class:`Event` (the ``None`` in the args slot is the discriminator).
    Both kinds share one sequence counter, so the ``(time, seq)`` prefix
    orders all entries exactly as the pre-optimization engine did.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False
        # Cancelled events still sitting in the heap; kept exact so
        # ``pending`` is O(1) and compaction triggers deterministically.
        self._cancelled = 0
        self.compactions = 0
        self._profiler: Optional["EventLoopProfile"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        # Free lists (object pools).  Recycled Events come back through
        # the run loop; recycled Packets through free_packet() at their
        # terminal consumer (sink delivery / drop).
        self._event_pool: list[Event] = []
        self._packet_pool: list[Packet] = []
        # Per-simulator id sequences (auto link names, packet uids), so
        # back-to-back simulations in one process number components
        # deterministically regardless of what ran before.
        self._id_counters: dict[str, int] = {}
        self._packet_uid = 0

    def next_id(self, kind: str) -> int:
        """Next id in this simulator's ``kind`` sequence (1-based)."""
        n = self._id_counters.get(kind, 0) + 1
        self._id_counters[kind] = n
        return n

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time:.9f} < now={self.now:.9f}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args)
        ev.owner = self
        heapq.heappush(self._heap, (time, seq, ev, None))
        return ev

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Slot-free scheduling for the dominant hot-path case.

        Semantically ``schedule(delay, fn, *args)`` minus the handle: no
        :class:`Event` is allocated and the callback cannot be cancelled.
        Packet transmission and delivery timers — the per-packet bulk of
        any scenario — use this path.  ``delay`` must be finite and
        non-negative.
        """
        if not 0.0 <= delay < math.inf:
            raise SimulationError(f"fast-path delay must be finite and >= 0: {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn, args))

    def schedule_every(self, interval: float, fn: Callable[..., Any], *args: Any) -> RepeatingEvent:
        """Run ``fn(*args)`` every ``interval`` sim-seconds while the
        simulator has other pending work (first firing one interval from
        now).  Returns a :class:`RepeatingEvent` handle whose ``cancel()``
        stops the recurrence.  Used by periodic samplers/checkers that must
        never keep a finished run alive."""
        return RepeatingEvent(self, interval, fn, args)

    # ------------------------------------------------------------------
    # packet pool
    # ------------------------------------------------------------------
    def alloc_packet(
        self,
        flow_id: int,
        seq: int,
        size: int,
        kind: str = DATA,
        src: int = -1,
        dst: int = -1,
        created: float = 0.0,
        ecn_capable: bool = False,
        tx_id: int = 0,
        meta: Optional[object] = None,
    ) -> Packet:
        """Allocate a :class:`~repro.sim.packet.Packet`, reusing the free
        list when possible.

        Uids are drawn from a per-simulator sequence, so pooling (and
        whatever ran earlier in the process) never perturbs the uid
        assignment of a seeded run — back-to-back identical runs allocate
        identical uid streams.
        """
        uid = self._packet_uid
        self._packet_uid = uid + 1
        pool = self._packet_pool
        if pool:
            pkt = pool.pop()
            if size <= 0:
                raise ValueError(f"packet size must be positive, got {size}")
            pkt.uid = uid
            pkt.flow_id = flow_id
            pkt.seq = seq
            pkt.size = size
            pkt.kind = kind
            pkt.src = src
            pkt.dst = dst
            pkt.created = created
            pkt.ecn_capable = ecn_capable
            pkt.ecn_marked = False
            pkt.ecn_echo = False
            pkt.tx_id = tx_id
            pkt.meta = meta
            return pkt
        pkt = Packet(
            flow_id, seq, size, kind=kind, src=src, dst=dst, created=created,
            ecn_capable=ecn_capable, tx_id=tx_id, meta=meta, uid=uid,
        )
        return pkt

    def free_packet(self, pkt: Packet) -> None:
        """Return a packet to the free list.

        Called by a packet's *terminal consumer* — the sink that absorbed
        it or the component that dropped it — after the last read of its
        fields.  Never call it while any other component still holds a
        reference.  Forgetting to free is always safe (the object is
        simply garbage-collected); freeing twice is not.
        """
        pool = self._packet_pool
        if len(pool) < PACKET_POOL_MAX:
            pkt.meta = None  # drop payload references while pooled
            pool.append(pkt)

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the heap."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled corpses and re-heapify, in place.

        In place matters: the run loop holds a local alias of the heap
        list, and compaction can fire from inside a callback (a retransmit
        timer cancelling en masse).
        """
        heap = self._heap
        live = []
        recycle = self._recycle_event
        for entry in heap:
            if entry[3] is None and entry[2].cancelled:
                entry[2].owner = None
                recycle(entry[2])
            else:
                live.append(entry)
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    def _recycle_event(self, ev: Event) -> None:
        """Return a fired or discarded Event handle to the free list."""
        ev.fn = None
        ev.args = ()
        ev.owner = None
        # Pooled handles read as cancelled so a stale cancel() on a fired
        # event is a guarded no-op rather than a bookkeeping skew.
        ev.cancelled = True
        pool = self._event_pool
        if len(pool) < EVENT_POOL_MAX:
            pool.append(ev)

    def _discard_cancelled_pop(self, ev: Event) -> None:
        """Uniform bookkeeping for one cancelled corpse leaving the heap.

        Shared by :meth:`run`, :meth:`step`, and :meth:`peek_time` so the
        in-heap cancellation count, the profiler's cancelled-pop counter,
        and handle recycling stay consistent no matter which loop drains
        the corpse.
        """
        self._cancelled -= 1
        if self._profiler is not None:
            self._profiler.record_cancelled_pop()
        self._recycle_event(ev)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events at exactly ``until`` execute, and the
        clock is left at ``min(until, last event time)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            heappop = heapq.heappop
            budget = math.inf if max_events is None else max_events
            while heap and budget > 0:
                entry = heap[0]
                time = entry[0]
                if time > until:
                    break
                heappop(heap)
                args = entry[3]
                if args is None:
                    # Slotted entry: unwrap the Event handle.
                    ev = entry[2]
                    ev.owner = None
                    if ev.cancelled:
                        self._discard_cancelled_pop(ev)
                        continue
                    fn, args = ev.fn, ev.args
                    self._recycle_event(ev)
                else:
                    fn = entry[2]
                self.now = time
                prof = self._profiler
                if prof is None:
                    fn(*args)
                else:
                    t0 = perf_counter()
                    fn(*args)
                    prof.record_event(fn, perf_counter() - t0, len(heap))
                self.events_processed += 1
                budget -= 1
            if math.isfinite(until) and self.now < until and not (heap and budget <= 0):
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if idle."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            args = entry[3]
            if args is None:
                ev = entry[2]
                ev.owner = None
                if ev.cancelled:
                    self._discard_cancelled_pop(ev)
                    continue
                fn, args = ev.fn, ev.args
                self._recycle_event(ev)
            else:
                fn = entry[2]
            self.now = entry[0]
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def peek_time(self) -> float:
        """Timestamp of the next pending event, or ``inf`` when idle."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3] is None and entry[2].cancelled:
                heapq.heappop(heap)
                entry[2].owner = None
                self._discard_cancelled_pop(entry[2])
                continue
            return entry[0]
        return math.inf

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of the heap occupied by cancelled corpses."""
        if not self._heap:
            return 0.0
        return self._cancelled / len(self._heap)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def profile(self) -> Iterator["EventLoopProfile"]:
        """Profile the event loop for the duration of a ``with`` block.

        Yields an :class:`~repro.obs.profiling.EventLoopProfile` that fills
        with events/sec, heap size, cancelled-event ratio, and per-callback
        timing while any ``run``/``step`` executes inside the block.
        Nestable; the previous profiler (if any) is restored on exit.
        """
        from repro.obs.profiling import EventLoopProfile

        prof = EventLoopProfile()
        previous = self._profiler
        self._profiler = prof
        prof.start(self)
        try:
            yield prof
        finally:
            prof.stop(self)
            self._profiler = previous

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live engine state as callback gauges in ``registry``."""
        self.metrics = registry
        registry.gauge("engine.events_processed", fn=lambda: self.events_processed)
        registry.gauge("engine.heap_size", fn=lambda: len(self._heap))
        registry.gauge("engine.pending", fn=lambda: self.pending)
        registry.gauge("engine.cancelled_in_heap", fn=lambda: self._cancelled)
        registry.gauge("engine.cancelled_ratio", fn=lambda: self.cancelled_ratio)
        registry.gauge("engine.compactions", fn=lambda: self.compactions)
        registry.gauge("engine.sim_time", fn=lambda: self.now)
        registry.gauge("engine.event_pool", fn=lambda: len(self._event_pool))
        registry.gauge("engine.packet_pool", fn=lambda: len(self._packet_pool))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending}>"
