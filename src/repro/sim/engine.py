"""Event scheduler for the discrete-event network simulator.

The engine is a classic binary-heap event loop.  Determinism matters for
reproducing the paper's traces, so events scheduled for the same timestamp
are executed in scheduling order (a monotonically increasing sequence
number breaks ties), and all randomness lives in named RNG streams
(:mod:`repro.sim.rng`), never in the engine.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import EventLoopProfile

__all__ = ["Event", "RepeatingEvent", "Simulator", "SimulationError"]

#: Compaction is skipped below this heap size: rebuilding a tiny heap
#: costs more bookkeeping than the cancelled corpses ever will.
COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only public operation is
    :meth:`cancel`, which is O(1) (the heap entry is left in place and
    skipped when popped, though the owning simulator compacts the heap
    once cancelled corpses outnumber live events).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in its heap; cleared on pop
        # so late cancels do not skew the in-heap cancellation count.
        self.owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled timers do not pin packets/agents.
        self.fn = None
        self.args = ()
        if self.owner is not None:
            self.owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class RepeatingEvent:
    """Handle to a self-rearming periodic callback (see
    :meth:`Simulator.schedule_every`).

    The underlying event re-arms itself after every firing *only while the
    simulator has other pending work*, so a recurring sampler or checker
    never keeps an otherwise-finished run alive.  :meth:`cancel` stops the
    recurrence permanently (idempotent).
    """

    __slots__ = ("sim", "interval", "fn", "args", "fires", "cancelled", "_event")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SimulationError(f"repeat interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.fires = 0
        self.cancelled = False
        self._event: Optional[Event] = sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        self._event = None
        if self.cancelled:
            return
        self.fires += 1
        self.fn(*self.args)
        # Re-arm only while other live events exist: once the scenario's
        # own work drains, the recurrence dies with it.
        if not self.cancelled and self.sim.pending > 0:
            self._event = self.sim.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<RepeatingEvent every={self.interval:.6f}s fires={self.fires} {state}>"


class Simulator:
    """Discrete-event simulator clock and event queue.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False
        # Cancelled events still sitting in the heap; kept exact so
        # ``pending`` is O(1) and compaction triggers deterministically.
        self._cancelled = 0
        self.compactions = 0
        self._profiler: Optional["EventLoopProfile"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        # Per-simulator id sequences (e.g. auto-generated link names), so
        # back-to-back simulations in one process name components
        # deterministically regardless of what ran before.
        self._id_counters: dict[str, Iterator[int]] = {}

    def next_id(self, kind: str) -> int:
        """Next id in this simulator's ``kind`` sequence (1-based)."""
        counter = self._id_counters.get(kind)
        if counter is None:
            counter = itertools.count(1)
            self._id_counters[kind] = counter
        return next(counter)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time:.9f} < now={self.now:.9f}"
            )
        ev = Event(time, next(self._seq), fn, args)
        ev.owner = self
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_every(self, interval: float, fn: Callable[..., Any], *args: Any) -> RepeatingEvent:
        """Run ``fn(*args)`` every ``interval`` sim-seconds while the
        simulator has other pending work (first firing one interval from
        now).  Returns a :class:`RepeatingEvent` handle whose ``cancel()``
        stops the recurrence.  Used by periodic samplers/checkers that must
        never keep a finished run alive."""
        return RepeatingEvent(self, interval, fn, args)

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the heap."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled corpses and re-heapify, in place.

        In place matters: the run loop holds a local alias of the heap
        list, and compaction can fire from inside a callback (a retransmit
        timer cancelling en masse).
        """
        heap = self._heap
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events at exactly ``until`` execute, and the
        clock is left at ``min(until, last event time)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            budget = math.inf if max_events is None else max_events
            while heap and budget > 0:
                ev = heap[0]
                if ev.time > until:
                    break
                heapq.heappop(heap)
                ev.owner = None
                if ev.cancelled:
                    self._cancelled -= 1
                    if self._profiler is not None:
                        self._profiler.record_cancelled_pop()
                    continue
                self.now = ev.time
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()  # release references
                assert fn is not None
                prof = self._profiler
                if prof is None:
                    fn(*args)
                else:
                    t0 = perf_counter()
                    fn(*args)
                    prof.record_event(fn, perf_counter() - t0, len(heap))
                self.events_processed += 1
                budget -= 1
            if math.isfinite(until) and self.now < until and not (heap and budget <= 0):
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if idle."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            ev.owner = None
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self.now = ev.time
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def peek_time(self) -> float:
        """Timestamp of the next pending event, or ``inf`` when idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap).owner = None
            self._cancelled -= 1
        return heap[0].time if heap else math.inf

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of the heap occupied by cancelled corpses."""
        if not self._heap:
            return 0.0
        return self._cancelled / len(self._heap)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def profile(self) -> Iterator["EventLoopProfile"]:
        """Profile the event loop for the duration of a ``with`` block.

        Yields an :class:`~repro.obs.profiling.EventLoopProfile` that fills
        with events/sec, heap size, cancelled-event ratio, and per-callback
        timing while any ``run``/``step`` executes inside the block.
        Nestable; the previous profiler (if any) is restored on exit.
        """
        from repro.obs.profiling import EventLoopProfile

        prof = EventLoopProfile()
        previous = self._profiler
        self._profiler = prof
        prof.start(self)
        try:
            yield prof
        finally:
            prof.stop(self)
            self._profiler = previous

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Expose live engine state as callback gauges in ``registry``."""
        self.metrics = registry
        registry.gauge("engine.events_processed", fn=lambda: self.events_processed)
        registry.gauge("engine.heap_size", fn=lambda: len(self._heap))
        registry.gauge("engine.pending", fn=lambda: self.pending)
        registry.gauge("engine.cancelled_in_heap", fn=lambda: self._cancelled)
        registry.gauge("engine.cancelled_ratio", fn=lambda: self.cancelled_ratio)
        registry.gauge("engine.compactions", fn=lambda: self.compactions)
        registry.gauge("engine.sim_time", fn=lambda: self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending}>"
